#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property tests for the W3C traceparent codec: format→parse must
//! round-trip every representable context, and the parser must reject
//! the malformed shapes (wrong lengths, uppercase hex, zero ids, unknown
//! versions) rather than guess.

use mlpsim_telemetry::{format_traceparent, parse_traceparent};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any nonzero (trace, span) with any flags survives format→parse.
    #[test]
    fn format_parse_round_trips(
        hi in 0u64..=u64::MAX,
        lo in 0u64..=u64::MAX,
        span in 1u64..=u64::MAX,
        flags in 0u8..=u8::MAX,
    ) {
        let trace_id = ((u128::from(hi) << 64) | u128::from(lo)).max(1);
        let header = format_traceparent(trace_id, span, flags);
        prop_assert_eq!(parse_traceparent(&header), Some((trace_id, span, flags)));
    }

    /// Hex fields of the wrong width are rejected, never zero-padded or
    /// truncated into a "nearby" context.
    #[test]
    fn wrong_width_hex_is_rejected(
        t in "[0-9a-f]{1,31}",
        s in "[0-9a-f]{1,15}",
    ) {
        prop_assert_eq!(parse_traceparent(&format!("00-{t}-{s}-01")), None);
        // One field valid does not rescue the other.
        let good_trace = "0af7651916cd43dd8448eb211c80319c";
        let good_span = "b7ad6b7169203331";
        prop_assert_eq!(parse_traceparent(&format!("00-{t}-{good_span}-01")), None);
        prop_assert_eq!(parse_traceparent(&format!("00-{good_trace}-{s}-01")), None);
    }

    /// The spec mandates lowercase hex; any uppercase digit invalidates
    /// the header.
    #[test]
    fn uppercase_hex_is_rejected(
        hi in 0u64..=u64::MAX,
        lo in 0u64..=u64::MAX,
        span in 1u64..=u64::MAX,
    ) {
        let trace_id = ((u128::from(hi) << 64) | u128::from(lo)).max(1);
        let header = format_traceparent(trace_id, span, 1);
        let upper = header.to_ascii_uppercase();
        // Only meaningful when some digit actually changed case.
        if upper != header {
            prop_assert_eq!(parse_traceparent(&upper), None);
        }
    }

    /// All-zero trace or span ids are the spec's "invalid" sentinels.
    #[test]
    fn zero_ids_are_rejected(
        span in 1u64..=u64::MAX,
        hi in 0u64..=u64::MAX,
        lo in 0u64..=u64::MAX,
    ) {
        let trace_id = ((u128::from(hi) << 64) | u128::from(lo)).max(1);
        prop_assert_eq!(parse_traceparent(&format_traceparent(0, span, 1)), None);
        prop_assert_eq!(parse_traceparent(&format_traceparent(trace_id, 0, 1)), None);
    }

    /// Only version 00 is understood; future versions must not be
    /// misread as the current format.
    #[test]
    fn unknown_versions_are_rejected(
        version in 1u8..=u8::MAX,
        hi in 0u64..=u64::MAX,
        span in 1u64..=u64::MAX,
    ) {
        let trace_id = u128::from(hi).max(1);
        let header = format_traceparent(trace_id, span, 1);
        let reversioned = format!("{:02x}{}", version, &header[2..]);
        prop_assert_eq!(parse_traceparent(&reversioned), None);
    }

    /// Structural garbage — missing dashes, extra parts, junk separators.
    #[test]
    fn structural_garbage_is_rejected(junk in "[0-9a-fxz-]{0,64}") {
        // The only strings the parser may accept have exactly the
        // 2-32-16-2 dash layout; nothing the junk alphabet produces at
        // random lengths should parse unless it lands on that layout
        // with nonzero ids — in which case round-tripping it must agree.
        if let Some((t, s, f)) = parse_traceparent(&junk) {
            prop_assert_eq!(format_traceparent(t, s, f), junk);
        }
    }
}
