#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property tests: NDJSON round-trips for randomized field values, and
//! counter-registry monotonicity over arbitrary event sequences.

use mlpsim_telemetry::{exact_share, Event, EventSink, NdjsonSink, Registry, StallLedger};
use proptest::prelude::*;

/// Builds one event of each shape class from randomized scalars: unsigned,
/// signed, boolean, float, and string fields all get exercised.
fn sample_events(
    cycle: u64,
    line: u64,
    live: u64,
    delta: i64,
    cost: f64,
    flag: bool,
    name: String,
) -> Vec<Event> {
    vec![
        Event::MshrAlloc {
            cycle,
            line,
            demand: flag,
            live,
            demand_live: live / 2,
            slot: live % 32,
        },
        Event::MshrRelease {
            cycle,
            line,
            demand: flag,
            live,
            cost,
            slot: live % 32,
        },
        Event::Stall { cycle, len: live },
        Event::StallSpan {
            begin: cycle,
            end: cycle + live,
            line,
            set: line % 1024,
            cost_q: (live % 8) as u8,
            policy: name.clone(),
            n_begin: live % 32 + 1,
        },
        Event::StallAttrib {
            cycle,
            line,
            set: line % 1024,
            cost_q: (live % 8) as u8,
            policy: name.clone(),
            cycles: live,
        },
        Event::Serviced {
            line,
            cycle,
            cost,
            cost_q: (live % 8) as u8,
        },
        Event::PselUpdate {
            unit: name.clone(),
            index: line % 1024,
            delta,
            value: live,
            msb: flag,
            saturated: !flag,
            seq: cycle,
        },
        Event::RunStart {
            label: name.clone(),
            policy: name,
            cycle,
        },
        Event::Sample {
            instructions: cycle,
            cycle,
            ipc: cost,
            mpki: cost / 2.0,
            avg_cost_q: cost / 3.0,
        },
    ]
}

proptest! {
    #[test]
    fn ndjson_round_trip_preserves_every_field(
        // Numbers ride in JSON as f64, exact up to 2^53 (see json.rs);
        // cycles and line addresses in this simulator stay far below that.
        cycle in 0u64..(1u64 << 53),
        line in 0u64..(1u64 << 53),
        live in 0u64..1024,
        delta in -7i64..8,
        // Costs are cycle counts: finite, non-negative, representable.
        cost in 0.0f64..1e9,
        flag in prop::bool::ANY,
        name in "[a-z0-9-]{1,12}",
    ) {
        for ev in sample_events(cycle, line, live, delta, cost, flag, name) {
            let line_text = ev.to_ndjson_line();
            let back = Event::parse_line(&line_text)
                .unwrap_or_else(|e| panic!("{line_text}: {e}"));
            prop_assert_eq!(&back, &ev, "round trip changed the event");
        }
    }

    #[test]
    fn registry_counters_grow_monotonically(
        cycles in prop::collection::vec(0u64..1_000_000, 1..60),
    ) {
        let mut reg = Registry::new();
        let mut last_seen = 0u64;
        let mut last_total = 0u64;
        for (i, &c) in cycles.iter().enumerate() {
            // Alternate kinds so several counters are in play.
            let ev = if i % 3 == 0 {
                Event::Stall { cycle: c, len: 200 }
            } else if i % 3 == 1 {
                Event::MshrAlloc { cycle: c, line: c, demand: true, live: 1, demand_live: 1, slot: 0 }
            } else {
                Event::MshrRelease { cycle: c, line: c, demand: true, live: 0, cost: 4.0, slot: 0 }
            };
            reg.observe(&ev);
            prop_assert!(reg.events_seen() > last_seen, "events_seen must strictly grow");
            last_seen = reg.events_seen();
            let total: u64 = reg.counters().map(|(_, v)| v).sum();
            prop_assert!(total >= last_total, "per-kind counters must never decrease");
            last_total = total;
        }
        prop_assert_eq!(reg.events_seen(), cycles.len() as u64);
    }

    #[test]
    fn ndjson_sink_output_is_parseable_with_any_snapshot_interval(
        n_events in 1usize..40,
        every in 1u64..10,
    ) {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut buf).with_snapshot_every(every);
            for i in 0..n_events {
                sink.record(Event::Stall { cycle: i as u64, len: 150 + i as u64 });
            }
        }
        let text = String::from_utf8(buf).expect("NDJSON is UTF-8");
        let mut stalls = 0u64;
        let mut final_snapshot_total = None;
        for line in text.lines() {
            let ev = Event::parse_line(line).expect("every line parses");
            match ev {
                Event::Stall { .. } => stalls += 1,
                Event::Snapshot { events, .. } => final_snapshot_total = Some(events),
            _ => {}
            }
        }
        prop_assert_eq!(stalls as usize, n_events);
        // The drop-time snapshot always reports the exact event total.
        prop_assert_eq!(final_snapshot_total, Some(n_events as u64));
    }

    #[test]
    fn exact_share_partitions_any_delta(
        delta in 0u64..5_000_000,
        n in 1u64..64,
    ) {
        // The 1/N apportionment is integer-exact: shares sum to delta,
        // and no share deviates from delta/n by more than one cycle.
        let shares: Vec<u64> = (0..n).map(|i| exact_share(delta, n, i)).collect();
        prop_assert_eq!(shares.iter().sum::<u64>(), delta);
        for &s in &shares {
            prop_assert!(s == delta / n || s == delta / n + 1);
        }
    }

    #[test]
    fn ledger_fold_conserves_attributed_cycles(
        charges in prop::collection::vec((0u64..64, 0u8..8, 0u64..500), 0..50),
    ) {
        let events: Vec<Event> = charges
            .iter()
            .map(|&(set, cost_q, cycles)| Event::StallAttrib {
                cycle: 0,
                line: set * 64,
                set,
                cost_q,
                policy: if cost_q % 2 == 0 { "lin".into() } else { "lru".into() },
                cycles,
            })
            .collect();
        let ledger = StallLedger::from_events(&events);
        prop_assert_eq!(ledger.total(), charges.iter().map(|c| c.2).sum::<u64>());
        // Roll-ups conserve the same total.
        prop_assert_eq!(ledger.cost_q_totals().iter().sum::<u64>(), ledger.total());
        prop_assert_eq!(
            ledger.policy_totals().iter().map(|(_, v)| v).sum::<u64>(),
            ledger.total()
        );
    }
}
