//! Hierarchical phase profiler for the *simulator* (not the simulated
//! machine).
//!
//! Event telemetry ([`crate::probe`]) and stall attribution explain where
//! the simulated machine's cycles go; this module explains where the host's
//! nanoseconds go, phase by phase, so ROADMAP item 1 ("10× the core loop")
//! has a measured baseline instead of a hunch. The design follows the same
//! two-tier discipline as [`Probe`](crate::probe::Probe):
//!
//! - **Compile-time tier**: the [`prof_scope!`] macro expands to *nothing*
//!   unless the crate containing the call site is built with its `prof`
//!   cargo feature. The default build carries zero instructions and zero
//!   data — simulation output is byte-identical (the parallel-determinism
//!   CI job diffs it).
//! - **Runtime tier**: with `prof` compiled in, scopes are gated on one
//!   relaxed atomic load ([`enable`]/[`disable`]). `bench_core` asserts the
//!   gate-closed residue stays under 2% of a run (the same envelope style
//!   as `policy_overheads.rs`).
//!
//! Accounting is hierarchical: each scope records *inclusive* wall
//! nanoseconds; a thread-local stack subtracts time spent in nested scopes
//! to produce *exclusive* time, so the per-phase exclusive times sum to at
//! most the wall time of the outermost scopes.
//!
//! Scope drops never touch shared memory directly: each thread batches its
//! counts in a thread-local pending table and folds that into the global
//! atomics only at coarse boundaries — every [`FOLD_THRESHOLD`] completed
//! scopes (checked when the scope stack empties), on thread exit, and on
//! [`report`]/[`reset`] for the calling thread. The hot path is therefore
//! three plain adds instead of three contended `fetch_add`s, which is what
//! keeps the gate-open overhead within the envelope `bench_core --validate`
//! asserts. Phases still aggregate across worker threads in `-j N` sweeps:
//! workers fold on exit, before the parent reports.
//!
//! The only sanctioned wall-clock read in the core crates is [`now_ns`]
//! below — lint rule D2 audits every other `Instant`/`SystemTime` mention
//! in `cache`/`core`/`mem`/`cpu`/`exec`/`trace`/`telemetry`. The profiler
//! reads time but never feeds it back into the simulation, which is what
//! keeps determinism intact.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
// lint: allow(D2, "prof clock shim: the audited wall-clock import (DESIGN.md §13)")
use std::time::Instant;

/// Phases of the core cycle loop, in hot-path order.
///
/// The names are part of the `BENCH_core.json` schema — renaming one is a
/// schema change and breaks the PR-over-PR trajectory diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Trace-side dispatch: window occupancy, gap instructions, issuing
    /// one memory access into the pipeline.
    CpuDispatch = 0,
    /// Advancing simulated time: retiring ready instructions and draining
    /// the window.
    CpuAdvance = 1,
    /// Tagstore lookup and victim selection (`CacheModel::access`).
    Tagstore = 2,
    /// MSHR fill servicing: popping completed fills, releasing slots,
    /// charging mlp-cost.
    Mshr = 3,
    /// DRAM bank + bus scheduling (`MemorySystem::request_fill`).
    Dram = 4,
    /// Telemetry emission itself (`SinkHandle::emit` with a live sink).
    TelemetryEmit = 5,
}

/// Number of entries in [`Phase`]; the accumulator table is this long.
pub const PHASE_COUNT: usize = 6;

const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "cpu_dispatch",
    "cpu_advance",
    "tagstore",
    "mshr",
    "dram",
    "telemetry_emit",
];

impl Phase {
    /// Stable schema name of the phase.
    pub fn name(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }

    /// All phases, in table order.
    pub fn all() -> [Phase; PHASE_COUNT] {
        [
            Phase::CpuDispatch,
            Phase::CpuAdvance,
            Phase::Tagstore,
            Phase::Mshr,
            Phase::Dram,
            Phase::TelemetryEmit,
        ]
    }
}

struct Slot {
    calls: AtomicU64,
    incl_ns: AtomicU64,
    excl_ns: AtomicU64,
}

static STATS: [Slot; PHASE_COUNT] = [const {
    Slot {
        calls: AtomicU64::new(0),
        incl_ns: AtomicU64::new(0),
        excl_ns: AtomicU64::new(0),
    }
}; PHASE_COUNT];
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Completed scopes a thread accumulates locally before folding them into
/// the global table (the fold also happens on thread exit and on
/// [`report`]/[`reset`] from the owning thread). Folds only trigger when
/// the scope stack is empty, so a fold never splits a nested measurement.
pub const FOLD_THRESHOLD: u64 = 4096;

/// Bumped by [`reset`] so pending counts batched before the reset are
/// discarded instead of folded into the freshly zeroed table.
static GENERATION: AtomicU64 = AtomicU64::new(0);

// lint: allow(D2, "prof clock shim epoch: compared only against itself, never fed into simulation")
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The audited clock shim: nanoseconds since the first call in this
/// process. Every wall-clock read in the core crates goes through here
/// (lint rule D2 enforces it); the value is only ever subtracted from
/// another `now_ns` reading, never mixed into simulated time.
#[inline]
pub fn now_ns() -> u64 {
    // lint: allow(D2, "prof clock shim: the one sanctioned Instant::now in core crates")
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

struct Frame {
    phase: usize,
    start_ns: u64,
    child_ns: u64,
}

/// Per-thread profiler state: the scope stack plus the pending
/// `[calls, incl_ns, excl_ns]` batch awaiting a fold into [`STATS`].
struct Local {
    stack: Vec<Frame>,
    pending: [[u64; 3]; PHASE_COUNT],
    pending_calls: u64,
    generation: u64,
}

impl Local {
    const fn new() -> Self {
        Local {
            stack: Vec::new(),
            pending: [[0; 3]; PHASE_COUNT],
            pending_calls: 0,
            generation: 0,
        }
    }

    /// Discards the pending batch if a [`reset`] happened since it started
    /// accumulating (those counts belong to the zeroed-out epoch).
    fn sync_generation(&mut self) {
        let generation = GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.pending = [[0; 3]; PHASE_COUNT];
            self.pending_calls = 0;
            self.generation = generation;
        }
    }

    /// Folds the pending batch into the global table (unless a reset made
    /// it stale) and clears it.
    fn fold(&mut self) {
        if self.pending_calls == 0 {
            return;
        }
        if self.generation == GENERATION.load(Ordering::Relaxed) {
            for (slot, p) in STATS.iter().zip(&self.pending) {
                if p[0] > 0 {
                    slot.calls.fetch_add(p[0], Ordering::Relaxed);
                    slot.incl_ns.fetch_add(p[1], Ordering::Relaxed);
                    slot.excl_ns.fetch_add(p[2], Ordering::Relaxed);
                }
            }
        }
        self.pending = [[0; 3]; PHASE_COUNT];
        self.pending_calls = 0;
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: whatever is still batched joins the global totals.
        self.fold();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
}

/// Open the runtime gate. Scopes entered afterwards are recorded.
///
/// The gate is a standalone flag: it publishes no data, every
/// accumulator is itself atomic, and readers only need to see the flip
/// eventually. Relaxed on both sides is the honest ordering.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Close the runtime gate; in-flight scopes still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the runtime gate is open.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every accumulator and discard the calling thread's pending batch.
/// Other threads' already-batched counts are invalidated via the reset
/// generation (they are discarded, not folded, at their next fold point).
/// Not safe to call while scopes are in flight on other threads.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|l| l.borrow_mut().sync_generation());
    for slot in &STATS {
        slot.calls.store(0, Ordering::Relaxed);
        slot.incl_ns.store(0, Ordering::Relaxed);
        slot.excl_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard recording one scope of a phase. Construct via [`scope`]
/// (or, at instrumentation sites, the [`prof_scope!`] macro).
pub struct ScopeGuard {
    armed: bool,
}

/// Enter `phase` if the runtime gate is open. The returned guard records
/// inclusive/exclusive nanoseconds and a call count when dropped.
#[inline]
pub fn scope(phase: Phase) -> ScopeGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return ScopeGuard { armed: false };
    }
    let start_ns = now_ns();
    LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        if local.stack.is_empty() {
            local.sync_generation();
        }
        local.stack.push(Frame {
            phase: phase as usize,
            start_ns,
            child_ns: 0,
        });
    });
    ScopeGuard { armed: true }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = now_ns();
        LOCAL.with(|l| {
            let mut local = l.borrow_mut();
            let Some(frame) = local.stack.pop() else {
                return;
            };
            let incl = end_ns.saturating_sub(frame.start_ns);
            let excl = incl.saturating_sub(frame.child_ns);
            let p = &mut local.pending[frame.phase];
            p[0] += 1;
            p[1] = p[1].saturating_add(incl);
            p[2] = p[2].saturating_add(excl);
            local.pending_calls += 1;
            if let Some(parent) = local.stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(incl);
            } else if local.pending_calls >= FOLD_THRESHOLD {
                local.fold();
            }
        });
    }
}

/// One phase's accumulated totals, as reported by [`report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseReport {
    /// Stable schema name ([`Phase::name`]).
    pub name: &'static str,
    /// Completed scope entries.
    pub calls: u64,
    /// Wall nanoseconds inside the phase, nested scopes included.
    pub incl_ns: u64,
    /// Wall nanoseconds inside the phase, nested scopes subtracted.
    pub excl_ns: u64,
}

/// Snapshot all phase accumulators, in table order (zero-call phases
/// included; callers filter). Folds the calling thread's pending batch
/// first; other threads' batches are visible once they fold (threshold,
/// exit, or their own `report`).
pub fn report() -> Vec<PhaseReport> {
    LOCAL.with(|l| l.borrow_mut().fold());
    Phase::all()
        .iter()
        .map(|&p| {
            let slot = &STATS[p as usize];
            PhaseReport {
                name: p.name(),
                calls: slot.calls.load(Ordering::Relaxed),
                incl_ns: slot.incl_ns.load(Ordering::Relaxed),
                excl_ns: slot.excl_ns.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Enter a profiler phase for the rest of the enclosing block.
///
/// Expands to a [`scope`](crate::prof::scope) guard binding when the
/// *calling* crate is built with its `prof` cargo feature, and to nothing
/// otherwise — the `#[cfg]` inside the macro body is evaluated at the
/// expansion site, which is exactly what makes the default build carry
/// zero profiling instructions.
///
/// ```ignore
/// fn advance_to(&mut self, t: u64) {
///     mlpsim_telemetry::prof_scope!(CpuAdvance);
///     // ... phase body ...
/// }
/// ```
#[macro_export]
macro_rules! prof_scope {
    ($phase:ident) => {
        #[cfg(feature = "prof")]
        let _mlpsim_prof_scope_guard = $crate::prof::scope($crate::prof::Phase::$phase);
    };
}

#[cfg(test)]
mod tests {
    use super::{disable, enable, is_enabled, now_ns, report, reset, scope, Phase, PHASE_COUNT};
    use std::sync::Mutex;

    /// The accumulators are process-global; serialize the tests that
    /// toggle them.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn spin_ns(ns: u64) {
        let start = now_ns();
        while now_ns().saturating_sub(start) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn clock_shim_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn phase_names_are_stable_schema() {
        let names: Vec<&str> = Phase::all().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "cpu_dispatch",
                "cpu_advance",
                "tagstore",
                "mshr",
                "dram",
                "telemetry_emit"
            ]
        );
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = guard();
        disable();
        reset();
        {
            let _s = scope(Phase::Tagstore);
            spin_ns(20_000);
        }
        let r = report();
        assert!(r.iter().all(|p| p.calls == 0 && p.incl_ns == 0));
    }

    #[test]
    fn nested_scopes_split_inclusive_and_exclusive_time() {
        let _g = guard();
        reset();
        enable();
        {
            let _outer = scope(Phase::CpuAdvance);
            spin_ns(200_000);
            {
                let _inner = scope(Phase::Mshr);
                spin_ns(200_000);
            }
        }
        disable();
        let r = report();
        let outer = &r[Phase::CpuAdvance as usize];
        let inner = &r[Phase::Mshr as usize];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Inner time is inside outer's inclusive but outside its exclusive.
        assert!(outer.incl_ns >= inner.incl_ns);
        assert!(
            outer.excl_ns <= outer.incl_ns - inner.incl_ns,
            "exclusive must not count the nested scope: excl={} incl={} inner={}",
            outer.excl_ns,
            outer.incl_ns,
            inner.incl_ns
        );
        // A leaf's exclusive time is its inclusive time.
        assert_eq!(inner.excl_ns, inner.incl_ns);
    }

    #[test]
    fn reset_zeroes_the_table_and_gate_reports() {
        let _g = guard();
        enable();
        assert!(is_enabled());
        {
            let _s = scope(Phase::Dram);
        }
        disable();
        assert!(!is_enabled());
        reset();
        assert!(report().iter().all(|p| p.calls == 0));
    }

    #[test]
    fn reset_discards_the_pending_batch() {
        let _g = guard();
        reset();
        enable();
        {
            let _s = scope(Phase::Dram);
            spin_ns(1_000);
        }
        // The drop above parked its counts in the thread-local batch;
        // resetting must invalidate them, not let a later fold resurrect
        // them into the zeroed table.
        reset();
        {
            let _s = scope(Phase::Tagstore);
        }
        disable();
        let r = report();
        assert_eq!(r[Phase::Dram as usize].calls, 0);
        assert_eq!(r[Phase::Tagstore as usize].calls, 1);
    }

    #[test]
    fn worker_batches_fold_on_thread_exit_below_the_threshold() {
        let _g = guard();
        reset();
        enable();
        let h = std::thread::spawn(|| {
            // Far fewer scopes than FOLD_THRESHOLD: only the exit fold can
            // publish these.
            for _ in 0..3 {
                let _s = scope(Phase::Mshr);
            }
        });
        h.join().expect("profiled thread exits cleanly");
        disable();
        assert_eq!(report()[Phase::Mshr as usize].calls, 3);
    }

    #[test]
    fn accumulators_aggregate_across_threads() {
        let _g = guard();
        reset();
        enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..8 {
                        let _s = scope(Phase::Tagstore);
                        spin_ns(5_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("profiled thread exits cleanly");
        }
        disable();
        let r = report();
        assert_eq!(r[Phase::Tagstore as usize].calls, 32);
    }
}
