//! Counter/gauge registry: folds an event stream into running totals.

use crate::event::Event;
use std::collections::BTreeMap;

/// Named monotonic counters plus last-value gauges.
///
/// Counters only move forward — `incr` takes an unsigned delta and there is
/// no reset short of dropping the registry. That monotonicity is a tested
/// invariant: snapshot N+1 of any counter is ≥ snapshot N, which is what
/// makes interleaved `snapshot` events in an NDJSON stream meaningful as
/// cumulative totals.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    events_seen: u64,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name`, creating it at zero first.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set gauge `name` to its latest observation.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Total events observed via [`Registry::observe`].
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Fold one event in: bump its per-kind counter and any derived
    /// gauges (MSHR occupancy, latest IPC).
    pub fn observe(&mut self, ev: &Event) {
        self.events_seen += 1;
        self.incr(ev.kind(), 1);
        match ev {
            Event::MshrAlloc { live, .. } | Event::MshrRelease { live, .. } => {
                self.set_gauge("mshr_live", *live as f64);
            }
            Event::Sample { ipc, mpki, .. } => {
                self.set_gauge("ipc", *ipc);
                self.set_gauge("mpki", *mpki);
            }
            _ => {}
        }
    }

    /// Materialize the per-kind counters as a `snapshot` event.
    pub fn snapshot(&self) -> Event {
        Event::Snapshot {
            events: self.events_seen,
            counts: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Registry;
    use crate::event::Event;

    #[test]
    fn counters_are_monotonic_under_observation() {
        let mut r = Registry::new();
        let mut last = 0;
        for i in 0..100u64 {
            r.observe(&Event::Stall { cycle: i, len: 150 });
            let now = r.counter("stall");
            assert!(now > last);
            last = now;
        }
        assert_eq!(r.counter("stall"), 100);
        assert_eq!(r.events_seen(), 100);
    }

    #[test]
    fn gauges_track_latest_value() {
        let mut r = Registry::new();
        r.observe(&Event::MshrAlloc {
            cycle: 1,
            line: 1,
            demand: true,
            live: 5,
            demand_live: 5,
            slot: 0,
        });
        assert_eq!(r.gauge("mshr_live"), Some(5.0));
        r.observe(&Event::MshrRelease {
            cycle: 2,
            line: 1,
            demand: true,
            live: 4,
            cost: 1.0,
            slot: 0,
        });
        assert_eq!(r.gauge("mshr_live"), Some(4.0));
    }

    #[test]
    fn snapshot_carries_all_counts() {
        let mut r = Registry::new();
        r.observe(&Event::Stall { cycle: 1, len: 200 });
        r.observe(&Event::Stall { cycle: 2, len: 200 });
        match r.snapshot() {
            Event::Snapshot { events, counts } => {
                assert_eq!(events, 2);
                assert_eq!(counts, vec![("stall".to_string(), 2)]);
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }
}
