//! Stall-episode spans: the interval form of the attribution story.
//!
//! A span is one full-window memory stall — opened when the pipeline
//! stalls on an L2-missing window head, closed when that head's fill
//! arrives. Spans carry enough identity (head line, set, `cost_q`,
//! deciding policy) for trace viewers and reports to say *what* the
//! pipeline was waiting on, and their cycles are apportioned into the
//! [`crate::attrib::StallLedger`] by the CPU-side tracker.

use crate::event::Event;

/// One closed stall span `[begin, end)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Cycle the pipeline stalled on the window head.
    pub begin: u64,
    /// Cycle the head's fill arrived and retirement resumed.
    pub end: u64,
    /// Block address of the head-of-window miss.
    pub line: u64,
    /// L2 set index the head line mapped to.
    pub set: u64,
    /// Quantized mlp-cost of the head miss (known at close).
    pub cost_q: u8,
    /// Replacement policy governing the head's set.
    pub policy: String,
    /// Demand misses outstanding in the MSHR when the span opened.
    pub n_begin: u64,
}

impl Span {
    /// Span length in cycles.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    /// True for a degenerate (zero-length) span.
    pub fn is_empty(&self) -> bool {
        self.end <= self.begin
    }

    /// Encode as the streaming event form.
    pub fn to_event(&self) -> Event {
        Event::StallSpan {
            begin: self.begin,
            end: self.end,
            line: self.line,
            set: self.set,
            cost_q: self.cost_q,
            policy: self.policy.clone(),
            n_begin: self.n_begin,
        }
    }

    /// Decode from the streaming event form; `None` for other kinds.
    pub fn from_event(ev: &Event) -> Option<Span> {
        match ev {
            Event::StallSpan {
                begin,
                end,
                line,
                set,
                cost_q,
                policy,
                n_begin,
            } => Some(Span {
                begin: *begin,
                end: *end,
                line: *line,
                set: *set,
                cost_q: *cost_q,
                policy: policy.clone(),
                n_begin: *n_begin,
            }),
            _ => None,
        }
    }

    /// Collect every span from an event stream, in emission order.
    pub fn collect<'a>(events: impl IntoIterator<Item = &'a Event>) -> Vec<Span> {
        events.into_iter().filter_map(Span::from_event).collect()
    }
}

/// Check that `[begin, end)` intervals never overlap, in the order given.
///
/// Stall spans come from one retirement head, so a well-formed stream
/// emits them already sorted and disjoint; the trace validator leans on
/// this to certify one-row-per-timeline exports. Returns the index of
/// the first offending interval, or `Ok(())`.
pub fn check_disjoint(intervals: &[(u64, u64)]) -> Result<(), usize> {
    let mut prev_end = 0u64;
    for (i, &(begin, end)) in intervals.iter().enumerate() {
        if begin < prev_end || end < begin {
            return Err(i);
        }
        prev_end = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(begin: u64, end: u64) -> Span {
        Span {
            begin,
            end,
            line: 7,
            set: 3,
            cost_q: 7,
            policy: "lin".into(),
            n_begin: 1,
        }
    }

    #[test]
    fn event_round_trip() {
        let s = span(100, 544);
        assert_eq!(Span::from_event(&s.to_event()), Some(s.clone()));
        assert_eq!(Span::from_event(&Event::Stall { cycle: 1, len: 2 }), None);
        assert_eq!(s.len(), 444);
        assert!(!s.is_empty());
    }

    #[test]
    fn collect_filters_spans() {
        let evs = vec![
            Event::Stall { cycle: 1, len: 2 },
            span(10, 20).to_event(),
            span(30, 40).to_event(),
        ];
        assert_eq!(Span::collect(&evs).len(), 2);
    }

    #[test]
    fn disjoint_checker() {
        assert_eq!(check_disjoint(&[(0, 5), (5, 9), (12, 12)]), Ok(()));
        assert_eq!(check_disjoint(&[(0, 5), (4, 9)]), Err(1));
        assert_eq!(check_disjoint(&[(3, 2)]), Err(0));
    }
}
