//! Request-scoped distributed tracing for the serve tier.
//!
//! The simulator already attributes every simulated stall cycle to a named
//! cause (the Algorithm-1 ledger); this module applies the same discipline
//! to the *serving* path: every millisecond of a request's wall time lands
//! in a named span, and the span tree reconciles against the measured
//! total. Three pieces:
//!
//! - **Ids and context propagation** ([`TraceCtx`], [`parse_traceparent`],
//!   [`format_traceparent`]): 128-bit trace ids and 64-bit span ids drawn
//!   from the audited [`prof::now_ns`] clock shim mixed through
//!   splitmix64, carried across processes in the W3C `traceparent` header
//!   format (`00-<32 hex>-<16 hex>-<2 hex>`). An incoming header is
//!   honored — the server continues the caller's trace — which is the
//!   contract a future sharded coordinator/worker tier needs.
//! - **Span recording** ([`SpanGuard`], [`TraceCtx::record_span`]): RAII
//!   guards for same-thread phases, explicit timestamped records for
//!   cross-thread phases (queue wait, worker-pool cells). Timing uses
//!   [`prof::now_ns`] exclusively — the same sanctioned clock the phase
//!   profiler reads — so lint rule D2 keeps its single-shim guarantee.
//! - **The flight recorder** ([`FlightRecorder`]): a bounded ring of the
//!   last N completed traces, with error/backpressure/cancel traces pinned
//!   in a separate ring so a burst of healthy traffic cannot evict the
//!   evidence of the one request that failed. Slots are guarded by
//!   spin-CAS flags rather than OS mutexes: a writer claims its slot with
//!   a `fetch_add` and exchanges one `Arc` pointer, so the publish path
//!   never blocks and never allocates.
//!
//! A completed trace renders as JSON for the `/debug/traces` endpoints and
//! as a Chrome trace-event document (reusing [`crate::traceevent`]'s slice
//! constructors) for `chrome://tracing`/Perfetto. [`CompletedTrace::reconcile`]
//! is the wall-time sibling of the stall ledger's reconciliation line: for
//! every span, the durations of its direct children must fit inside it,
//! and the root's uncovered residue is reported as a fraction callers can
//! alert on.

use crate::json::Json;
use crate::prof;
use crate::traceevent;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The W3C `trace-flags` bit meaning "this trace is sampled".
pub const FLAG_SAMPLED: u8 = 0x01;

/// Lock helper for the span buffer: a poisoned mutex yields its guard
/// (span pushes are single writes; no invariant spans a panic).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Id generation
// ---------------------------------------------------------------------------

/// splitmix64: the standard 64-bit finalizer-style mixer. Statistically
/// strong enough for id generation and fully deterministic in its inputs
/// (the audited clock plus a process-local sequence number).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Process-local sequence so two ids drawn in the same nanosecond differ.
static SEQ: AtomicU64 = AtomicU64::new(1);

/// A fresh non-zero 64-bit span id.
pub fn next_span_id() -> u64 {
    loop {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(prof::now_ns() ^ splitmix64(seq));
        if id != 0 {
            return id;
        }
    }
}

/// A fresh non-zero 128-bit trace id (two independent span-id draws).
pub fn next_trace_id() -> u128 {
    // The high half is non-zero by construction, so the whole id is.
    (u128::from(next_span_id()) << 64) | u128::from(next_span_id())
}

// ---------------------------------------------------------------------------
// W3C traceparent
// ---------------------------------------------------------------------------

/// Render a `traceparent` header value: version 00, lowercase hex.
pub fn format_traceparent(trace_id: u128, span_id: u64, flags: u8) -> String {
    format!("00-{trace_id:032x}-{span_id:016x}-{flags:02x}")
}

/// Strict lowercase-hex field parse; `None` on any other byte or on a
/// length mismatch with `want` digits.
fn hex_field(s: &str, want: usize) -> Option<u128> {
    if s.len() != want || !s.is_ascii() {
        return None;
    }
    let mut v: u128 = 0;
    for b in s.bytes() {
        let d = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            // Uppercase hex is explicitly invalid per the W3C spec.
            _ => return None,
        };
        v = (v << 4) | u128::from(d);
    }
    Some(v)
}

/// Parse a `traceparent` header value into `(trace_id, parent_span_id,
/// flags)`. Rejects everything the W3C grammar rejects: wrong field
/// count/lengths, uppercase or non-hex digits, the unknown version `ff`,
/// and all-zero trace or span ids. Version `00` is required (this server
/// does not forward unknown future versions).
pub fn parse_traceparent(raw: &str) -> Option<(u128, u64, u8)> {
    let mut parts = raw.trim().split('-');
    let version = parts.next()?;
    let trace = parts.next()?;
    let parent = parts.next()?;
    let flags = parts.next()?;
    if parts.next().is_some() || version != "00" {
        return None;
    }
    let trace_id = hex_field(trace, 32)?;
    let parent_id = hex_field(parent, 16)?;
    let flags = hex_field(flags, 2)?;
    if trace_id == 0 || parent_id == 0 {
        return None;
    }
    // Field widths above bound both casts.
    #[allow(clippy::cast_possible_truncation)]
    Some((trace_id, parent_id as u64, flags as u8))
}

// ---------------------------------------------------------------------------
// Spans and the in-flight trace
// ---------------------------------------------------------------------------

/// One finished span inside a trace.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Phase name (`parse`, `queue_wait`, `run(cell=1,2)`, ...).
    pub name: String,
    /// This span's id.
    pub id: u64,
    /// Parent span id (the root's parent is the propagated upstream span,
    /// or 0 when the trace started here).
    pub parent: u64,
    /// Start, [`prof::now_ns`] timebase.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Free-form annotations (`status`, `lines`, job ids, ...).
    pub tags: Vec<(String, String)>,
}

struct TraceInner {
    trace_id: u128,
    root: u64,
    /// Parent span the trace inherited from an incoming `traceparent`
    /// (0 when the trace originated here).
    upstream: u64,
    flags: u8,
    name: String,
    start_ns: u64,
    status: AtomicU64,
    pinned: AtomicBool,
    /// Set when a long-lived owner (a queued job) takes over completion,
    /// so the request handler must not finish the trace itself.
    adopted: AtomicBool,
    spans: Mutex<Vec<SpanRec>>,
}

/// A handle into an in-flight trace: the shared span buffer plus the span
/// id new children should attach under. Clones share the buffer; `parent`
/// is per-handle, which is how the context "moves down" the tree.
#[derive(Clone)]
pub struct TraceCtx {
    inner: Arc<TraceInner>,
    /// Span id children of this handle attach to.
    pub parent: u64,
}

impl TraceCtx {
    /// Open a trace. With `inherited` (a parsed `traceparent`), the new
    /// root continues the caller's trace under the caller's span;
    /// otherwise fresh ids are drawn. The root span is recorded when the
    /// trace finishes.
    pub fn begin(name: &str, inherited: Option<(u128, u64, u8)>) -> TraceCtx {
        Self::begin_at(name, inherited, prof::now_ns())
    }

    /// [`TraceCtx::begin`] with an explicit root start time — for callers
    /// that read the clock before the request name was known (the server
    /// stamps `start_ns` before reading the socket, so the root span
    /// covers the read).
    pub fn begin_at(name: &str, inherited: Option<(u128, u64, u8)>, start_ns: u64) -> TraceCtx {
        let (trace_id, upstream, flags) = match inherited {
            Some((t, p, f)) => (t, p, f),
            None => (next_trace_id(), 0, FLAG_SAMPLED),
        };
        let root = next_span_id();
        let inner = TraceInner {
            trace_id,
            root,
            upstream,
            flags,
            name: name.to_string(),
            start_ns,
            status: AtomicU64::new(0),
            pinned: AtomicBool::new(false),
            adopted: AtomicBool::new(false),
            spans: Mutex::new(Vec::with_capacity(8)),
        };
        TraceCtx {
            inner: Arc::new(inner),
            parent: root,
        }
    }

    /// This trace's 128-bit id.
    pub fn trace_id(&self) -> u128 {
        self.inner.trace_id
    }

    /// The id of the root span.
    pub fn root_span(&self) -> u64 {
        self.inner.root
    }

    /// A handle on the same trace whose children attach directly under
    /// the root span — for long-lived phases (queue wait, run) that
    /// outlive the sub-span the trace was handed over from.
    pub fn at_root(&self) -> TraceCtx {
        TraceCtx {
            inner: Arc::clone(&self.inner),
            parent: self.inner.root,
        }
    }

    /// 32-lowercase-hex form of the trace id.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.inner.trace_id)
    }

    /// When the trace started, [`prof::now_ns`] timebase.
    pub fn start_ns(&self) -> u64 {
        self.inner.start_ns
    }

    /// The `traceparent` value to propagate downstream from this context
    /// (current parent span as the parent id).
    pub fn traceparent(&self) -> String {
        format_traceparent(self.inner.trace_id, self.parent, self.inner.flags)
    }

    /// Record the final status (HTTP status code, or the job-outcome
    /// mapping the serve tier uses).
    pub fn set_status(&self, status: u16) {
        self.inner.status.store(u64::from(status), Ordering::Relaxed);
        if status >= 400 {
            self.pin();
        }
    }

    /// Mark the trace for preferential retention (errors, 429s,
    /// deadline kills, cancellations).
    pub fn pin(&self) {
        self.inner.pinned.store(true, Ordering::Relaxed);
    }

    /// Hand completion duty to a longer-lived owner (a submitted job).
    /// The request handler checks [`TraceCtx::adopted`] before finishing.
    pub fn adopt(&self) {
        self.inner.adopted.store(true, Ordering::Relaxed);
    }

    /// Whether a longer-lived owner will finish this trace.
    pub fn adopted(&self) -> bool {
        self.inner.adopted.load(Ordering::Relaxed)
    }

    /// Start a child span under this handle; the span closes (and is
    /// recorded) when the guard drops.
    pub fn child(&self, name: &str) -> SpanGuard {
        SpanGuard {
            ctx: TraceCtx {
                inner: Arc::clone(&self.inner),
                parent: next_span_id(),
            },
            attach_to: self.parent,
            name: name.to_string(),
            start_ns: prof::now_ns(),
            tags: Vec::new(),
        }
    }

    /// Record a span from explicit timestamps — the cross-thread form
    /// used for queue wait (measured submit→take) and worker-pool cells.
    /// Returns the new span's id so callers can parent further records
    /// under it.
    pub fn record_span(
        &self,
        name: &str,
        parent: u64,
        start_ns: u64,
        end_ns: u64,
        tags: Vec<(String, String)>,
    ) -> u64 {
        let id = next_span_id();
        self.record_span_with_id(id, name, parent, start_ns, end_ns, tags);
        id
    }

    /// [`TraceCtx::record_span`] with a caller-allocated id (used when the
    /// id must exist before the span ends, e.g. the `run` span whose cell
    /// children are recorded while it is still open).
    pub fn record_span_with_id(
        &self,
        id: u64,
        name: &str,
        parent: u64,
        start_ns: u64,
        end_ns: u64,
        tags: Vec<(String, String)>,
    ) {
        lock(&self.inner.spans).push(SpanRec {
            name: name.to_string(),
            id,
            parent,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            tags,
        });
    }

    /// Close the trace: record the root span, freeze the span list, and
    /// publish the completed trace to `recorder`. Returns the completed
    /// trace so the caller can run the reconciliation invariant or log a
    /// summary. Idempotent via [`TraceCtx::adopted`] conventions at the
    /// call sites (each trace has exactly one finisher).
    pub fn finish(&self, recorder: &FlightRecorder) -> Arc<CompletedTrace> {
        let end_ns = prof::now_ns();
        let status_raw = self.inner.status.load(Ordering::Relaxed);
        // Stored from a u16; the min guard keeps the cast total anyway.
        #[allow(clippy::cast_possible_truncation)]
        let status = status_raw.min(u64::from(u16::MAX)) as u16;
        let mut spans = std::mem::take(&mut *lock(&self.inner.spans));
        spans.push(SpanRec {
            name: "request".to_string(),
            id: self.inner.root,
            parent: self.inner.upstream,
            start_ns: self.inner.start_ns,
            dur_ns: end_ns.saturating_sub(self.inner.start_ns),
            tags: Vec::new(),
        });
        spans.sort_by_key(|s| s.start_ns);
        let done = Arc::new(CompletedTrace {
            trace_id: self.inner.trace_id,
            root: self.inner.root,
            name: self.inner.name.clone(),
            status,
            pinned: self.inner.pinned.load(Ordering::Relaxed),
            start_ns: self.inner.start_ns,
            dur_ns: end_ns.saturating_sub(self.inner.start_ns),
            spans,
        });
        recorder.push(Arc::clone(&done));
        done
    }
}

/// RAII child span: times `name` from construction to drop on the same
/// thread, then records it into the trace.
pub struct SpanGuard {
    ctx: TraceCtx,
    attach_to: u64,
    name: String,
    start_ns: u64,
    tags: Vec<(String, String)>,
}

impl SpanGuard {
    /// A context whose children attach under this span — pass it down to
    /// nest further work inside the guarded phase.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx.clone()
    }

    /// This span's id.
    pub fn span_id(&self) -> u64 {
        self.ctx.parent
    }

    /// Attach a key/value annotation.
    pub fn tag(&mut self, key: &str, value: impl ToString) {
        self.tags.push((key.to_string(), value.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.ctx.record_span_with_id(
            self.ctx.parent,
            &self.name,
            self.attach_to,
            self.start_ns,
            prof::now_ns(),
            std::mem::take(&mut self.tags),
        );
    }
}

// ---------------------------------------------------------------------------
// Completed traces
// ---------------------------------------------------------------------------

/// A finished trace: the immutable record the flight recorder retains and
/// the `/debug/traces` endpoints serve.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    /// 128-bit trace id (possibly inherited from upstream).
    pub trace_id: u128,
    /// Root span id.
    pub root: u64,
    /// Request name, e.g. `POST /jobs`.
    pub name: String,
    /// Final status (HTTP code; job outcomes use the serve tier's
    /// mapping: done→200, cancelled→499, failed→500).
    pub status: u16,
    /// Whether this trace is retained preferentially.
    pub pinned: bool,
    /// Root start, [`prof::now_ns`] timebase.
    pub start_ns: u64,
    /// Root duration in nanoseconds — the request's wall time.
    pub dur_ns: u64,
    /// Every span including the root, sorted by start time.
    pub spans: Vec<SpanRec>,
}

/// The wall-time reconciliation report for one trace.
#[derive(Clone, Copy, Debug)]
pub struct Reconciliation {
    /// Root span duration (request wall time), ns.
    pub root_dur_ns: u64,
    /// Sum of the root's direct children durations, ns.
    pub children_dur_ns: u64,
    /// `(root - children) / root`: the wall time no child span explains.
    /// Negative means the children overlap or overrun the root.
    pub residue_frac: f64,
    /// True when some span's direct children sum past the span itself —
    /// the tree double-books time and the instrumentation is wrong.
    pub overrun: bool,
}

impl CompletedTrace {
    /// 32-lowercase-hex form of the trace id (the `/debug/traces/:id`
    /// path segment).
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// Check the span tree against the measured wall time: for every
    /// span, its direct children's durations must sum to no more than its
    /// own (one-retirement-head rule: the serve phases are sequential),
    /// and the root residue is reported for alerting. The 0.1% slack per
    /// comparison absorbs clock-read granularity at span edges.
    pub fn reconcile(&self) -> Reconciliation {
        let mut overrun = false;
        let mut root_children: u64 = 0;
        for parent in &self.spans {
            let covered: u64 = self
                .spans
                .iter()
                .filter(|s| s.parent == parent.id && s.id != parent.id)
                .map(|s| s.dur_ns)
                .sum();
            if parent.id == self.root {
                root_children = covered;
            }
            let slack = parent.dur_ns / 1000 + 50_000;
            if covered > parent.dur_ns.saturating_add(slack) {
                overrun = true;
            }
        }
        let root = self.dur_ns.max(1) as f64;
        Reconciliation {
            root_dur_ns: self.dur_ns,
            children_dur_ns: root_children,
            residue_frac: (self.dur_ns as f64 - root_children as f64) / root,
            overrun,
        }
    }

    /// Duration of the first span with `name`, if present (metrics wiring
    /// reads `queue_wait`/`run` out of completed job traces).
    pub fn span_dur_ns(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.dur_ns)
    }

    /// Full JSON document: summary fields plus the span tree. Span and
    /// parent ids render as 16-hex strings (u64 does not survive an f64
    /// JSON number), times as integer microseconds relative to the root.
    pub fn to_json(&self) -> Json {
        let recon = self.reconcile();
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                let mut pairs = vec![
                    ("name".to_string(), Json::Str(s.name.clone())),
                    ("id".to_string(), Json::Str(format!("{:016x}", s.id))),
                    (
                        "parent".to_string(),
                        Json::Str(format!("{:016x}", s.parent)),
                    ),
                    (
                        "start_us".to_string(),
                        Json::Num(ns_to_us(s.start_ns.saturating_sub(self.start_ns)) as f64),
                    ),
                    ("dur_us".to_string(), Json::Num(ns_to_us(s.dur_ns) as f64)),
                ];
                if !s.tags.is_empty() {
                    pairs.push((
                        "tags".to_string(),
                        Json::Obj(
                            s.tags
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::Obj(vec![
            ("trace_id".to_string(), Json::Str(self.trace_id_hex())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("status".to_string(), Json::Num(f64::from(self.status))),
            ("pinned".to_string(), Json::Bool(self.pinned)),
            ("start_ns".to_string(), Json::Num(self.start_ns as f64)),
            ("dur_us".to_string(), Json::Num(ns_to_us(self.dur_ns) as f64)),
            (
                "residue_pct".to_string(),
                Json::Num(recon.residue_frac * 100.0),
            ),
            ("spans".to_string(), Json::Arr(spans)),
        ])
    }

    /// Chrome trace-event document for this one trace: every span becomes
    /// a complete ("X") slice on one process/thread row, microsecond
    /// timestamps relative to the root — loadable directly in
    /// `chrome://tracing`/Perfetto.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events = vec![traceevent::name_event(
            "process_name",
            1,
            0,
            &format!("{} [{}]", self.name, self.trace_id_hex()),
        )];
        events.extend(self.spans.iter().map(|s| {
            traceevent::complete_event(
                &s.name,
                ns_to_us(s.start_ns.saturating_sub(self.start_ns)),
                ns_to_us(s.dur_ns),
                1,
                0,
                s.tags
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            )
        }));
        Json::Obj(vec![("traceEvents".to_string(), Json::Arr(events))])
    }
}

fn ns_to_us(ns: u64) -> u64 {
    ns / 1000
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One recorder slot: a spin-CAS guard around an `Arc` pointer. The guard
/// is held only across a pointer move (publish) or an `Arc` clone
/// (snapshot), so contention resolves in nanoseconds and the publish path
/// never touches an OS lock or the allocator.
struct Slot {
    busy: AtomicBool,
    data: UnsafeCell<Option<Arc<CompletedTrace>>>,
}

// SAFETY: `data` is only touched while `busy` is held (acquired with a
// compare_exchange(Acquire), released with a store(Release)), which
// serializes every access and publishes the written value to the next
// acquirer.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Slot {
        Slot {
            busy: AtomicBool::new(false),
            data: UnsafeCell::new(None),
        }
    }

    /// Run `f` on the slot's payload under the spin guard.
    fn with<R>(&self, f: impl FnOnce(&mut Option<Arc<CompletedTrace>>) -> R) -> R {
        while self
            .busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Acquire)
            .is_err()
        {
            std::hint::spin_loop();
        }
        // SAFETY: the CAS above made this thread the unique holder of the
        // guard; no other thread dereferences `data` until the Release
        // store below.
        let out = f(unsafe { &mut *self.data.get() });
        self.busy.store(false, Ordering::Release);
        out
    }
}

/// A fixed-capacity overwrite-oldest ring of completed traces.
struct Ring {
    slots: Vec<Slot>,
    cursor: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn push(&self, trace: Arc<CompletedTrace>) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        if let Some(slot) = self.slots.get(idx) {
            // The old occupant's Arc drops outside the guard.
            let _evicted = slot.with(|d| d.replace(trace));
        }
    }

    fn snapshot_into(&self, out: &mut Vec<Arc<CompletedTrace>>) {
        for slot in &self.slots {
            if let Some(t) = slot.with(|d| d.clone()) {
                out.push(t);
            }
        }
    }
}

/// The in-memory flight recorder: the last [`FlightRecorder::recent_capacity`]
/// completed traces plus a separate pinned ring for error/429/deadline/
/// cancel traces, so failures survive a burst of healthy traffic. Total
/// retention never exceeds the sum of the two capacities.
pub struct FlightRecorder {
    recent: Ring,
    pinned: Ring,
    recent_cap: usize,
    pinned_cap: usize,
}

/// Default retention of healthy traces.
pub const DEFAULT_RECENT_TRACES: usize = 64;
/// Default retention of pinned (error) traces.
pub const DEFAULT_PINNED_TRACES: usize = 32;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RECENT_TRACES, DEFAULT_PINNED_TRACES)
    }
}

impl FlightRecorder {
    /// A recorder retaining up to `recent` healthy and `pinned` error
    /// traces (each clamped to at least one slot).
    pub fn new(recent: usize, pinned: usize) -> FlightRecorder {
        FlightRecorder {
            recent: Ring::new(recent),
            pinned: Ring::new(pinned),
            recent_cap: recent.max(1),
            pinned_cap: pinned.max(1),
        }
    }

    /// Healthy-ring capacity.
    pub fn recent_capacity(&self) -> usize {
        self.recent_cap
    }

    /// Pinned-ring capacity.
    pub fn pinned_capacity(&self) -> usize {
        self.pinned_cap
    }

    /// Publish one completed trace (called once per finished trace; the
    /// hot path is a cursor `fetch_add` plus one pointer exchange).
    pub fn push(&self, trace: Arc<CompletedTrace>) {
        if trace.pinned {
            self.pinned.push(trace);
        } else {
            self.recent.push(trace);
        }
    }

    /// Every retained trace, newest first (pinned and recent merged).
    pub fn snapshot(&self) -> Vec<Arc<CompletedTrace>> {
        let mut out = Vec::with_capacity(self.recent_cap + self.pinned_cap);
        self.recent.snapshot_into(&mut out);
        self.pinned.snapshot_into(&mut out);
        out.sort_by(|a, b| b.start_ns.cmp(&a.start_ns).then(a.trace_id.cmp(&b.trace_id)));
        out
    }

    /// Look one trace up by id.
    pub fn find(&self, trace_id: u128) -> Option<Arc<CompletedTrace>> {
        self.snapshot()
            .into_iter()
            .find(|t| t.trace_id == trace_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let s1 = next_span_id();
        let s2 = next_span_id();
        assert_ne!(s1, 0);
        assert_ne!(s1, s2);
    }

    #[test]
    fn traceparent_formats_and_parses() {
        let tp = format_traceparent(0xabc_d123, 0x42, FLAG_SAMPLED);
        assert_eq!(tp, "00-0000000000000000000000000abcd123-0000000000000042-01");
        assert_eq!(parse_traceparent(&tp), Some((0xabc_d123, 0x42, 1)));
    }

    #[test]
    fn traceparent_rejects_malformed_values() {
        for bad in [
            "",
            "00",
            "00-00000000000000000000000000000000-0000000000000001-01", // zero trace id
            "00-00000000000000000000000000000001-0000000000000000-01", // zero span id
            "00-0000000000000000000000000ABCD123-0000000000000042-01", // uppercase
            "01-0000000000000000000000000abcd123-0000000000000042-01", // wrong version
            "00-0abcd123-0000000000000042-01",                         // short trace id
            "00-0000000000000000000000000abcd123-42-01",               // short span id
            "00-0000000000000000000000000abcd123-0000000000000042-1",  // short flags
            "00-0000000000000000000000000abcd123-0000000000000042-01-extra",
            "00-0000000000000000000000000abcdx23-0000000000000042-01", // non-hex
        ] {
            assert_eq!(parse_traceparent(bad), None, "{bad:?} should be rejected");
        }
    }

    #[test]
    fn span_guard_records_nested_spans() {
        let ctx = TraceCtx::begin("GET /x", None);
        let parent_id;
        {
            let outer = ctx.child("outer");
            parent_id = outer.span_id();
            {
                let mut inner = outer.ctx().child("inner");
                inner.tag("k", "v");
            }
        }
        let rec = FlightRecorder::new(4, 4);
        ctx.set_status(200);
        let done = ctx.finish(&rec);
        assert_eq!(done.spans.len(), 3, "outer + inner + root");
        let inner = done
            .spans
            .iter()
            .find(|s| s.name == "inner")
            .expect("inner span recorded");
        assert_eq!(inner.parent, parent_id);
        assert_eq!(inner.tags, vec![("k".to_string(), "v".to_string())]);
        let recon = done.reconcile();
        assert!(!recon.overrun, "{recon:?}");
    }

    #[test]
    fn inherited_context_keeps_the_upstream_ids() {
        let tp = format_traceparent(7, 9, 1);
        let parsed = parse_traceparent(&tp);
        let ctx = TraceCtx::begin("POST /jobs", parsed);
        assert_eq!(ctx.trace_id(), 7);
        let rec = FlightRecorder::new(2, 2);
        let done = ctx.finish(&rec);
        assert_eq!(done.trace_id, 7);
        let root = done
            .spans
            .iter()
            .find(|s| s.id == done.root)
            .expect("root span present");
        assert_eq!(root.parent, 9, "root attaches under the upstream span");
    }

    #[test]
    fn recorder_wraps_without_exceeding_capacity_and_keeps_pinned() {
        let rec = FlightRecorder::new(4, 2);
        // 20 healthy traces (wraps the 4-slot ring five times) with two
        // pinned failures early on.
        for i in 0..20u16 {
            let ctx = TraceCtx::begin(&format!("req {i}"), None);
            ctx.set_status(if i < 2 { 500 } else { 200 });
            ctx.finish(&rec);
        }
        let snap = rec.snapshot();
        assert!(
            snap.len() <= rec.recent_capacity() + rec.pinned_capacity(),
            "{} traces retained, caps {}+{}",
            snap.len(),
            rec.recent_capacity(),
            rec.pinned_capacity()
        );
        let pinned: Vec<_> = snap.iter().filter(|t| t.pinned).collect();
        assert_eq!(pinned.len(), 2, "both early failures survive wraparound");
        assert!(pinned.iter().all(|t| t.status == 500));
        // The healthy ring holds exactly its capacity after wrapping.
        assert_eq!(snap.iter().filter(|t| !t.pinned).count(), 4);
    }

    #[test]
    fn recorder_find_returns_the_full_trace() {
        let rec = FlightRecorder::default();
        let ctx = TraceCtx::begin("GET /y", None);
        let id = ctx.trace_id();
        ctx.set_status(200);
        ctx.finish(&rec);
        let found = rec.find(id).expect("trace retained");
        assert_eq!(found.name, "GET /y");
        assert!(rec.find(id.wrapping_add(1)).is_none());
    }

    #[test]
    fn concurrent_pushes_and_snapshots_stay_within_capacity() {
        let rec = Arc::new(FlightRecorder::new(8, 4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let ctx = TraceCtx::begin(&format!("t{t} r{i}"), None);
                    ctx.set_status(if i % 50 == 0 { 429 } else { 200 });
                    ctx.finish(&rec);
                    if i % 17 == 0 {
                        let snap = rec.snapshot();
                        assert!(snap.len() <= 12, "snapshot grew past capacity");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        assert!(rec.snapshot().len() <= 12);
    }

    #[test]
    fn chrome_export_is_a_trace_event_document() {
        let ctx = TraceCtx::begin("POST /jobs", None);
        {
            let _g = ctx.child("parse");
        }
        let rec = FlightRecorder::new(2, 2);
        let done = ctx.finish(&rec);
        let doc = done.to_chrome_trace();
        let events = doc.get("traceEvents").expect("traceEvents key");
        let Json::Arr(evs) = events else {
            panic!("traceEvents must be an array");
        };
        // process_name metadata + parse span + root span.
        assert_eq!(evs.len(), 3);
        assert!(doc.to_string_compact().contains("\"ph\":\"X\""));
    }

    #[test]
    fn reconcile_flags_overbooked_trees() {
        let t = CompletedTrace {
            trace_id: 1,
            root: 10,
            name: "x".into(),
            status: 200,
            pinned: false,
            start_ns: 0,
            dur_ns: 1_000_000,
            spans: vec![
                SpanRec {
                    name: "request".into(),
                    id: 10,
                    parent: 0,
                    start_ns: 0,
                    dur_ns: 1_000_000,
                    tags: vec![],
                },
                SpanRec {
                    name: "a".into(),
                    id: 11,
                    parent: 10,
                    start_ns: 0,
                    dur_ns: 900_000,
                    tags: vec![],
                },
                SpanRec {
                    name: "b".into(),
                    id: 12,
                    parent: 10,
                    start_ns: 0,
                    dur_ns: 900_000,
                    tags: vec![],
                },
            ],
        };
        let recon = t.reconcile();
        assert!(recon.overrun, "children double-book the root");
        assert!(recon.residue_frac < 0.0);
    }

    #[test]
    fn publish_path_is_cheap() {
        // The ≤2% overhead claim for the serve hot path: a full
        // trace lifecycle (begin, three spans, finish/publish) must cost
        // microseconds, i.e. well under 2% of even a 1 ms request.
        let rec = FlightRecorder::default();
        let iters = 2_000u32;
        let t0 = prof::now_ns();
        for i in 0..iters {
            let ctx = TraceCtx::begin("bench", None);
            {
                let _a = ctx.child("parse");
            }
            {
                let _b = ctx.child("admission");
            }
            ctx.record_span("queue_wait", ctx.root_span(), 0, 100, Vec::new());
            ctx.set_status(if i % 2 == 0 { 200 } else { 500 });
            ctx.finish(&rec);
        }
        let per_trace_ns = prof::now_ns().saturating_sub(t0) / u64::from(iters);
        assert!(
            per_trace_ns < 20_000,
            "tracing a request costs {per_trace_ns} ns — more than 2% of a 1 ms request"
        );
    }
}
