#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Zero-cost telemetry for the MLP-aware cache replacement simulator.
//!
//! The paper's argument (Qureshi et al., ISCA 2006) rests on *internal*
//! dynamics — MSHR occupancy driving mlp-cost, PSEL oscillation in the
//! set-dueling engines, leader-vs-follower divergence — that end-of-run
//! aggregates cannot show. This crate makes those dynamics observable as a
//! structured event stream without taxing the simulator when observation is
//! off.
//!
//! Two layers, for two kinds of call sites:
//!
//! - **Compile-time** ([`Probe`]): the CPU pipeline (`System<P: Probe>`) is
//!   generic over a probe. The default [`NoProbe`] has
//!   `Probe::ENABLED == false`, so every `if P::ENABLED { probe.emit(..) }`
//!   guard — including event construction — is dead code the optimizer
//!   removes. `System::new` keeps its exact pre-telemetry signature via a
//!   default type parameter.
//! - **Runtime** ([`SinkHandle`]): subsystems living behind
//!   `Box<dyn ReplacementEngine>` (and plain structs like `Mshr`) cannot be
//!   generic without an invasive rewrite, so they hold a cloneable handle
//!   that is `None` unless telemetry was requested; the cost when disabled
//!   is one pointer null-check on paths that already miss the cache.
//!
//! Events serialize to NDJSON — one self-describing JSON object per line,
//! with a `"type"` discriminator — via a hand-rolled encoder/parser
//! ([`json`]) so the crate stays dependency-free. [`Registry`] folds an
//! event stream into monotonic counters and gauges, and [`NdjsonSink`]
//! interleaves periodic `snapshot` lines so long streams carry their own
//! running totals.

//!
//! On top of the stream sit the attribution types ([`attrib`], [`span`]):
//! the stall-cycle ledger keyed by (set, cost_q, policy) whose grand
//! total reconciles exactly with `mem_stall_cycles`, and the stall-span
//! interval form. [`traceevent`] renders MSHR slot occupancy and stall
//! spans as Chrome trace-event JSON for `chrome://tracing`/Perfetto.
//!
//! A third, host-facing layer is the [`prof`] phase profiler: scoped
//! timers over the *simulator's* hot loop (dispatch, tagstore, MSHR,
//! DRAM, telemetry emission), compiled away entirely unless the call
//! site's crate enables its `prof` cargo feature.

pub mod attrib;
pub mod event;
pub mod json;
pub mod probe;
pub mod prof;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;
pub mod traceevent;

pub use attrib::{exact_share, LedgerKey, StallLedger};
pub use event::Event;
pub use json::Json;
pub use probe::{NoProbe, Probe, SinkProbe};
pub use prof::{Phase, PhaseReport};
pub use registry::Registry;
pub use sink::{read_ndjson, EventSink, FanoutSink, NdjsonSink, SinkHandle, VecSink};
pub use span::Span;
pub use trace::{
    format_traceparent, parse_traceparent, CompletedTrace, FlightRecorder, SpanGuard, TraceCtx,
};
pub use traceevent::ChromeTraceSink;
