//! The stall-attribution ledger: where did `mem_stall_cycles` go?
//!
//! The paper's whole argument is denominated in stall cycles — Algorithm 1
//! charges each outstanding demand miss `1/N` per cycle, and the
//! set-dueling engines pick the policy with fewer *stall* cycles, not
//! fewer misses. An aggregate `mem_stall_cycles` cannot say which sets,
//! which `cost_q` buckets, or which policy decisions those cycles came
//! from. The ledger closes that gap: every full-window memory-stall span
//! is apportioned across the demand misses concurrently outstanding in
//! the MSHR with the same `1/N` divisor as Algorithm 1, and each miss's
//! share lands under the key ([`LedgerKey`]) naming the L2 set it mapped
//! to, its quantized mlp-cost bucket, and the replacement policy that
//! governed that set.
//!
//! The apportionment is *integer-exact*: a sub-interval of `delta` cycles
//! with `N` outstanding demand misses gives each miss `delta / N` cycles
//! and the first `delta % N` misses (in ascending MSHR slot order) one
//! extra, so every interval — and therefore the grand total — reconciles
//! with `mem_stall_cycles` as a `u64` equality, not an approximate float
//! comparison. The `mlpsim-cpu` crate enforces the reconciliation as an
//! `invariant!` under the `invariants` feature; [`StallLedger::total`]
//! gives report tooling the same check over an event stream.

use crate::event::Event;
use std::collections::BTreeMap;

/// Number of `cost_q` buckets (the 3-bit quantization of Fig. 3b).
pub const COST_Q_BUCKETS: usize = 8;

/// One attribution bucket: the L2 set a miss mapped to, its quantized
/// mlp-cost at service time, and the replacement policy that governed
/// the set ("lru", "lin", "lin-leader", "sbar", ...).
///
/// `BTreeMap` ordering (set, then cost_q, then policy) keeps every
/// iteration deterministic — lint rule D1 territory.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LedgerKey {
    /// L2 set index the missing line mapped to.
    pub set: u64,
    /// 3-bit quantized mlp-cost bucket (0..=7).
    pub cost_q: u8,
    /// Deciding replacement policy for that set at allocation time.
    pub policy: String,
}

/// Attributed stall cycles keyed by (set, cost_q, policy).
///
/// Sums exactly to the run's `mem_stall_cycles` when built from a
/// complete stream (or by the in-simulator tracker).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallLedger {
    cycles: BTreeMap<LedgerKey, u64>,
}

impl StallLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `cycles` under `key`.
    pub fn charge(&mut self, key: LedgerKey, cycles: u64) {
        if cycles > 0 {
            *self.cycles.entry(key).or_insert(0) += cycles;
        }
    }

    /// Fold one event; only `stall_attrib` events contribute.
    pub fn observe(&mut self, ev: &Event) {
        if let Event::StallAttrib {
            set,
            cost_q,
            policy,
            cycles,
            ..
        } = ev
        {
            self.charge(
                LedgerKey {
                    set: *set,
                    cost_q: *cost_q,
                    policy: policy.clone(),
                },
                *cycles,
            );
        }
    }

    /// Build a ledger from a complete event stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut ledger = Self::new();
        for ev in events {
            ledger.observe(ev);
        }
        ledger
    }

    /// Grand total of attributed cycles — reconciles exactly with
    /// `mem_stall_cycles` for a complete run.
    pub fn total(&self) -> u64 {
        self.cycles.values().sum()
    }

    /// Number of distinct (set, cost_q, policy) buckets.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Iterate buckets in (set, cost_q, policy) order.
    pub fn iter(&self) -> impl Iterator<Item = (&LedgerKey, u64)> {
        self.cycles.iter().map(|(k, v)| (k, *v))
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &StallLedger) {
        for (k, v) in other.iter() {
            self.charge(k.clone(), v);
        }
    }

    /// Top `k` sets by attributed stall cycles, descending; ties break on
    /// ascending set index so the ranking is deterministic.
    pub fn top_sets(&self, k: usize) -> Vec<(u64, u64)> {
        let mut per_set: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, v) in self.iter() {
            *per_set.entry(key.set).or_insert(0) += v;
        }
        let mut rows: Vec<(u64, u64)> = per_set.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// Attributed cycles per `cost_q` bucket — the stall-denominated twin
    /// of the paper's Fig. 5 miss distribution.
    pub fn cost_q_totals(&self) -> [u64; COST_Q_BUCKETS] {
        let mut totals = [0u64; COST_Q_BUCKETS];
        for (key, v) in self.iter() {
            totals[usize::from(key.cost_q.min(7))] += v;
        }
        totals
    }

    /// Attributed cycles per policy tag, in lexicographic policy order.
    pub fn policy_totals(&self) -> Vec<(String, u64)> {
        let mut per_policy: BTreeMap<String, u64> = BTreeMap::new();
        for (key, v) in self.iter() {
            *per_policy.entry(key.policy.clone()).or_insert(0) += v;
        }
        per_policy.into_iter().collect()
    }

    /// Per-set LIN-vs-LRU attributed-stall split: for each set that has
    /// cycles under a policy tag containing `"lin"` *or* under `"lru"`,
    /// the pair (lin_cycles, lru_cycles). Sets governed by neither tag
    /// (e.g. a pure `srrip` run) are omitted.
    pub fn lin_lru_split_by_set(&self) -> Vec<(u64, u64, u64)> {
        let mut split: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for (key, v) in self.iter() {
            let slot = if key.policy.contains("lin") {
                Some(0)
            } else if key.policy == "lru" {
                Some(1)
            } else {
                None
            };
            if let Some(which) = slot {
                let e = split.entry(key.set).or_insert((0, 0));
                if which == 0 {
                    e.0 += v;
                } else {
                    e.1 += v;
                }
            }
        }
        split.into_iter().map(|(s, (a, b))| (s, a, b)).collect()
    }
}

/// Split `delta` cycles across `n` parties integer-exactly: party `i`
/// (0-based, ascending MSHR slot order) receives `delta / n`, plus one
/// extra cycle when `i < delta % n`. The shares always sum to `delta`.
///
/// Returns 0 for `n == 0` (no parties — callers route such residual
/// cycles to the span head instead).
#[inline]
pub fn exact_share(delta: u64, n: u64, i: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    delta / n + u64::from(i < delta % n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(set: u64, cost_q: u8, policy: &str) -> LedgerKey {
        LedgerKey {
            set,
            cost_q,
            policy: policy.to_string(),
        }
    }

    #[test]
    fn exact_share_sums_to_delta() {
        for delta in [0u64, 1, 2, 3, 7, 100, 443, 1_000_003] {
            for n in 1u64..=9 {
                let sum: u64 = (0..n).map(|i| exact_share(delta, n, i)).sum();
                assert_eq!(sum, delta, "delta={delta} n={n}");
            }
        }
    }

    #[test]
    fn exact_share_remainder_goes_to_low_slots() {
        // 10 cycles over 3 parties: 4, 3, 3.
        assert_eq!(exact_share(10, 3, 0), 4);
        assert_eq!(exact_share(10, 3, 1), 3);
        assert_eq!(exact_share(10, 3, 2), 3);
        assert_eq!(exact_share(10, 0, 0), 0);
    }

    #[test]
    fn charge_and_total() {
        let mut l = StallLedger::new();
        l.charge(key(3, 7, "lin"), 100);
        l.charge(key(3, 7, "lin"), 44);
        l.charge(key(5, 0, "lru"), 6);
        l.charge(key(9, 1, "lru"), 0); // zero charges are dropped
        assert_eq!(l.total(), 150);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn observe_folds_stall_attrib_only() {
        let evs = vec![
            Event::Stall { cycle: 1, len: 2 },
            Event::StallAttrib {
                cycle: 10,
                line: 64,
                set: 4,
                cost_q: 2,
                policy: "lin".into(),
                cycles: 30,
            },
            Event::StallAttrib {
                cycle: 20,
                line: 65,
                set: 4,
                cost_q: 2,
                policy: "lin".into(),
                cycles: 12,
            },
        ];
        let l = StallLedger::from_events(&evs);
        assert_eq!(l.total(), 42);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn top_sets_orders_by_cycles_then_set() {
        let mut l = StallLedger::new();
        l.charge(key(7, 0, "lru"), 50);
        l.charge(key(2, 1, "lin"), 50);
        l.charge(key(4, 2, "lin"), 80);
        assert_eq!(l.top_sets(2), vec![(4, 80), (2, 50)]);
        assert_eq!(l.top_sets(10), vec![(4, 80), (2, 50), (7, 50)]);
    }

    #[test]
    fn cost_q_and_policy_rollups() {
        let mut l = StallLedger::new();
        l.charge(key(1, 7, "lin"), 10);
        l.charge(key(2, 7, "lru"), 20);
        l.charge(key(2, 0, "lin-leader"), 5);
        let per_q = l.cost_q_totals();
        assert_eq!(per_q[7], 30);
        assert_eq!(per_q[0], 5);
        assert_eq!(
            l.policy_totals(),
            vec![
                ("lin".to_string(), 10),
                ("lin-leader".to_string(), 5),
                ("lru".to_string(), 20),
            ]
        );
        assert_eq!(l.lin_lru_split_by_set(), vec![(1, 10, 0), (2, 5, 20)]);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = StallLedger::new();
        a.charge(key(1, 1, "lin"), 7);
        let mut b = StallLedger::new();
        b.charge(key(1, 1, "lin"), 3);
        b.charge(key(2, 2, "lru"), 4);
        a.merge(&b);
        assert_eq!(a.total(), 14);
        assert_eq!(a.len(), 2);
    }
}
