//! Chrome trace-event JSON exporter: the timeline view of a run.
//!
//! Encodes MSHR slot occupancy and stall spans in the Trace Event
//! Format understood by `chrome://tracing` and Perfetto: one JSON
//! object `{"traceEvents": [...]}` whose entries are complete events
//! (`"ph": "X"`) with microsecond timestamps. We map one simulated
//! cycle to one microsecond, so the viewer's time axis reads directly
//! in cycles.
//!
//! Row layout (one process per simulated run):
//!
//! - **pid**: each `run_start` in the stream opens a new process,
//!   named `"label [policy]"` via `process_name` metadata. Runs restart
//!   their cycle clocks at zero, so giving every run its own process
//!   keeps each row an honest timeline — a sweep binary (`fig5`) fans
//!   many runs into one file. A stream with no `run_start` stays under
//!   pid 1.
//! - **tid 0 — "stall episodes"**: one slice per full-window memory
//!   stall span, named by the head miss's set/`cost_q`/policy. Slices
//!   on this row never overlap (one retirement head at a time).
//! - **tid `s + 1` — "mshr slot s"**: one slice per occupancy interval
//!   of MSHR slot `s`, from `mshr_alloc` to the matching
//!   `mshr_release`. A slot holds one entry at a time, so these rows
//!   are disjoint too — a property `trace_check` validates per
//!   `(pid, tid)` row.
//!
//! The sink buffers slices in memory and writes the file on
//! [`ChromeTraceSink::close`] (or drop), because the trace format is
//! one JSON document, not a line stream. A cap bounds memory on long
//! runs; beyond it slices are counted and dropped, and the count is
//! reported in a final metadata entry so a truncated trace is visibly
//! truncated.

use crate::event::Event;
use crate::json::Json;
use crate::sink::EventSink;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Process id the first (or only) run's rows live under.
const FIRST_PID: u64 = 1;

/// Default cap on buffered slices (~a few hundred bytes each).
pub const DEFAULT_TRACE_CAP: usize = 500_000;

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn str_json(s: &str) -> Json {
    Json::Str(s.to_string())
}

/// Build one complete ("X") trace event. Public so other exporters
/// (e.g. [`crate::trace`]'s per-request Chrome export) emit the exact
/// same slice shape this sink does.
pub fn complete_event(
    name: &str,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
    args: Vec<(String, Json)>,
) -> Json {
    Json::Obj(vec![
        ("name".to_string(), str_json(name)),
        ("ph".to_string(), str_json("X")),
        ("ts".to_string(), num(ts)),
        ("dur".to_string(), num(dur)),
        ("pid".to_string(), num(pid)),
        ("tid".to_string(), num(tid)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

/// Build one metadata ("M") event naming a process or thread row.
pub fn name_event(kind: &str, pid: u64, tid: u64, name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), str_json(kind)),
        ("ph".to_string(), str_json("M")),
        ("pid".to_string(), num(pid)),
        ("tid".to_string(), num(tid)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), str_json(name))]),
        ),
    ])
}

/// [`EventSink`] that renders `mshr_alloc`/`mshr_release`/`stall_span`
/// events into a Chrome trace-event JSON file.
///
/// Other event kinds pass through unrendered, so the sink composes with
/// the NDJSON stream under one [`crate::sink::FanoutSink`].
pub struct ChromeTraceSink<W: Write> {
    out: Option<W>,
    slices: Vec<Json>,
    /// slot -> (alloc cycle, line, demand) for in-flight entries.
    open_slots: BTreeMap<u64, (u64, u64, bool)>,
    /// `(pid, tid)` rows that appeared, for thread-name metadata.
    seen_tids: BTreeMap<(u64, u64), String>,
    /// Process id slices are currently filed under; advances on each
    /// `run_start` after the first so every run owns its own timeline.
    pid: u64,
    /// `run_start` events seen so far.
    runs_seen: u64,
    /// pid -> run label, for process-name metadata.
    proc_names: BTreeMap<u64, String>,
    cap: usize,
    dropped: u64,
    written: bool,
}

impl ChromeTraceSink<File> {
    /// Create/truncate `path`; the trace is written when the sink is
    /// closed or dropped.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write> ChromeTraceSink<W> {
    pub fn new(writer: W) -> Self {
        ChromeTraceSink {
            out: Some(writer),
            slices: Vec::new(),
            open_slots: BTreeMap::new(),
            seen_tids: BTreeMap::new(),
            pid: FIRST_PID,
            runs_seen: 0,
            proc_names: BTreeMap::new(),
            cap: DEFAULT_TRACE_CAP,
            dropped: 0,
            written: false,
        }
    }

    /// Override the buffered-slice cap (minimum 1).
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self
    }

    fn push_slice(&mut self, ev: Json) {
        if self.slices.len() < self.cap {
            self.slices.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    fn note_tid(&mut self, tid: u64, name: String) {
        self.seen_tids.entry((self.pid, tid)).or_insert(name);
    }

    /// Render the buffered slices as the final JSON document.
    fn document(&self) -> Json {
        let mut events: Vec<Json> =
            Vec::with_capacity(self.slices.len() + self.seen_tids.len() + self.proc_names.len());
        for (pid, name) in &self.proc_names {
            events.push(name_event("process_name", *pid, 0, name));
        }
        for ((pid, tid), name) in &self.seen_tids {
            events.push(name_event("thread_name", *pid, *tid, name));
        }
        events.extend(self.slices.iter().cloned());
        let mut top = vec![("traceEvents".to_string(), Json::Arr(events))];
        if self.dropped > 0 {
            top.push(("droppedSliceCount".to_string(), num(self.dropped)));
        }
        Json::Obj(top)
    }

    /// Write the trace document and release the writer. Idempotent; the
    /// drop impl calls this if the caller didn't.
    pub fn close(&mut self) -> io::Result<()> {
        if self.written {
            return Ok(());
        }
        self.written = true;
        let doc = self.document().to_string_compact();
        match self.out.take() {
            Some(mut w) => {
                w.write_all(doc.as_bytes())?;
                w.write_all(b"\n")?;
                w.flush()
            }
            None => Ok(()),
        }
    }
}

impl<W: Write> EventSink for ChromeTraceSink<W> {
    fn record(&mut self, ev: Event) {
        match ev {
            Event::RunStart { label, policy, .. } => {
                self.runs_seen += 1;
                if self.runs_seen > 1 {
                    self.pid += 1;
                    // Entries still open belong to the previous run;
                    // a well-formed stream released them all before its
                    // `run_end`, so anything left is stale.
                    self.open_slots.clear();
                }
                self.proc_names
                    .insert(self.pid, format!("{label} [{policy}]"));
            }
            Event::MshrAlloc {
                cycle,
                line,
                demand,
                slot,
                ..
            } => {
                self.open_slots.insert(slot, (cycle, line, demand));
            }
            Event::MshrRelease {
                cycle,
                line,
                cost,
                slot,
                ..
            } => {
                if let Some((begin, alloc_line, demand)) = self.open_slots.remove(&slot) {
                    let tid = slot + 1;
                    self.note_tid(tid, format!("mshr slot {slot}"));
                    let name = if demand { "demand miss" } else { "prefetch" };
                    let slice = complete_event(
                        name,
                        begin,
                        cycle.saturating_sub(begin),
                        self.pid,
                        tid,
                        vec![
                            ("line".to_string(), num(alloc_line)),
                            ("line_at_release".to_string(), num(line)),
                            ("mlp_cost".to_string(), Json::Num(cost)),
                        ],
                    );
                    self.push_slice(slice);
                }
            }
            Event::StallSpan {
                begin,
                end,
                line,
                set,
                cost_q,
                policy,
                n_begin,
            } => {
                self.note_tid(0, "stall episodes".to_string());
                let name = format!("stall set={set} cost_q={cost_q} {policy}");
                let slice = complete_event(
                    &name,
                    begin,
                    end.saturating_sub(begin),
                    self.pid,
                    0,
                    vec![
                        ("line".to_string(), num(line)),
                        ("set".to_string(), num(set)),
                        ("cost_q".to_string(), num(u64::from(cost_q))),
                        ("policy".to_string(), str_json(&policy)),
                        ("n_begin".to_string(), num(n_begin)),
                    ],
                );
                self.push_slice(slice);
            }
            _ => {}
        }
    }

    fn flush(&mut self) {}
}

impl<W: Write> Drop for ChromeTraceSink<W> {
    fn drop(&mut self) {
        // Telemetry must never take the simulation down: swallow I/O
        // failures on the implicit close, like NdjsonSink does.
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(cycle: u64, line: u64, slot: u64) -> Event {
        Event::MshrAlloc {
            cycle,
            line,
            demand: true,
            live: 1,
            demand_live: 1,
            slot,
        }
    }

    fn release(cycle: u64, line: u64, slot: u64) -> Event {
        Event::MshrRelease {
            cycle,
            line,
            demand: true,
            live: 0,
            cost: 444.0,
            slot,
        }
    }

    fn spans_of(doc: &Json) -> Vec<(u64, u64, u64)> {
        // (tid, ts, dur) of every complete event.
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("no traceEvents array");
        };
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                (
                    e.get("tid").and_then(Json::as_u64).unwrap(),
                    e.get("ts").and_then(Json::as_u64).unwrap(),
                    e.get("dur").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn slot_intervals_become_slices() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = ChromeTraceSink::new(&mut buf);
            sink.record(alloc(10, 64, 0));
            sink.record(alloc(12, 65, 1));
            sink.record(release(454, 64, 0));
            sink.record(release(460, 65, 1));
            sink.record(Event::StallSpan {
                begin: 20,
                end: 454,
                line: 64,
                set: 3,
                cost_q: 7,
                policy: "lin".into(),
                n_begin: 2,
            });
            sink.close().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let doc = Json::parse(&text).unwrap();
        let mut spans = spans_of(&doc);
        spans.sort();
        assert_eq!(spans, vec![(0, 20, 434), (1, 10, 444), (2, 12, 448)]);
        // Thread metadata names every row that appeared.
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            unreachable!()
        };
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["stall episodes", "mshr slot 0", "mshr slot 1"]);
    }

    #[test]
    fn each_run_start_opens_a_new_process() {
        let run_start = |label: &str| Event::RunStart {
            label: label.to_string(),
            policy: "lru".to_string(),
            cycle: 0,
        };
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = ChromeTraceSink::new(&mut buf);
            sink.record(run_start("mcf"));
            sink.record(alloc(10, 64, 0));
            sink.record(release(454, 64, 0));
            // Second run restarts the cycle clock; its slice overlaps the
            // first run's in time and must land under a fresh pid.
            sink.record(run_start("art"));
            sink.record(alloc(5, 99, 0));
            sink.record(release(300, 99, 0));
            sink.close().unwrap();
        }
        let doc = Json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("no traceEvents array");
        };
        let pids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("pid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(pids, vec![1, 2]);
        let proc_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(proc_names, vec!["mcf [lru]", "art [lru]"]);
    }

    #[test]
    fn release_without_alloc_is_ignored() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = ChromeTraceSink::new(&mut buf);
            sink.record(release(100, 64, 3));
            sink.close().unwrap();
        }
        let doc = Json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(spans_of(&doc), vec![]);
    }

    #[test]
    fn cap_drops_and_reports() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = ChromeTraceSink::new(&mut buf).with_cap(1);
            for i in 0..3u64 {
                sink.record(alloc(i * 10, i, 0));
                sink.record(release(i * 10 + 5, i, 0));
            }
            sink.close().unwrap();
        }
        let doc = Json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(spans_of(&doc).len(), 1);
        assert_eq!(doc.get("droppedSliceCount").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn drop_writes_the_document() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = ChromeTraceSink::new(&mut buf);
            sink.record(alloc(1, 9, 0));
            sink.record(release(5, 9, 0));
        }
        assert!(Json::parse(std::str::from_utf8(&buf).unwrap()).is_ok());
    }
}
