//! The compile-time probe abstraction.

use crate::event::Event;
use crate::sink::SinkHandle;

/// Compile-time telemetry hook for generic hot loops.
///
/// `System<P: Probe>` monomorphizes over this trait. The contract that
/// makes the disabled path zero-cost: every emission site is written as
///
/// ```ignore
/// if P::ENABLED {
///     self.probe.emit(Event::Stall { .. });
/// }
/// ```
///
/// With [`NoProbe`], `P::ENABLED` is the constant `false`, so the branch —
/// including the event construction inside it — is statically dead and
/// removed during monomorphization. `crates/bench/benches/policy_overheads.rs`
/// holds the regression check (< 2% vs. an uninstrumented baseline).
pub trait Probe {
    /// Statically known enablement; gate every `emit` call on this.
    const ENABLED: bool;

    /// Deliver one event. Only called under `if Self::ENABLED`.
    fn emit(&mut self, ev: Event);

    /// Runtime handle for subsystems that can't be generic (engines behind
    /// `Box<dyn ReplacementEngine>`, the MSHR file). Disabled by default.
    fn sink(&self) -> SinkHandle {
        SinkHandle::disabled()
    }
}

/// The default probe: telemetry off, all hooks compiled away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// A probe that forwards into a shared [`SinkHandle`] — the enabled mode
/// used when `--telemetry <path>` is passed.
#[derive(Clone, Debug)]
pub struct SinkProbe {
    handle: SinkHandle,
}

impl SinkProbe {
    pub fn new(handle: SinkHandle) -> Self {
        SinkProbe { handle }
    }
}

impl Probe for SinkProbe {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, ev: Event) {
        self.handle.emit(ev);
    }

    fn sink(&self) -> SinkHandle {
        self.handle.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::{NoProbe, Probe, SinkProbe};
    use crate::event::Event;
    use crate::sink::SinkHandle;

    #[test]
    fn noprobe_is_disabled_and_inert() {
        const { assert!(!NoProbe::ENABLED) };
        let mut p = NoProbe;
        p.emit(Event::Stall { cycle: 0, len: 0 });
        assert!(!p.sink().enabled());
    }

    #[test]
    fn sinkprobe_is_enabled_and_shares_its_handle() {
        let p = SinkProbe::new(SinkHandle::disabled());
        const { assert!(SinkProbe::ENABLED) };
        assert!(!p.sink().enabled());
    }
}
