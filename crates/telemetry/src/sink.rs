//! Event sinks: where emitted events go, and the cloneable runtime handle
//! subsystems hold.

use crate::event::{Event, EventParseError};
use crate::registry::Registry;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Consumer of telemetry events.
pub trait EventSink {
    fn record(&mut self, ev: Event);
    fn flush(&mut self) {}
}

/// Cloneable, possibly-disabled reference to a shared sink.
///
/// This is the *runtime* half of the telemetry design: subsystems that live
/// behind `Box<dyn ReplacementEngine>` (or are plain structs, like `Mshr`)
/// can't be generic over a [`crate::Probe`], so they hold one of these.
/// When telemetry is off the handle is `None` and `emit`/`emit_with` cost a
/// single null-check — and the call sites are miss/update paths, never the
/// hit fast path.
///
/// The shared sink is `Arc<Mutex<..>>` so a handle can cross into the
/// sweep executor's worker threads. Each individual simulation remains
/// single-threaded (see DESIGN.md), so the lock is uncontended within a
/// run; parallel sweeps additionally give every run its own buffering
/// sink and replay buffers in submission order, so `run_start`/`run_end`
/// brackets never interleave mid-run whatever the worker schedule.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<Mutex<dyn EventSink + Send>>>);

// `Rc<RefCell<dyn ..>>` has no `Debug`; show only enablement, which is the
// part that matters when a containing struct (e.g. `Mshr`) is dumped.
impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(enabled)"
        } else {
            "SinkHandle(disabled)"
        })
    }
}

impl SinkHandle {
    /// A handle that drops everything (telemetry off).
    pub fn disabled() -> Self {
        SinkHandle(None)
    }

    /// Wrap an owned sink.
    pub fn of(sink: impl EventSink + Send + 'static) -> Self {
        SinkHandle(Some(Arc::new(Mutex::new(sink))))
    }

    /// Share an existing sink.
    pub fn shared(sink: Arc<Mutex<dyn EventSink + Send>>) -> Self {
        SinkHandle(Some(sink))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Deliver an already-built event.
    #[inline]
    pub fn emit(&self, ev: Event) {
        if let Some(sink) = &self.0 {
            crate::prof_scope!(TelemetryEmit);
            lock_sink(sink).record(ev);
        }
    }

    /// Build the event only if a sink is attached — use this on paths
    /// where constructing the event itself does measurable work.
    #[inline]
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = &self.0 {
            crate::prof_scope!(TelemetryEmit);
            lock_sink(sink).record(build());
        }
    }

    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            lock_sink(sink).flush();
        }
    }
}

/// Telemetry must never take the simulation down: a sink whose lock was
/// poisoned by a panicking sibling thread keeps recording rather than
/// cascading the panic into every other run.
#[inline]
fn lock_sink<'a>(
    sink: &'a Arc<Mutex<dyn EventSink + Send>>,
) -> MutexGuard<'a, dyn EventSink + Send + 'static> {
    sink.lock().unwrap_or_else(PoisonError::into_inner)
}

/// In-memory sink for tests and report tooling.
#[derive(Default)]
pub struct VecSink {
    pub events: Vec<Event>,
}

impl VecSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// Fan events out to several sinks — e.g. an NDJSON stream *and* a
/// Chrome trace file from one `--telemetry --trace-out` run. Each sink
/// receives its own clone of every event, in order.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn EventSink + Send>>,
}

impl FanoutSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a downstream sink; builder-style.
    #[must_use]
    pub fn with(mut self, sink: impl EventSink + Send + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Number of downstream sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl EventSink for FanoutSink {
    fn record(&mut self, ev: Event) {
        if let Some((last, rest)) = self.sinks.split_last_mut() {
            for sink in rest {
                sink.record(ev.clone());
            }
            last.record(ev);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// Streaming NDJSON writer with interval snapshotting.
///
/// Every event becomes one line. Every `snapshot_every` events a
/// `snapshot` line with cumulative per-kind counts is interleaved, so a
/// partially-read (or truncated) stream still carries running totals.
/// Closing (or dropping) the sink writes one final cumulative snapshot,
/// so even a short run — fewer events than the interval — ends in its
/// totals.
pub struct NdjsonSink<W: Write> {
    out: BufWriter<W>,
    registry: Registry,
    snapshot_every: u64,
    /// `events_seen` at the last snapshot written, so close/drop skips
    /// the final snapshot when the count landed exactly on the interval.
    last_snapshot_at: u64,
    closed: bool,
    io_error: bool,
}

/// Default snapshot interval: frequent enough that a truncated multi-
/// megabyte stream has recent totals, rare enough to be noise in volume.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 100_000;

impl NdjsonSink<File> {
    /// Create/truncate `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write> NdjsonSink<W> {
    pub fn new(writer: W) -> Self {
        NdjsonSink {
            out: BufWriter::new(writer),
            registry: Registry::new(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            last_snapshot_at: 0,
            closed: false,
            io_error: false,
        }
    }

    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every.max(1);
        self
    }

    /// Running totals accumulated so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn write_line(&mut self, ev: &Event) {
        if self.io_error {
            return;
        }
        let line = ev.to_ndjson_line();
        if writeln!(self.out, "{line}").is_err() {
            // Telemetry must never take the simulation down; drop the
            // stream on the first I/O failure and keep simulating.
            self.io_error = true;
        }
    }

    fn write_final_snapshot(&mut self) {
        if !self.closed {
            self.closed = true;
            // Skip when nothing was recorded, or when the interval snapshot
            // already captured the exact final count — no duplicate line.
            if self.registry.events_seen() > 0
                && self.registry.events_seen() != self.last_snapshot_at
            {
                let snap = self.registry.snapshot();
                self.write_line(&snap);
            }
        }
        // Flush *unconditionally*: events recorded after `close()` (e.g. a
        // cancelled server job replaying a tail of buffered events into an
        // already-closed sink) must still reach the file on drop, or the
        // stream ends in a torn tail.
        EventSink::flush(self);
    }

    /// Write the final cumulative snapshot and flush. Idempotent; drop
    /// calls this if the caller didn't. After `close` further events are
    /// still written (the sink stays usable) but no second final
    /// snapshot will be emitted.
    pub fn close(&mut self) {
        self.write_final_snapshot();
    }
}

impl<W: Write> EventSink for NdjsonSink<W> {
    fn record(&mut self, ev: Event) {
        self.write_line(&ev);
        self.registry.observe(&ev);
        if self
            .registry
            .events_seen()
            .is_multiple_of(self.snapshot_every)
        {
            self.last_snapshot_at = self.registry.events_seen();
            let snap = self.registry.snapshot();
            self.write_line(&snap);
            // Flush at every snapshot boundary so an abruptly-killed
            // process (the serving layer's kill -9 case) leaves a stream
            // that ends at a recent complete snapshot, not mid-buffer.
            EventSink::flush(self);
        }
    }

    fn flush(&mut self) {
        if !self.io_error {
            let _ = self.out.flush();
        }
    }
}

impl<W: Write> Drop for NdjsonSink<W> {
    fn drop(&mut self) {
        // Final snapshot so every complete stream ends with its totals.
        self.write_final_snapshot();
    }
}

/// Read a whole NDJSON file back into events. Blank lines are skipped;
/// the first malformed line aborts with its line number in the error.
pub fn read_ndjson(path: impl AsRef<Path>) -> io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::parse_line(&line).map_err(|e: EventParseError| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {}", idx + 1, e),
            )
        })?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_drops_events() {
        let h = SinkHandle::disabled();
        assert!(!h.enabled());
        h.emit(Event::Stall { cycle: 1, len: 2 });
        h.emit_with(|| unreachable!("emit_with must not build when disabled"));
        h.flush();
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let h = SinkHandle::of(VecSink::new());
        h.emit(Event::Stall { cycle: 1, len: 150 });
        h.emit(Event::Stall { cycle: 9, len: 400 });
        // The handle owns the only reference; rebuild access via clone
        // semantics is exercised in the integration tests — here we just
        // check enablement.
        assert!(h.enabled());
    }

    #[test]
    fn ndjson_sink_writes_lines_and_snapshots() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut buf).with_snapshot_every(2);
            sink.record(Event::Stall { cycle: 1, len: 150 });
            sink.record(Event::Stall { cycle: 2, len: 151 });
            sink.record(Event::Stall { cycle: 3, len: 152 });
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 3 events + interval snapshot after #2 + final snapshot on drop.
        assert_eq!(lines.len(), 5, "{text}");
        let snap = Event::parse_line(lines[2]).unwrap();
        match snap {
            Event::Snapshot { events, counts } => {
                assert_eq!(events, 2);
                assert_eq!(counts, vec![("stall".to_string(), 2)]);
            }
            other => panic!("expected interval snapshot, got {other:?}"),
        }
        for line in lines {
            Event::parse_line(line).unwrap();
        }
    }

    #[test]
    fn short_run_still_ends_in_a_final_snapshot() {
        // Fewer events than the snapshot interval: the only snapshot is
        // the cumulative one written at close/drop.
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut buf).with_snapshot_every(1_000);
            sink.record(Event::Stall { cycle: 1, len: 150 });
            sink.record(Event::Stall { cycle: 2, len: 151 });
        }
        let text = String::from_utf8(buf).unwrap();
        let last = text.lines().last().expect("stream is non-empty");
        match Event::parse_line(last).unwrap() {
            Event::Snapshot { events, counts } => {
                assert_eq!(events, 2);
                assert_eq!(counts, vec![("stall".to_string(), 2)]);
            }
            other => panic!("expected final snapshot, got {other:?}"),
        }
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    fn exact_interval_multiple_does_not_duplicate_final_snapshot() {
        // events_seen lands exactly on the interval: the interval
        // snapshot doubles as the final one.
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut buf).with_snapshot_every(2);
            sink.record(Event::Stall { cycle: 1, len: 150 });
            sink.record(Event::Stall { cycle: 2, len: 151 });
        }
        let text = String::from_utf8(buf).unwrap();
        let snapshots = text
            .lines()
            .filter(|l| l.contains("\"type\":\"snapshot\""))
            .count();
        assert_eq!(snapshots, 1, "{text}");
    }

    #[test]
    fn close_is_idempotent_and_drop_adds_nothing_after() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut buf).with_snapshot_every(1_000);
            sink.record(Event::Stall { cycle: 1, len: 150 });
            sink.close();
            sink.close();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
    }

    /// A writer that only exposes what was *flushed*, not what sits in
    /// the sink's internal buffer — the on-disk view after a crash of
    /// everything above the OS.
    #[derive(Clone, Default)]
    struct FlushSpy(Arc<Mutex<Vec<u8>>>);

    impl Write for FlushSpy {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_after_close_are_flushed_on_drop() {
        // Regression: a cancelled server job can replay buffered events
        // into a sink whose final snapshot was already written. Those
        // trailing events must still hit the writer when the sink drops —
        // the old early-return in the closed path skipped the flush and
        // left a torn tail.
        let spy = FlushSpy::default();
        let bytes = Arc::clone(&spy.0);
        {
            let mut sink = NdjsonSink::new(spy).with_snapshot_every(1_000);
            sink.record(Event::Stall { cycle: 1, len: 10 });
            sink.close();
            sink.record(Event::Stall { cycle: 2, len: 20 });
        }
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // event, final snapshot (at close), then the post-close event.
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            Event::parse_line(line).unwrap();
        }
        assert_eq!(
            Event::parse_line(lines[2]).unwrap(),
            Event::Stall { cycle: 2, len: 20 }
        );
    }

    #[test]
    fn early_drop_without_close_leaves_complete_final_snapshot() {
        // The cancellation path drops the sink without a clean close();
        // the stream must still end in a parseable cumulative snapshot.
        let spy = FlushSpy::default();
        let bytes = Arc::clone(&spy.0);
        {
            let mut sink = NdjsonSink::new(spy).with_snapshot_every(1_000);
            for i in 0..7 {
                sink.record(Event::Stall { cycle: i, len: 100 });
            }
            // No close(): simulate a cancelled job's unwinding drop.
        }
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let last = text.lines().last().expect("stream is non-empty");
        match Event::parse_line(last).unwrap() {
            Event::Snapshot { events, counts } => {
                assert_eq!(events, 7);
                assert_eq!(counts, vec![("stall".to_string(), 7)]);
            }
            other => panic!("expected final snapshot, got {other:?}"),
        }
    }

    #[test]
    fn interval_snapshots_are_flushed_as_written() {
        // kill -9 leaves only flushed bytes: after crossing a snapshot
        // interval the flushed view must already end at that snapshot.
        let spy = FlushSpy::default();
        let bytes = Arc::clone(&spy.0);
        let mut sink = NdjsonSink::new(spy).with_snapshot_every(2);
        sink.record(Event::Stall { cycle: 1, len: 1 });
        sink.record(Event::Stall { cycle: 2, len: 2 });
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let last = text.lines().last().expect("interval snapshot flushed");
        assert!(
            matches!(
                Event::parse_line(last),
                Ok(Event::Snapshot { events: 2, .. })
            ),
            "{text}"
        );
        sink.close(); // keep the io path clean for the drop
    }

    #[test]
    fn empty_stream_gets_no_snapshot() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let _sink = NdjsonSink::new(&mut buf);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink_in_order() {
        let a = Arc::new(Mutex::new(VecSink::new()));
        let b = Arc::new(Mutex::new(VecSink::new()));

        struct Tee(Arc<Mutex<VecSink>>);
        impl EventSink for Tee {
            fn record(&mut self, ev: Event) {
                self.0.lock().unwrap().record(ev);
            }
        }

        let mut fan = FanoutSink::new()
            .with(Tee(Arc::clone(&a)))
            .with(Tee(Arc::clone(&b)));
        assert_eq!(fan.len(), 2);
        fan.record(Event::Stall { cycle: 1, len: 2 });
        fan.record(Event::Stall { cycle: 3, len: 4 });
        fan.flush();
        for sink in [&a, &b] {
            let events = &sink.lock().unwrap().events;
            assert_eq!(events.len(), 2);
            assert_eq!(events[0], Event::Stall { cycle: 1, len: 2 });
        }
    }

    #[test]
    fn shared_handle_clones_reach_one_sink() {
        let sink: Arc<Mutex<dyn EventSink + Send>> = Arc::new(Mutex::new(VecSink::new()));
        let a = SinkHandle::shared(Arc::clone(&sink));
        let b = a.clone();
        a.emit(Event::Stall { cycle: 1, len: 1 });
        b.emit(Event::Stall { cycle: 2, len: 2 });
        drop((a, b));
        assert_eq!(Arc::strong_count(&sink), 1, "clones must not leak refs");
    }

    #[test]
    fn handle_crosses_threads() {
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let h = SinkHandle::shared(sink.clone() as Arc<Mutex<dyn EventSink + Send>>);
        let worker = std::thread::spawn(move || {
            h.emit(Event::Stall { cycle: 3, len: 9 });
        });
        worker.join().unwrap();
        assert_eq!(sink.lock().unwrap().events.len(), 1);
    }
}
