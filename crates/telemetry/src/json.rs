//! Minimal JSON value, encoder, and recursive-descent parser.
//!
//! Hand-rolled because the workspace builds in an offline sandbox with no
//! registry access (serde is a no-op stub there). Supports the full JSON
//! grammar the telemetry stream uses: objects, arrays, strings with
//! escapes, finite numbers, booleans, and null. Numbers are carried as
//! `f64`; integer event fields stay exact up to 2^53, far beyond any
//! simulated cycle or line-address range in this repo.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize onto `out` (compact form, no whitespace).
    pub fn encode(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => encode_number(*n, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode(out);
                }
                out.push('}');
            }
        }
    }

    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.encode(&mut s);
        s
    }

    /// Parse a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn encode_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's shortest round-trip formatting; integral values print
        // without a fraction, which is still a valid JSON number.
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/inf; null is the least-surprising encoding.
        out.push_str("null");
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static str, message: &'static str) -> Result<(), JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => {
                self.literal("true", "expected 'true'")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected 'false'")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.literal("null", "expected 'null'")?;
                Ok(Json::Null)
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our
                            // encoder; accept lone BMP escapes only.
                            match char::from_u32(u32::from(code)) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Validate only a
                    // bounded window: re-validating the whole tail per
                    // character would make string parsing quadratic in the
                    // document size.
                    let width = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let rest = self
                        .bytes
                        .get(self.pos..end)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = (code << 4) | u16::from(d);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = self
            .bytes
            .get(start..self.pos)
            .ok_or_else(|| self.err("invalid number"))?;
        let text = std::str::from_utf8(raw).map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "round-trip failed for {text}");
        }
    }

    #[test]
    fn object_preserves_order_and_values() {
        let v = Json::parse(r#"{"type":"x","n":42,"ok":true,"arr":[1,2,3]}"#).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let s = v.to_string_compact();
        assert!(s.starts_with(r#"{"type":"x""#), "order lost: {s}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let encoded = v.to_string_compact();
        assert_eq!(Json::parse(&encoded).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = (1u64 << 53) - 1;
        let v = Json::parse(&format!("{n}")).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }
}
