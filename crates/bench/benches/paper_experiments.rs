#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! One Criterion target per paper table/figure: each benchmark measures
//! the end-to-end cost of regenerating that experiment's data at bench
//! scale (reduced trace length, representative benchmark subset).
//!
//! Run a single experiment's bench with e.g.
//! `cargo bench -p mlpsim-bench --bench paper_experiments -- fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpsim_analysis::sampling::p_best_series;
use mlpsim_bench::{bench_trace, simulate};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::belady::BeladyEngine;
use mlpsim_core::ccl::AdderMode;
use mlpsim_core::leader::SelectionPolicy;
use mlpsim_core::overhead::{cbs_overhead, lin_overhead, sbar_overhead, OverheadParams};
use mlpsim_core::quant::quantize;
use mlpsim_core::sbar::SbarConfig;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_trace::figure1::{figure1_lines, figure1_trace};
use mlpsim_trace::spec::SpecBench;
use std::hint::black_box;

/// The benchmark subset used by sweep-style experiments at bench scale.
const SWEEP: [SpecBench; 4] = [
    SpecBench::Mcf,
    SpecBench::Vpr,
    SpecBench::Parser,
    SpecBench::Art,
];

fn fig1(c: &mut Criterion) {
    c.bench_function("fig1_opt_vs_lru_vs_lin", |b| {
        b.iter(|| {
            let iters = 50;
            let trace = figure1_trace(iters);
            let cache = Geometry::from_sets(1, 4, 64);
            let cfg = |policy| {
                let mut c = SystemConfig::baseline(policy);
                c.l1 = None;
                c.l2 = cache;
                c
            };
            let opt = System::with_l2_engine(
                cfg(PolicyKind::Lru),
                Box::new(BeladyEngine::from_accesses(
                    figure1_lines(iters).into_iter().map(LineAddr),
                )),
            )
            .run(trace.iter());
            let lru = System::new(cfg(PolicyKind::Lru)).run(trace.iter());
            let lin = System::new(cfg(PolicyKind::lin4())).run(trace.iter());
            black_box((opt.stall_episodes, lru.stall_episodes, lin.stall_episodes))
        })
    });
}

fn fig2_and_table1(c: &mut Criterion) {
    // Fig. 2 (cost distribution) and Table 1 (deltas) come from the same
    // baseline run; bench them together per representative benchmark.
    let mut g = c.benchmark_group("fig2_table1_baseline_profile");
    for bench in SWEEP {
        let trace = bench_trace(bench);
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let r = simulate(&trace, PolicyKind::Lru);
                black_box((r.cost_hist, r.deltas))
            })
        });
    }
    g.finish();
}

fn table3(c: &mut Criterion) {
    c.bench_function("table3_benchmark_summary", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for bench in SWEEP {
                let trace = bench_trace(bench);
                let r = simulate(&trace, PolicyKind::Lru);
                total += r.l2_compulsory;
            }
            black_box(total)
        })
    });
}

fn fig3b(c: &mut Criterion) {
    c.bench_function("fig3b_quantizer", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..10_000u32 {
                acc += u32::from(quantize(f64::from(i) * 0.05));
            }
            black_box(acc)
        })
    });
}

fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_lin_lambda_sweep");
    g.sample_size(10);
    for bench in SWEEP {
        let trace = bench_trace(bench);
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let mut ipcs = Vec::new();
                for lambda in 1..=4 {
                    ipcs.push(simulate(&trace, PolicyKind::Lin { lambda }).ipc());
                }
                black_box(ipcs)
            })
        });
    }
    g.finish();
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_lru_vs_lin_distributions");
    g.sample_size(10);
    for bench in SWEEP {
        let trace = bench_trace(bench);
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let lru = simulate(&trace, PolicyKind::Lru);
                let lin = simulate(&trace, PolicyKind::lin4());
                black_box((lru.cost_hist, lin.cost_hist, lru.l2.misses, lin.l2.misses))
            })
        });
    }
    g.finish();
}

fn fig8(c: &mut Criterion) {
    c.bench_function("fig8_sampling_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in [0.5, 0.6, 0.7, 0.8, 0.9] {
                for (_, v) in p_best_series(64, p) {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
}

fn fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_lin_vs_sbar");
    g.sample_size(10);
    for bench in SWEEP {
        let trace = bench_trace(bench);
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let lin = simulate(&trace, PolicyKind::lin4());
                let sbar = simulate(&trace, PolicyKind::sbar_default());
                black_box((lin.ipc(), sbar.ipc()))
            })
        });
    }
    g.finish();
}

fn fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_leader_set_sweep");
    g.sample_size(10);
    let trace = bench_trace(SpecBench::Mcf);
    for k in [8u32, 16, 32] {
        for (label, selection) in [
            ("ss", SelectionPolicy::SimpleStatic),
            ("rd", SelectionPolicy::RandDynamic),
        ] {
            let cfg = SbarConfig {
                leader_sets: k,
                selection,
                ..SbarConfig::paper_default()
            };
            g.bench_function(format!("{label}-{k}"), |b| {
                b.iter(|| black_box(simulate(&trace, PolicyKind::Sbar(cfg)).ipc()))
            });
        }
    }
    g.finish();
}

fn fig11(c: &mut Criterion) {
    c.bench_function("fig11_ammp_time_series", |b| {
        let trace = SpecBench::Ammp.generate(60_000, 42);
        b.iter(|| {
            let mut cfg = SystemConfig::baseline(PolicyKind::sbar_default());
            cfg.sample_interval = Some(500_000);
            let r = System::new(cfg).run(trace.iter());
            black_box(r.samples)
        })
    });
}

fn cbs_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbs_compare");
    g.sample_size(10);
    let trace = bench_trace(SpecBench::Vpr);
    for policy in [
        PolicyKind::sbar_default(),
        PolicyKind::CbsGlobal,
        PolicyKind::CbsLocal,
    ] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(simulate(&trace, policy).ipc()))
        });
    }
    g.finish();
}

fn overhead(c: &mut Criterion) {
    c.bench_function("overhead_budget_model", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for k in [8u32, 16, 32, 64] {
                let mut p = OverheadParams::paper_baseline();
                p.leader_sets = k;
                total += sbar_overhead(&p).total_bytes()
                    + lin_overhead(&p).total_bytes()
                    + cbs_overhead(&p, true).total_bytes();
            }
            black_box(total)
        })
    });
}

fn ablate_adders(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_adders");
    g.sample_size(10);
    let trace = bench_trace(SpecBench::Mcf);
    for (label, adders) in [
        ("per-entry", AdderMode::PerEntry),
        ("4-shared", AdderMode::paper_shared()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::baseline(PolicyKind::lin4());
                cfg.adders = adders;
                black_box(System::new(cfg).run(trace.iter()).cost_hist)
            })
        });
    }
    g.finish();
}

criterion_group!(
    paper,
    fig1,
    fig2_and_table1,
    table3,
    fig3b,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    fig11,
    cbs_compare,
    overhead,
    ablate_adders
);
criterion_main!(paper);
