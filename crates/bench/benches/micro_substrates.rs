#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Microbenchmarks of the simulator substrates: how fast are the building
//! blocks the experiments are made of?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlpsim_bench::{bench_trace, simulate, BENCH_ACCESSES};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::model::CacheModel;
use mlpsim_core::ccl::{AdderMode, Ccl};
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_mem::{MemConfig, MemorySystem, Mshr};
use mlpsim_trace::spec::SpecBench;
use std::hint::black_box;

fn cache_access_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    let geom = Geometry::baseline_l2();
    // A mixed stream with ~50% hits.
    let lines: Vec<LineAddr> = (0..40_000u64).map(|i| LineAddr((i * 7) % 30_000)).collect();
    g.throughput(Throughput::Elements(lines.len() as u64));
    for policy in [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let mut cache = CacheModel::new(geom, policy.build(geom));
                for (i, &line) in lines.iter().enumerate() {
                    let r = cache.access(line, false, i as u64);
                    if !r.hit {
                        cache.record_serviced_cost(line, (line.0 % 8) as u8);
                    }
                }
                black_box(cache.stats().misses)
            })
        });
    }
    g.finish();
}

fn mshr_ccl(c: &mut Criterion) {
    c.bench_function("mshr_ccl_event_cycle", |b| {
        b.iter(|| {
            let mut mshr = Mshr::new(32);
            let mut ccl = Ccl::new(AdderMode::PerEntry);
            let mut now = 0u64;
            let mut total = 0.0;
            for i in 0..5_000u64 {
                ccl.advance(&mut mshr, now);
                if mshr.is_full() {
                    let (id, done) = mshr.next_completion().unwrap();
                    ccl.advance(&mut mshr, done.max(now));
                    now = done.max(now);
                    total += mshr.free(id).mlp_cost;
                }
                mshr.allocate(LineAddr(i), now, now + 444, true).unwrap();
                now += 13;
            }
            black_box(total)
        })
    });
}

fn dram_bus(c: &mut Criterion) {
    c.bench_function("memory_system_schedule", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(MemConfig::baseline());
            let mut last = 0;
            for i in 0..10_000u64 {
                last = mem.request_fill(LineAddr(i * 3), i * 11);
            }
            black_box(last)
        })
    });
}

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(BENCH_ACCESSES as u64));
    for bench in [SpecBench::Art, SpecBench::Mcf, SpecBench::Mgrid] {
        g.bench_function(bench.name(), |b| {
            b.iter(|| black_box(bench.generate(BENCH_ACCESSES, 42).len()))
        });
    }
    g.finish();
}

fn full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system_simulation");
    g.sample_size(10);
    for bench in [SpecBench::Mcf, SpecBench::Sixtrack] {
        let trace = bench_trace(bench);
        g.throughput(Throughput::Elements(trace.instructions()));
        g.bench_function(bench.name(), |b| {
            b.iter(|| black_box(simulate(&trace, PolicyKind::lin4()).cycles))
        });
    }
    g.finish();
}

fn belady_oracle(c: &mut Criterion) {
    c.bench_function("belady_oracle_construction", |b| {
        let lines: Vec<LineAddr> = (0..20_000u64).map(|i| LineAddr((i * 13) % 4_096)).collect();
        b.iter(|| {
            let oracle = mlpsim_cache::belady::BeladyEngine::from_accesses(lines.iter().copied());
            black_box(oracle.remaining_uses(LineAddr(0)))
        })
    });
}

fn atd_replay(c: &mut Criterion) {
    c.bench_function("atd_shadow_replay", |b| {
        let geom = Geometry::baseline_l2();
        let lines: Vec<LineAddr> = (0..20_000u64).map(|i| LineAddr((i * 5) % 25_000)).collect();
        b.iter(|| {
            let mut atd = mlpsim_cache::atd::Atd::new(geom, Box::new(LruEngine::new()));
            for (i, &line) in lines.iter().enumerate() {
                atd.access(line, i as u64, 0);
            }
            black_box(atd.misses())
        })
    });
}

criterion_group!(
    micro,
    cache_access_throughput,
    mshr_ccl,
    dram_bus,
    trace_generation,
    full_system,
    belady_oracle,
    atd_replay
);
criterion_main!(micro);
