#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Per-decision latency of each replacement policy's victim selection —
//! the software analogue of the paper's concern that CARE logic stay off
//! the critical path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::meta::WayMeta;
use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};
use mlpsim_cache::set::OwnedSet;
use mlpsim_core::psel::Psel;
use mlpsim_core::quant::quantize;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::{System, SystemConfig};
use mlpsim_telemetry::{Event, EventSink, SinkHandle, SinkProbe};
use mlpsim_trace::spec::SpecBench;
use std::hint::black_box;

/// A full 16-way set with varied recency and costs.
fn full_set() -> Vec<WayMeta> {
    (0..16u64)
        .map(|i| WayMeta {
            valid: true,
            tag: i,
            lru_stamp: (i * 7919) % 97,
            fill_stamp: i,
            cost_q: ((i * 3) % 8) as u8,
            dirty: i % 2 == 0,
        })
        .collect()
}

fn victim_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("victim_selection");
    g.throughput(Throughput::Elements(1));
    let geom = Geometry::baseline_l2();
    let set = OwnedSet::from_ways(&full_set(), 0, geom);
    for policy in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::lin4()] {
        let mut engine = policy.build(geom);
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let view = set.view();
                let ctx = VictimCtx {
                    set: view,
                    incoming: LineAddr(999),
                    seq: 1,
                };
                black_box(engine.victim(&ctx))
            })
        });
    }
    g.finish();
}

fn recency_ranking(c: &mut Criterion) {
    c.bench_function("recency_ranks_16way", |b| {
        let geom = Geometry::baseline_l2();
        let set = OwnedSet::from_ways(&full_set(), 0, geom);
        b.iter(|| black_box(set.view().recency_ranks()))
    });
}

fn quantizer(c: &mut Criterion) {
    c.bench_function("quantize_single", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.7;
            if x > 600.0 {
                x = 0.0;
            }
            black_box(quantize(x))
        })
    });
}

fn psel_updates(c: &mut Criterion) {
    c.bench_function("psel_update", |b| {
        let mut p = Psel::paper_default();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if i.is_multiple_of(2) {
                p.inc_by(i % 8);
            } else {
                p.dec_by(i % 8);
            }
            black_box(p.msb_set())
        })
    });
}

fn leader_lookup(c: &mut Criterion) {
    use mlpsim_core::leader::{LeaderSets, SelectionPolicy};
    c.bench_function("leader_set_lookup", |b| {
        let l = LeaderSets::new(1024, 32, SelectionPolicy::SimpleStatic, 0);
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 33) % 1024;
            black_box(l.is_leader(s))
        })
    });
}

/// Swallows events after counting them, so the enabled-probe measurement
/// prices event construction and delivery without any I/O or storage.
struct CountingSink(u64);

impl EventSink for CountingSink {
    fn record(&mut self, _ev: Event) {
        self.0 += 1;
    }
}

/// Best-case wall time of one full simulation per closure, with the
/// variants sampled round-robin so frequency/thermal drift hits all of
/// them alike. The minimum is the noise-robust estimator here: scheduler
/// preemption only ever adds time, so the fastest sample is the closest
/// view of the code's true cost.
fn interleaved_minimums<const N: usize>(
    mut runs: [&mut dyn FnMut(); N],
    rounds: usize,
) -> [f64; N] {
    let mut best = [f64::INFINITY; N];
    // One untimed warm-up pass per variant.
    for r in runs.iter_mut() {
        r();
    }
    for _ in 0..rounds {
        for (i, r) in runs.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            r();
            best[i] = best[i].min(t0.elapsed().as_nanos() as f64);
        }
    }
    best
}

/// The telemetry layer's core promise: `System<NoProbe>` (the default) must
/// cost the same as not having telemetry at all. Three tiers are timed on
/// an identical LIN run:
///
/// 1. `no_probe` — compile-time disabled; every guard is statically dead.
/// 2. `runtime_off` — `SinkProbe` with a disabled handle: all emission code
///    compiled in, every emit taking the null-check branch. This stands in
///    for "baseline plus checks", so tier 1 beating-or-matching it within
///    2% demonstrates the generic actually compiles away.
/// 3. `enabled` — `SinkProbe` delivering every event to a counting sink.
fn telemetry_probe_overhead(c: &mut Criterion) {
    let _ = c; // timings below are A/B medians, not per-op criterion runs
    let trace = SpecBench::Mcf.generate(40_000, 7);
    let cfg = || SystemConfig::baseline(PolicyKind::lin4());

    let mut no_probe = || {
        black_box(System::new(cfg()).run(trace.iter()));
    };
    let mut runtime_off = || {
        let probe = SinkProbe::new(SinkHandle::disabled());
        black_box(System::with_probe(cfg(), probe).run(trace.iter()));
    };
    let mut enabled = || {
        let probe = SinkProbe::new(SinkHandle::of(CountingSink(0)));
        black_box(System::with_probe(cfg(), probe).run(trace.iter()));
    };

    let [t_off, t_checks, t_on] =
        interleaved_minimums([&mut no_probe, &mut runtime_off, &mut enabled], 11);
    println!(
        "bench telemetry/no_probe                                 best   {t_off:>12.1} ns/run"
    );
    println!(
        "bench telemetry/runtime_disabled                         best   {t_checks:>12.1} ns/run"
    );
    println!("bench telemetry/enabled_counting_sink                    best   {t_on:>12.1} ns/run");
    println!(
        "bench telemetry: disabled overhead {:+.2}%  enabled cost {:+.2}%",
        (t_off / t_checks - 1.0) * 100.0,
        (t_on / t_off - 1.0) * 100.0,
    );
    assert!(
        t_off <= t_checks * 1.02,
        "System<NoProbe> ({t_off:.0} ns) runs >2% slower than the runtime-checked \
         build ({t_checks:.0} ns): the disabled probe is not compiling away"
    );
}

/// The stall-attribution layer rides the same probe generic as the rest
/// of telemetry: with `NoProbe` (and `invariants` off) the
/// `AttribTracker` is never even constructed, so span tracing must cost
/// nothing when it is off. This A/B times an *isolated-miss-dominated*
/// run — `twolf`, where nearly every miss opens a full-window stall
/// episode, maximizing span open/charge/flush traffic — across the same
/// three tiers as [`telemetry_probe_overhead`]:
///
/// 1. `no_probe` — tracker compiled away entirely.
/// 2. `runtime_off` — `SinkProbe` (`ENABLED = true`): the tracker runs
///    and apportions every span, but emissions hit a disabled handle.
/// 3. `enabled` — tracker plus full event delivery to a counting sink.
///
/// Tier 1 within 2% of tier 2 proves the attribution machinery imposes
/// no tax on plain simulation runs; the tier-2/tier-3 spread printed
/// below is the price of *using* span tracing on its worst-case input.
fn span_tracing_overhead(c: &mut Criterion) {
    let _ = c; // timings below are A/B minimums, not per-op criterion runs
    let trace = SpecBench::Twolf.generate(40_000, 11);
    let cfg = || SystemConfig::baseline(PolicyKind::lin4());

    let mut no_probe = || {
        black_box(System::new(cfg()).run(trace.iter()));
    };
    let mut runtime_off = || {
        let probe = SinkProbe::new(SinkHandle::disabled());
        black_box(System::with_probe(cfg(), probe).run(trace.iter()));
    };
    let mut enabled = || {
        let probe = SinkProbe::new(SinkHandle::of(CountingSink(0)));
        black_box(System::with_probe(cfg(), probe).run(trace.iter()));
    };

    let [t_off, t_attrib, t_on] =
        interleaved_minimums([&mut no_probe, &mut runtime_off, &mut enabled], 11);
    println!(
        "bench span_tracing/no_probe                              best   {t_off:>12.1} ns/run"
    );
    println!(
        "bench span_tracing/attrib_runtime_disabled               best   {t_attrib:>12.1} ns/run"
    );
    println!("bench span_tracing/attrib_enabled_counting_sink          best   {t_on:>12.1} ns/run");
    println!(
        "bench span_tracing: disabled overhead {:+.2}%  enabled cost {:+.2}%",
        (t_off / t_attrib - 1.0) * 100.0,
        (t_on / t_off - 1.0) * 100.0,
    );
    assert!(
        t_off <= t_attrib * 1.02,
        "System<NoProbe> ({t_off:.0} ns) runs >2% slower than the span-tracing \
         build ({t_attrib:.0} ns) on a stall-heavy run: the attribution \
         tracker is not compiling away"
    );
}

criterion_group!(
    overheads,
    victim_selection,
    recency_ranking,
    quantizer,
    psel_updates,
    leader_lookup,
    telemetry_probe_overhead,
    span_tracing_overhead
);
criterion_main!(overheads);
