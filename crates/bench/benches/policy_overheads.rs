//! Per-decision latency of each replacement policy's victim selection —
//! the software analogue of the paper's concern that CARE logic stay off
//! the critical path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::meta::WayMeta;
use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};
use mlpsim_cache::set::SetView;
use mlpsim_core::psel::Psel;
use mlpsim_core::quant::quantize;
use mlpsim_cpu::policy::PolicyKind;
use std::hint::black_box;

/// A full 16-way set with varied recency and costs.
fn full_set() -> Vec<WayMeta> {
    (0..16u64)
        .map(|i| WayMeta {
            valid: true,
            tag: i,
            lru_stamp: (i * 7919) % 97,
            fill_stamp: i,
            cost_q: ((i * 3) % 8) as u8,
            dirty: i % 2 == 0,
        })
        .collect()
}

fn victim_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("victim_selection");
    g.throughput(Throughput::Elements(1));
    let geom = Geometry::baseline_l2();
    let ways = full_set();
    for policy in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::lin4()] {
        let mut engine = policy.build(geom);
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                let view = SetView::new(&ways, 0, geom);
                let ctx = VictimCtx { set: view, incoming: LineAddr(999), seq: 1 };
                black_box(engine.victim(&ctx))
            })
        });
    }
    g.finish();
}

fn recency_ranking(c: &mut Criterion) {
    c.bench_function("recency_ranks_16way", |b| {
        let geom = Geometry::baseline_l2();
        let ways = full_set();
        b.iter(|| {
            let view = SetView::new(&ways, 0, geom);
            black_box(view.recency_ranks())
        })
    });
}

fn quantizer(c: &mut Criterion) {
    c.bench_function("quantize_single", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.7;
            if x > 600.0 {
                x = 0.0;
            }
            black_box(quantize(x))
        })
    });
}

fn psel_updates(c: &mut Criterion) {
    c.bench_function("psel_update", |b| {
        let mut p = Psel::paper_default();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if i.is_multiple_of(2) {
                p.inc_by(i % 8);
            } else {
                p.dec_by(i % 8);
            }
            black_box(p.msb_set())
        })
    });
}

fn leader_lookup(c: &mut Criterion) {
    use mlpsim_core::leader::{LeaderSets, SelectionPolicy};
    c.bench_function("leader_set_lookup", |b| {
        let l = LeaderSets::new(1024, 32, SelectionPolicy::SimpleStatic, 0);
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 33) % 1024;
            black_box(l.is_leader(s))
        })
    });
}

criterion_group!(overheads, victim_selection, recency_ranking, quantizer, psel_updates, leader_lookup);
criterion_main!(overheads);
