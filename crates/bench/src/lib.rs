//! Shared helpers for the Criterion benches.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `paper_experiments` — one target per paper table/figure, each
//!   regenerating that experiment's data at a reduced scale,
//! * `micro_substrates` — throughput of the simulator building blocks
//!   (tag store, MSHR+CCL, DRAM/bus, trace generation, full system),
//! * `policy_overheads` — per-decision latency of each replacement
//!   policy's victim selection.

use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::stats::SimResult;
use mlpsim_cpu::system::System;
use mlpsim_trace::record::Trace;
use mlpsim_trace::spec::SpecBench;

/// Access count used by the bench-scale experiment runs: large enough for
/// steady-state replacement behavior, small enough for Criterion's
/// repeated sampling.
pub const BENCH_ACCESSES: usize = 30_000;

/// Generates the bench-scale trace for a benchmark (fixed seed).
pub fn bench_trace(bench: SpecBench) -> Trace {
    bench.generate(BENCH_ACCESSES, 42)
}

/// Runs a pre-generated trace under a policy on the baseline machine.
pub fn simulate(trace: &Trace, policy: PolicyKind) -> SimResult {
    System::new(SystemConfig::baseline(policy)).run(trace.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_work() {
        let t = bench_trace(SpecBench::Sixtrack);
        let r = simulate(&t, PolicyKind::Lru);
        assert!(r.l2.misses > 0);
    }
}
