#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Memory-reference traces and synthetic workload generators.
//!
//! The paper evaluates on SimPoint slices of SPEC CPU2000 running on a
//! proprietary Alpha simulator. Neither the traces nor the simulator are
//! available, so this crate supplies the substitute: a compact trace
//! format ([`record`]) and a family of *synthetic* workload generators
//! ([`gen`]) whose memory behavior is parameterized to match each
//! benchmark's qualitative signature — its MLP distribution (paper
//! Fig. 2), its `mlp-cost` predictability (Table 1), its working-set
//! pressure (Table 3), and its phase behavior (Fig. 11).
//!
//! Traces are sequences of [`record::Access`] records: a cache-line
//! address, a load/store kind, and the number of non-memory instructions
//! preceding the access. Instruction *gaps* are what create or destroy
//! memory-level parallelism in the out-of-order window model: two misses
//! less than a window (128 instructions) apart overlap; two misses more
//! than a window apart serialize. This is exactly the vocabulary of the
//! paper's Figure-1 example ("Points A, B, C, D, and E each represent an
//! interval of at least K instructions").

pub mod gen;
pub mod io;
pub mod record;
pub mod stats;

pub use gen::figure1;
pub use gen::spec;
pub use record::{Access, AccessKind, Trace};
