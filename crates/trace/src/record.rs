//! The trace record format.

use serde::{Deserialize, Serialize};

/// Kind of memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load: the instruction window cannot retire past it until data
    /// returns.
    Load,
    /// A store: retires into the store buffer without blocking the window
    /// (unless the store buffer is full), per the paper's baseline.
    Store,
}

/// One memory access in a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Access {
    /// The cache-line address (64-byte granularity).
    pub line: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Number of non-memory instructions *preceding* this access. Gaps of
    /// a window (128) or more isolate a miss from its predecessor.
    pub gap: u32,
}

impl Access {
    /// A load with the given line and gap.
    pub fn load(line: u64, gap: u32) -> Self {
        Access {
            line,
            kind: AccessKind::Load,
            gap,
        }
    }

    /// A store with the given line and gap.
    pub fn store(line: u64, gap: u32) -> Self {
        Access {
            line,
            kind: AccessKind::Store,
            gap,
        }
    }

    /// Instructions this record contributes (the access itself plus its
    /// gap).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

/// A complete memory-reference trace.
///
/// # Example
///
/// ```
/// use mlpsim_trace::record::{Access, Trace};
/// let t = Trace::from_accesses(vec![Access::load(0, 10), Access::load(1, 0)]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.instructions(), 12);
/// assert_eq!(t.unique_lines(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    accesses: Vec<Access>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps a vector of accesses.
    pub fn from_accesses(accesses: Vec<Access>) -> Self {
        Trace { accesses }
    }

    /// Number of memory accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Total instruction count (accesses plus gaps).
    pub fn instructions(&self) -> u64 {
        self.accesses.iter().map(Access::instructions).sum()
    }

    /// Number of distinct cache lines touched.
    pub fn unique_lines(&self) -> u64 {
        let mut lines: Vec<u64> = self.accesses.iter().map(|a| a.line).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }

    /// Iterator over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// The underlying access slice.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Appends an access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Appends all accesses of another trace.
    pub fn extend_from(&mut self, other: &Trace) {
        self.accesses.extend_from_slice(&other.accesses);
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_count_includes_gaps() {
        let t = Trace::from_accesses(vec![Access::load(0, 100), Access::store(1, 27)]);
        // (100 + 1) + (27 + 1) = 129
        assert_eq!(t.instructions(), 129);
    }

    #[test]
    fn unique_lines_dedups() {
        let t = Trace::from_accesses(vec![
            Access::load(5, 0),
            Access::load(5, 0),
            Access::store(5, 0),
            Access::load(9, 0),
        ]);
        assert_eq!(t.unique_lines(), 2);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = (0..4u64).map(|i| Access::load(i, 1)).collect();
        t.extend((4..6u64).map(|i| Access::store(i, 0)));
        assert_eq!(t.len(), 6);
        assert_eq!(t.iter().filter(|a| a.kind == AccessKind::Store).count(), 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.instructions(), 0);
        assert_eq!(t.unique_lines(), 0);
    }
}
