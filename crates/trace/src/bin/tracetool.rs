//! `tracetool` — generate, summarize, and inspect mlpsim traces from the
//! shell.
//!
//! ```text
//! tracetool gen <bench> <accesses> <seed> [out.trace]   # write a trace
//! tracetool summarize <file.trace>                      # static stats
//! tracetool head <file.trace> [n]                       # first n records
//! tracetool benches                                     # list benchmarks
//! ```

use mlpsim_trace::io::{read_trace, write_trace};
use mlpsim_trace::record::AccessKind;
use mlpsim_trace::spec::SpecBench;
use mlpsim_trace::stats::TraceSummary;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracetool gen <bench> <accesses> <seed> [out.trace]\n  \
         tracetool summarize <file.trace>\n  tracetool head <file.trace> [n]\n  \
         tracetool benches"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("benches") => {
            for b in SpecBench::ALL {
                println!("{:10} {}", b.name(), if b.is_fp() { "FP" } else { "INT" });
            }
            ExitCode::SUCCESS
        }
        Some("gen") => {
            let (Some(name), Some(n), Some(seed)) = (args.get(1), args.get(2), args.get(3)) else {
                return usage();
            };
            let Some(bench) = SpecBench::from_name(name) else {
                eprintln!("unknown benchmark {name:?}; try `tracetool benches`");
                return ExitCode::FAILURE;
            };
            let (Ok(n), Ok(seed)) = (n.parse::<usize>(), seed.parse::<u64>()) else {
                return usage();
            };
            let trace = bench.generate(n, seed);
            let result = match args.get(4) {
                Some(path) => {
                    let file = match File::create(path) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("cannot create {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    write_trace(BufWriter::new(file), &trace)
                }
                None => write_trace(BufWriter::new(io::stdout().lock()), &trace),
            };
            if let Err(e) = result {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("summarize") => {
            let Some(path) = args.get(1) else { return usage() };
            let trace = match File::open(path).map_err(Into::into).and_then(read_trace) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let s = TraceSummary::of(&trace);
            println!("accesses        {}", s.accesses);
            println!("  loads         {}", s.loads);
            println!("  stores        {}", s.stores);
            println!("instructions    {}", s.instructions);
            println!("unique lines    {}", s.unique_lines);
            println!("window breaks   {}", s.window_breaks);
            println!("acc/kinst       {:.2}", s.accesses_per_kilo_inst());
            println!("unique fraction {:.4}", s.unique_fraction());
            ExitCode::SUCCESS
        }
        Some("head") => {
            let Some(path) = args.get(1) else { return usage() };
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
            let trace = match File::open(path).map_err(Into::into).and_then(read_trace) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut out = io::stdout().lock();
            for a in trace.iter().take(n) {
                let k = match a.kind {
                    AccessKind::Load => 'L',
                    AccessKind::Store => 'S',
                };
                let _ = writeln!(out, "gap {:6}  {k}  line {:#x}", a.gap, a.line);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
