//! `tracetool` — generate, summarize, and inspect mlpsim traces from the
//! shell.
//!
//! ```text
//! tracetool gen <bench> <accesses> <seed> [out.trace]   # write a trace
//! tracetool summarize <file.trace>                      # static stats
//! tracetool head <file.trace> [n]                       # first n records
//! tracetool benches                                     # list benchmarks
//! ```
//!
//! `--telemetry <path.ndjson>` (anywhere on the command line) additionally
//! streams `trace_gen`/`trace_summary` events describing what was done, in
//! the same NDJSON dialect the simulator's `--telemetry` produces.

use mlpsim_telemetry::{Event, NdjsonSink, SinkHandle};
use mlpsim_trace::io::{read_trace, write_trace};
use mlpsim_trace::record::AccessKind;
use mlpsim_trace::spec::SpecBench;
use mlpsim_trace::stats::TraceSummary;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracetool gen <bench> <accesses> <seed> [out.trace]\n  \
         tracetool summarize <file.trace>\n  tracetool head <file.trace> [n]\n  \
         tracetool benches\n\
         options:\n  --telemetry <path.ndjson>   stream tool events"
    );
    ExitCode::FAILURE
}

/// Splits `--telemetry <path>` / `--telemetry=<path>` out of the raw
/// arguments, returning the remaining positional args and the sink handle.
fn split_telemetry(raw: Vec<String>) -> Result<(Vec<String>, SinkHandle), ExitCode> {
    let mut args = Vec::new();
    let mut path: Option<String> = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--telemetry" {
            match it.next() {
                Some(p) => path = Some(p),
                None => {
                    eprintln!("--telemetry requires a path argument");
                    return Err(ExitCode::FAILURE);
                }
            }
        } else if let Some(p) = a.strip_prefix("--telemetry=") {
            path = Some(p.to_string());
        } else {
            args.push(a);
        }
    }
    let sink = match path {
        None => SinkHandle::disabled(),
        Some(p) => match NdjsonSink::create(&p) {
            Ok(s) => SinkHandle::of(s),
            Err(e) => {
                eprintln!("cannot create telemetry file {p}: {e}");
                return Err(ExitCode::FAILURE);
            }
        },
    };
    Ok((args, sink))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, sink) = match split_telemetry(raw) {
        Ok(v) => v,
        Err(code) => return code,
    };
    match args.first().map(String::as_str) {
        Some("benches") => {
            for b in SpecBench::ALL {
                println!("{:10} {}", b.name(), if b.is_fp() { "FP" } else { "INT" });
            }
            ExitCode::SUCCESS
        }
        Some("gen") => {
            let (Some(name), Some(n), Some(seed)) = (args.get(1), args.get(2), args.get(3)) else {
                return usage();
            };
            let Some(bench) = SpecBench::from_name(name) else {
                eprintln!("unknown benchmark {name:?}; try `tracetool benches`");
                return ExitCode::FAILURE;
            };
            let (Ok(n), Ok(seed)) = (n.parse::<usize>(), seed.parse::<u64>()) else {
                return usage();
            };
            let trace = bench.generate(n, seed);
            sink.emit_with(|| Event::TraceGen {
                bench: bench.name().to_string(),
                accesses: n as u64,
                seed,
            });
            let result = match args.get(4) {
                Some(path) => {
                    let file = match File::create(path) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("cannot create {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    write_trace(BufWriter::new(file), &trace)
                }
                None => write_trace(BufWriter::new(io::stdout().lock()), &trace),
            };
            if let Err(e) = result {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("summarize") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let trace = match File::open(path).map_err(Into::into).and_then(read_trace) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let s = TraceSummary::of(&trace);
            sink.emit_with(|| Event::TraceSummary {
                bench: path.clone(),
                accesses: s.accesses,
                unique_lines: s.unique_lines,
            });
            println!("accesses        {}", s.accesses);
            println!("  loads         {}", s.loads);
            println!("  stores        {}", s.stores);
            println!("instructions    {}", s.instructions);
            println!("unique lines    {}", s.unique_lines);
            println!("window breaks   {}", s.window_breaks);
            println!("acc/kinst       {:.2}", s.accesses_per_kilo_inst());
            println!("unique fraction {:.4}", s.unique_fraction());
            ExitCode::SUCCESS
        }
        Some("head") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
            let trace = match File::open(path).map_err(Into::into).and_then(read_trace) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut out = io::stdout().lock();
            for a in trace.iter().take(n) {
                let k = match a.kind {
                    AccessKind::Load => 'L',
                    AccessKind::Store => 'S',
                };
                let _ = writeln!(out, "gap {:6}  {k}  line {:#x}", a.gap, a.line);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
