//! Workload generation: regions, activities, and phase schedules.
//!
//! Generators are built from three layers:
//!
//! 1. a [`region::Region`] names a contiguous range of cache lines
//!    and an iteration order over them;
//! 2. an [`activity::Activity`] emits one *episode* of accesses
//!    with a characteristic memory-level parallelism — a parallel burst, a
//!    pair, an isolated access, or a cache-friendly hot run;
//! 3. a [`schedule::Schedule`] interleaves weighted activities,
//!    optionally switching activity mixes across program phases (the
//!    ammp/mgrid behavior of the paper's Fig. 11).
//!
//! [`spec`] instantiates one schedule per SPEC CPU2000 benchmark of the
//! paper's Table 3, and [`figure1`] reproduces the motivating loop of the
//! paper's Figure 1.

pub mod activity;
pub mod figure1;
pub mod region;
pub mod schedule;
pub mod spec;

pub use activity::Activity;
pub use region::{Order, Region};
pub use schedule::{Phase, Schedule};
