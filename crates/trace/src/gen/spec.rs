//! Synthetic stand-ins for the paper's SPEC CPU2000 benchmarks (Table 3).
//!
//! Each benchmark is a [`Schedule`] whose parameters target that
//! benchmark's *qualitative signature* in the paper:
//!
//! * the shape of its `mlp-cost` distribution (Fig. 2: parallel-dominated
//!   art vs. isolated-dominated twolf/vpr/parser vs. bimodal facerec),
//! * the predictability of `mlp-cost` (Table 1: low delta for
//!   art/mcf/facerec/sixtrack, high delta for bzip2/parser/mgrid),
//! * whether LIN helps or hurts (Fig. 4), and
//! * phase behavior (Fig. 11: ammp flips between LIN-friendly and
//!   LRU-friendly phases).
//!
//! The mechanisms, in terms of the activity vocabulary:
//!
//! * **LIN-friendly** workloads have a *reused* region of
//!   isolated/pair-miss blocks small enough to pin in the cache, next to
//!   parallel streams that thrash LRU.
//! * **LIN-hostile** workloads have *dead* or *cost-unstable* high-cost
//!   blocks (fresh transients, phase-flipping regions): LIN pins them,
//!   displacing a recency-friendly working set.
//!
//! All regions live in disjoint 16M-line address slots so activities never
//! alias.

use crate::gen::activity::Activity;
use crate::gen::region::{Order, Region};
use crate::gen::schedule::{Phase, Schedule};
use crate::record::Trace;

/// Lines per address slot; regions of one workload never overlap.
const SLOT: u64 = 1 << 24;

/// Cache capacity of the paper's baseline L2, in lines (1 MB / 64 B).
/// Region sizes below are chosen relative to this.
pub const L2_LINES: u64 = 16_384;

/// The 14 SPEC CPU2000 benchmarks of the paper's evaluation, in the order
/// of Figure 4's x-axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpecBench {
    /// `179.art` — streaming FP, huge parallel working set, LRU thrashes.
    Art,
    /// `181.mcf` — pointer-chasing INT, most misses of the suite.
    Mcf,
    /// `300.twolf` — isolated-miss-dominated INT.
    Twolf,
    /// `175.vpr` — isolated-miss-dominated INT with a pinnable hot graph.
    Vpr,
    /// `187.facerec` — bimodal FP (isolated + pairwise misses).
    Facerec,
    /// `188.ammp` — two alternating phases; SBAR's best case.
    Ammp,
    /// `178.galgel` — thrash-prone FP with phase variation.
    Galgel,
    /// `183.equake` — parallel-dominated FP, LIN-neutral.
    Equake,
    /// `256.bzip2` — cost-unpredictable INT, LIN mildly hostile.
    Bzip2,
    /// `197.parser` — cost-unpredictable INT, LIN's worst miss blow-up.
    Parser,
    /// `200.sixtrack` — fully deterministic FP, delta ≈ 0.
    Sixtrack,
    /// `301.apsi` — large-working-set FP, big LIN miss reduction.
    Apsi,
    /// `189.lucas` — cost-uniform FP, LIN ≈ LRU.
    Lucas,
    /// `172.mgrid` — phase-flipping sweeps; LIN's worst IPC loss.
    Mgrid,
}

impl SpecBench {
    /// All benchmarks in the paper's Figure-4 order.
    pub const ALL: [SpecBench; 14] = [
        SpecBench::Art,
        SpecBench::Mcf,
        SpecBench::Twolf,
        SpecBench::Vpr,
        SpecBench::Facerec,
        SpecBench::Ammp,
        SpecBench::Galgel,
        SpecBench::Equake,
        SpecBench::Bzip2,
        SpecBench::Parser,
        SpecBench::Sixtrack,
        SpecBench::Apsi,
        SpecBench::Lucas,
        SpecBench::Mgrid,
    ];

    /// The SPEC short name.
    pub fn name(self) -> &'static str {
        match self {
            SpecBench::Art => "art",
            SpecBench::Mcf => "mcf",
            SpecBench::Twolf => "twolf",
            SpecBench::Vpr => "vpr",
            SpecBench::Facerec => "facerec",
            SpecBench::Ammp => "ammp",
            SpecBench::Galgel => "galgel",
            SpecBench::Equake => "equake",
            SpecBench::Bzip2 => "bzip2",
            SpecBench::Parser => "parser",
            SpecBench::Sixtrack => "sixtrack",
            SpecBench::Apsi => "apsi",
            SpecBench::Lucas => "lucas",
            SpecBench::Mgrid => "mgrid",
        }
    }

    /// Looks a benchmark up by its SPEC short name.
    pub fn from_name(name: &str) -> Option<SpecBench> {
        SpecBench::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Whether the benchmark is floating-point (Table 3's "Type" column).
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            SpecBench::Art
                | SpecBench::Facerec
                | SpecBench::Ammp
                | SpecBench::Galgel
                | SpecBench::Equake
                | SpecBench::Sixtrack
                | SpecBench::Apsi
                | SpecBench::Lucas
                | SpecBench::Mgrid
        )
    }

    /// Builds this benchmark's workload schedule.
    pub fn schedule(self) -> Schedule {
        match self {
            SpecBench::Art => art(),
            SpecBench::Mcf => mcf(),
            SpecBench::Twolf => twolf(),
            SpecBench::Vpr => vpr(),
            SpecBench::Facerec => facerec(),
            SpecBench::Ammp => ammp(),
            SpecBench::Galgel => galgel(),
            SpecBench::Equake => equake(),
            SpecBench::Bzip2 => bzip2(),
            SpecBench::Parser => parser(),
            SpecBench::Sixtrack => sixtrack(),
            SpecBench::Apsi => apsi(),
            SpecBench::Lucas => lucas(),
            SpecBench::Mgrid => mgrid(),
        }
    }

    /// Generates a trace of at least `accesses` memory references.
    pub fn generate(self, accesses: usize, seed: u64) -> Trace {
        self.schedule().generate(accesses, seed)
    }
}

impl std::fmt::Display for SpecBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn seq(slot: u64, lines: u64) -> Region {
    Region::new(slot * SLOT, lines, Order::Sequential)
}

fn rand_region(slot: u64, lines: u64) -> Region {
    Region::new(slot * SLOT, lines, Order::Random)
}

fn fresh(slot: u64) -> Region {
    Region::new(slot * SLOT, 1 << 30, Order::Fresh)
}

fn burst(region: Region, width: usize) -> Activity {
    Activity::Burst {
        region,
        width,
        spacing: crate::gen::activity::ISOLATING_GAP,
    }
}

fn pair(region: Region) -> Activity {
    Activity::Pair { region }
}

fn isolated(region: Region) -> Activity {
    Activity::Isolated { region }
}

fn store_burst(region: Region, width: usize, spacing: u32) -> Activity {
    Activity::StoreBurst {
        region,
        width,
        spacing,
    }
}

fn hot(region: Region, run: usize, store_pct: u8) -> Activity {
    hot_gap(region, run, 2, store_pct)
}

fn hot_gap(region: Region, run: usize, gap: u32, store_pct: u8) -> Activity {
    Activity::Hot {
        region,
        run,
        gap,
        store_pct,
    }
}

/// art: parallel streaming over 2.2× the cache, plus a pinnable pair/
/// isolated sub-working-set. LRU thrashes everything; LIN pins the costly
/// subset and converts ~a third of the misses into hits.
fn art() -> Schedule {
    // The pair and isolated activities share one region (separate cursors,
    // same lines): its blocks carry cost_q 3–7 and pin under LIN, turning
    // ~a third of the access stream from misses into hits.
    Schedule::single(vec![
        (burst(seq(0, 34_000), 8), 5),
        (pair(seq(1, 12_000)), 13),
        (isolated(seq(1, 12_000)), 1),
        (hot(seq(3, 64), 12, 0), 1),
    ])
}

/// mcf: enormous miss count; pointer pairs over a huge random graph plus a
/// protectable isolated region (the paper: LIN removes almost all of
/// mcf's isolated misses).
fn mcf() -> Schedule {
    Schedule::single(vec![
        (pair(rand_region(0, 26_000)), 10),
        (isolated(seq(1, 4_500)), 4),
        (burst(seq(2, 16_000), 4), 2),
        (hot(seq(3, 512), 24, 20), 1),
    ])
}

/// twolf: isolated-dominated with a large recency-friendly set; LIN trades
/// a few extra misses for cheaper ones (paper: +7% misses, +1.5% IPC).
fn twolf() -> Schedule {
    Schedule::single(vec![
        (isolated(rand_region(0, 6_500)), 4),
        (burst(rand_region(0, 6_500), 4), 1),
        (hot(seq(1, 5_500), 12, 30), 5),
        (burst(seq(2, 24_000), 8), 1),
        (pair(seq(2, 24_000)), 1),
    ])
}

/// vpr: isolated-dominated like twolf but with a mostly pinnable isolated
/// region → clear LIN win (paper: −9% misses, +15% IPC).
fn vpr() -> Schedule {
    Schedule::single(vec![
        (isolated(rand_region(0, 6_500)), 7),
        (hot(seq(1, 3_500), 12, 30), 5),
        (burst(seq(2, 20_000), 8), 1),
        (pair(seq(2, 20_000)), 1),
    ])
}

/// facerec: bimodal — one isolated population, one pairwise population
/// (the two peaks of Fig. 2).
fn facerec() -> Schedule {
    Schedule::single(vec![
        (isolated(seq(0, 1_500)), 1),
        (pair(fresh(1)), 6),
        (pair(seq(2, 8_000)), 1),
        (hot(seq(3, 2_000), 16, 10), 1),
    ])
}

/// ammp: alternates a LIN-friendly pointer phase with a LIN-hostile
/// transient phase; the SBAR case study of Fig. 11.
fn ammp() -> Schedule {
    // Phase A is an mcf-like pointer phase (a stable LIN win); phase B is
    // a parser-like transient phase (a stable LIN loss). SBAR follows the
    // per-phase winner, which is how it beats both pure policies (§7.1).
    let lin_friendly = Phase::new(
        vec![
            (isolated(rand_region(0, 5_000)), 8),
            (hot(seq(1, 3_500), 6, 30), 5),
            (burst(seq(2, 20_000), 8), 3),
            (pair(seq(2, 20_000)), 1),
        ],
        140_000,
    );
    let lru_friendly = Phase::new(
        vec![
            (hot_gap(seq(3, 9_000), 20, 4, 30), 8),
            (isolated(fresh(4)), 2),
            (isolated(rand_region(5, 2_000)), 1),
            (burst(rand_region(5, 2_000), 8), 1),
        ],
        70_000,
    );
    Schedule::new(vec![lin_friendly, lru_friendly])
}

/// galgel: art-like thrashing with a recency-friendly phase; SBAR
/// outperforms either pure policy.
fn galgel() -> Schedule {
    let thrash = Phase::new(
        vec![
            (burst(seq(0, 30_000), 8), 5),
            (pair(seq(1, 8_000)), 5),
            (isolated(seq(1, 8_000)), 1),
        ],
        70_000,
    );
    let friendly = Phase::new(
        vec![
            (hot_gap(seq(2, 8_000), 24, 6, 10), 5),
            (burst(seq(0, 30_000), 8), 2),
        ],
        70_000,
    );
    Schedule::new(vec![thrash, friendly])
}

/// equake: parallel-dominated and LIN-neutral (paper: +0.2% IPC).
fn equake() -> Schedule {
    Schedule::single(vec![
        (burst(seq(0, 20_000), 4), 5),
        (pair(seq(1, 14_000)), 2),
        (hot(seq(2, 2_000), 16, 10), 2),
    ])
}

/// bzip2: the same region is visited sometimes in bursts, sometimes in
/// isolation → `mlp-cost` is unpredictable (Table 1: avg delta 126) and
/// LIN's pinning misfires mildly (paper: +6% misses, −3.3% IPC).
fn bzip2() -> Schedule {
    Schedule::single(vec![
        (hot_gap(seq(0, 9_500), 24, 4, 30), 12),
        (pair(rand_region(1, 2_500)), 2),
        (burst(rand_region(1, 2_500), 8), 2),
        (burst(seq(2, 20_000), 8), 3),
    ])
}

/// parser: fresh isolated transients acquire cost 7 and pin under LIN,
/// displacing a working set that nearly fills the cache (paper: +35%
/// misses, −16% IPC).
fn parser() -> Schedule {
    Schedule::single(vec![
        (hot_gap(seq(0, 10_800), 20, 4, 30), 10),
        (isolated(fresh(1)), 1),
        (pair(rand_region(2, 2_000)), 2),
        (burst(rand_region(2, 2_000), 8), 1),
        (burst(fresh(3), 8), 1),
    ])
}

/// sixtrack: fully deterministic access pattern → every revisit has the
/// same cost (Table 1: 100% of deltas < 60) and the isolated region is
/// trivially pinnable (paper: +10% IPC).
fn sixtrack() -> Schedule {
    Schedule::single(vec![
        (burst(seq(0, 18_000), 8), 6),
        (isolated(seq(1, 1_200)), 1),
        (hot(seq(2, 1_000), 16, 0), 1),
    ])
}

/// apsi: large streaming working set with a big pinnable pair population →
/// large miss reduction (paper: −32% misses).
fn apsi() -> Schedule {
    Schedule::single(vec![
        (burst(seq(0, 12_000), 3), 8),
        (isolated(seq(0, 12_000)), 1),
        (burst(seq(1, 22_000), 8), 6),
        (hot(seq(3, 500), 12, 10), 1),
    ])
}

/// lucas: nearly uniform pairwise cost — with a constant cost, LIN's
/// victim ordering degenerates to LRU's (paper: +1.3% IPC).
fn lucas() -> Schedule {
    Schedule::single(vec![
        (pair(seq(0, 20_000)), 12),
        (isolated(seq(1, 300)), 1),
        (hot(seq(2, 2_000), 12, 10), 1),
    ])
}

/// mgrid: sweeps into fresh memory whose parallelism flips per phase;
/// LIN pins dead high-cost sweep blocks and starves the resident working
/// set (paper: +3% misses but −33% IPC).
fn mgrid() -> Schedule {
    // Fresh sweeps whose parallelism flips per phase, over a small
    // recency-friendly structure (LRU keeps it comfortably). The
    // isolated-sweep phases flood the cache with dead cost-7 pins that
    // evict the structure under LIN; its re-misses are near-isolated, so
    // the damage shows up as a modest miss increase but a massive IPC
    // loss — the paper's +3% misses / −33% IPC signature. The shared
    // strided region re-walked in both phases makes block costs flip
    // 1 ↔ 7 between visits (Table 1: mgrid's 187-cycle average delta).
    // The hot structure's loads ride 30-instruction gaps behind store
    // sweeps: store misses share the MSHR (diluting the measured cost to
    // cost_q 0–1) but do not unblock the window, so a displaced hot line
    // stalls nearly a full memory round trip while *staying* unprotected —
    // LIN keeps evicting it in favor of the dead cost-7 sweep pins.
    let burst_sweep = Phase::new(
        vec![
            (burst(fresh(0), 8), 3),
            (store_burst(fresh(5), 8, 30), 3),
            (burst(seq(3, 20_000), 8), 2),
            (hot_gap(seq(2, 1_500), 2, 30, 0), 16),
        ],
        40_000,
    );
    let isolated_sweep = Phase::new(
        vec![
            (isolated(fresh(1)), 6),
            (store_burst(fresh(6), 8, 30), 3),
            (isolated(seq(3, 20_000)), 2),
            (hot_gap(seq(2, 1_500), 2, 30, 0), 16),
        ],
        40_000,
    );
    Schedule::new(vec![burst_sweep, isolated_sweep])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;

    #[test]
    fn all_benchmarks_generate() {
        for b in SpecBench::ALL {
            let t = b.generate(5_000, 1);
            assert!(t.len() >= 5_000, "{b} too short");
            assert!(t.instructions() > t.len() as u64, "{b} must have gaps");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in SpecBench::ALL {
            assert_eq!(SpecBench::from_name(b.name()), Some(b));
        }
        assert_eq!(SpecBench::from_name("gcc"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        for b in [SpecBench::Art, SpecBench::Parser, SpecBench::Ammp] {
            assert_eq!(b.generate(2_000, 7), b.generate(2_000, 7));
        }
    }

    #[test]
    fn fp_int_split_matches_table3() {
        let fp: Vec<&str> = SpecBench::ALL
            .iter()
            .filter(|b| b.is_fp())
            .map(|b| b.name())
            .collect();
        assert_eq!(
            fp,
            vec![
                "art", "facerec", "ammp", "galgel", "equake", "sixtrack", "apsi", "lucas", "mgrid"
            ]
        );
    }

    #[test]
    fn art_has_smaller_unique_footprint_than_mgrid() {
        // Table 3: art has 0.5% compulsory misses (heavy reuse), mgrid
        // 46.6% (fresh sweeps). Unique-lines per access must reflect that.
        let n = 250_000;
        let art = SpecBench::Art.generate(n, 3);
        let mgrid = SpecBench::Mgrid.generate(n, 3);
        let art_ratio = art.unique_lines() as f64 / art.len() as f64;
        let mgrid_ratio = mgrid.unique_lines() as f64 / mgrid.len() as f64;
        assert!(
            art_ratio < mgrid_ratio,
            "art {art_ratio} vs mgrid {mgrid_ratio}"
        );
    }

    #[test]
    fn int_benchmarks_contain_stores() {
        let t = SpecBench::Parser.generate(20_000, 5);
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert!(stores > 0);
    }

    #[test]
    fn ammp_phases_shift_regions() {
        let t = SpecBench::Ammp.generate(260_000, 1);
        // Phase 2 uses slots 3..6; phase 1 slots 0..3. Check both appear.
        let phase2_slot_base = 3 * SLOT;
        let has_p1 = t.iter().any(|a| a.line < phase2_slot_base);
        let has_p2 = t
            .iter()
            .any(|a| a.line >= phase2_slot_base && a.line < 6 * SLOT);
        assert!(has_p1 && has_p2);
    }

    #[test]
    fn sixtrack_regions_are_walked_in_order() {
        // Table 1: sixtrack's deltas are 0 because every region is walked
        // sequentially — each revisit of a line happens under identical
        // parallelism. Verify the burst region's walk is cyclic-monotone.
        let t = SpecBench::Sixtrack.generate(20_000, 3);
        let stream: Vec<u64> = t.iter().map(|a| a.line).filter(|&l| l < SLOT).collect();
        for w in stream.windows(2) {
            let diff = w[1] as i64 - w[0] as i64;
            assert!(diff == 1 || diff < 0, "sequential or wrap, got {diff}");
        }
    }

    #[test]
    fn facerec_fresh_pairs_never_wrap() {
        // facerec's pair stream walks fresh memory (slot 1): every line in
        // that region is touched at most... exactly twice would mean reuse;
        // Fresh order guarantees each line appears once.
        let t = SpecBench::Facerec.generate(30_000, 2);
        let mut fresh_lines: Vec<u64> = t
            .iter()
            .map(|a| a.line)
            .filter(|&l| (SLOT..2 * SLOT).contains(&l))
            .collect();
        let total = fresh_lines.len();
        fresh_lines.sort_unstable();
        fresh_lines.dedup();
        assert_eq!(fresh_lines.len(), total, "fresh region lines are unique");
    }

    #[test]
    fn mgrid_has_store_sweeps_and_fresh_growth() {
        let t = SpecBench::Mgrid.generate(40_000, 4);
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert!(stores * 10 > t.len(), "store sweeps are a large component");
        // Fresh sweeps dominate: unique lines are a large fraction.
        assert!(t.unique_lines() as f64 / t.len() as f64 > 0.5);
    }

    #[test]
    fn parser_hot_footprint_hovers_below_cache_capacity() {
        // parser's hostility mechanism needs its live reuse footprint near
        // (but under) the cache size so that LIN's pins tip it over.
        let t = SpecBench::Parser.generate(300_000, 6);
        let hot_lines = t
            .iter()
            .filter(|a| a.line < SLOT) // slot 0 is the hot region
            .map(|a| a.line)
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        assert!(
            hot_lines > L2_LINES / 2 && hot_lines < L2_LINES,
            "hot = {hot_lines}"
        );
    }
}
