//! Weighted, phased interleaving of activities into a trace.

use crate::gen::activity::Activity;
use crate::record::{Access, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One program phase: a weighted mix of activities and how long (in
/// accesses) the phase lasts before the schedule moves on.
#[derive(Clone, Debug)]
pub struct Phase {
    activities: Vec<(Activity, u32)>,
    total_weight: u32,
    accesses: usize,
}

impl Phase {
    /// Creates a phase from `(activity, weight)` pairs lasting `accesses`
    /// memory accesses.
    ///
    /// # Panics
    ///
    /// Panics if no activity is given, any weight is zero, or `accesses`
    /// is zero.
    pub fn new(activities: Vec<(Activity, u32)>, accesses: usize) -> Self {
        assert!(
            !activities.is_empty(),
            "a phase needs at least one activity"
        );
        assert!(accesses > 0, "a phase must emit at least one access");
        let total_weight = activities.iter().map(|(_, w)| *w).sum();
        assert!(
            activities.iter().all(|(_, w)| *w > 0),
            "activity weights must be positive"
        );
        Phase {
            activities,
            total_weight,
            accesses,
        }
    }

    /// Number of accesses this phase emits per visit.
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    fn pick(&mut self, rng: &mut SmallRng) -> &mut Activity {
        let mut roll = rng.random_range(0..self.total_weight);
        for (activity, w) in &mut self.activities {
            if roll < *w {
                return activity;
            }
            roll -= *w;
        }
        unreachable!("weights cover the roll range")
    }
}

/// A cyclic sequence of phases that generates a trace.
///
/// Single-phase workloads (most benchmarks) use one phase; phase-varying
/// workloads (ammp, mgrid, galgel) alternate between LIN-friendly and
/// LRU-friendly mixes, which is what SBAR exploits in the paper's
/// Fig. 11.
#[derive(Clone, Debug)]
pub struct Schedule {
    phases: Vec<Phase>,
}

impl Schedule {
    /// Creates a schedule cycling through `phases`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        Schedule { phases }
    }

    /// Convenience constructor for a single-phase schedule.
    pub fn single(activities: Vec<(Activity, u32)>) -> Self {
        Schedule::new(vec![Phase::new(activities, usize::MAX / 2)])
    }

    /// Generates a trace of (at least) `accesses` memory accesses with the
    /// given seed. Episodes are never split, so the result may exceed
    /// `accesses` by one episode length.
    pub fn generate(&mut self, accesses: usize, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out: Vec<Access> = Vec::with_capacity(accesses + 64);
        let mut phase_idx = 0usize;
        let mut emitted_in_phase = 0usize;
        while out.len() < accesses {
            let phase = &mut self.phases[phase_idx];
            let n = phase.pick(&mut rng).emit(&mut out, &mut rng);
            emitted_in_phase += n;
            if emitted_in_phase >= phase.accesses {
                phase_idx = (phase_idx + 1) % self.phases.len();
                emitted_in_phase = 0;
            }
        }
        Trace::from_accesses(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::region::{Order, Region};

    fn hot(base: u64, lines: u64) -> Activity {
        Activity::Hot {
            region: Region::new(base, lines, Order::Sequential),
            run: 4,
            gap: 1,
            store_pct: 0,
        }
    }

    fn isolated(base: u64, lines: u64) -> Activity {
        Activity::Isolated {
            region: Region::new(base, lines, Order::Sequential),
        }
    }

    #[test]
    fn generates_requested_length() {
        let mut s = Schedule::single(vec![(hot(0, 8), 1)]);
        let t = s.generate(1000, 1);
        assert!(t.len() >= 1000 && t.len() < 1010);
    }

    #[test]
    fn deterministic_per_seed() {
        let t1 = Schedule::single(vec![(hot(0, 8), 1), (isolated(100, 50), 1)]).generate(500, 42);
        let t2 = Schedule::single(vec![(hot(0, 8), 1), (isolated(100, 50), 1)]).generate(500, 42);
        let t3 = Schedule::single(vec![(hot(0, 8), 1), (isolated(100, 50), 1)]).generate(500, 43);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn weights_bias_the_mix() {
        let mut s = Schedule::single(vec![(hot(0, 8), 9), (isolated(1000, 500), 1)]);
        let t = s.generate(4000, 5);
        let isolated_count = t.iter().filter(|a| a.line >= 1000).count();
        // Isolated is 1 access/episode vs hot's 4: expect roughly
        // 1/(1 + 9*4) ≈ 2.7% of accesses from the isolated region.
        let frac = isolated_count as f64 / t.len() as f64;
        assert!(frac > 0.005 && frac < 0.08, "got {frac}");
    }

    #[test]
    fn phases_alternate() {
        let p1 = Phase::new(vec![(hot(0, 8), 1)], 100);
        let p2 = Phase::new(vec![(hot(10_000, 8), 1)], 100);
        let mut s = Schedule::new(vec![p1, p2]);
        let t = s.generate(400, 9);
        let first_hundred_high = t.accesses()[..100].iter().any(|a| a.line >= 10_000);
        let second_hundred_high = t.accesses()[100..200].iter().all(|a| a.line >= 10_000);
        assert!(!first_hundred_high, "phase 1 stays in its region");
        assert!(second_hundred_high, "phase 2 switches regions");
    }

    #[test]
    #[should_panic(expected = "at least one activity")]
    fn empty_phase_panics() {
        let _ = Phase::new(vec![], 10);
    }
}
