//! The motivating loop of the paper's Figure 1.
//!
//! ```text
//!   A  P1 P2 P3 P4  B  P4 P3 P2 P1  C  S1  D  S2  E  S3  A ...
//! ```
//!
//! Accesses to the P blocks occur together inside one instruction-window
//! span (so P misses are serviced in parallel); S1, S2 and S3 are each
//! separated by "an interval of at least K instructions" (K = window
//! size), so S misses are isolated. On a fully-associative cache with
//! space for four blocks the paper shows:
//!
//! * Belady's OPT: 4 misses and 4 long-latency stalls per iteration,
//! * LRU: 6 misses and 4 stalls per iteration,
//! * the MLP-aware policy: 6 misses but only 2 stalls per iteration.

use crate::record::{Access, Trace};

/// Line addresses used for the P blocks (P1–P4).
pub const P_BLOCKS: [u64; 4] = [1, 2, 3, 4];

/// Line addresses used for the S blocks (S1–S3).
pub const S_BLOCKS: [u64; 3] = [101, 102, 103];

/// Gap implementing "an interval of at least K instructions" for a
/// 128-entry window.
pub const INTERVAL_GAP: u32 = 192;

/// Gap between P-block accesses inside one window span.
pub const P_GAP: u32 = 2;

/// Generates `iterations` of the Figure-1 loop.
///
/// # Example
///
/// ```
/// use mlpsim_trace::gen::figure1::{figure1_trace, P_BLOCKS, S_BLOCKS};
/// let t = figure1_trace(2);
/// assert_eq!(t.len(), 2 * 11); // 11 memory references per iteration
/// ```
pub fn figure1_trace(iterations: usize) -> Trace {
    let mut t = Trace::new();
    for _ in 0..iterations {
        // A → B: P1 P2 P3 P4 in one window span.
        for (i, &p) in P_BLOCKS.iter().enumerate() {
            let gap = if i == 0 { INTERVAL_GAP } else { P_GAP };
            t.push(Access::load(p, gap));
        }
        // B → C: P4 P3 P2 P1 in one window span.
        for (i, &p) in P_BLOCKS.iter().rev().enumerate() {
            let gap = if i == 0 { INTERVAL_GAP } else { P_GAP };
            t.push(Access::load(p, gap));
        }
        // C → D → E → A: S1, S2, S3, each in its own interval.
        for &s in S_BLOCKS.iter() {
            t.push(Access::load(s, INTERVAL_GAP));
        }
    }
    t
}

/// The raw per-iteration access pattern as line addresses (for analyses
/// that only need the reference stream, e.g. Belady's oracle).
pub fn figure1_lines(iterations: usize) -> Vec<u64> {
    figure1_trace(iterations).iter().map(|a| a.line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_references_per_iteration() {
        let t = figure1_trace(3);
        assert_eq!(t.len(), 33);
    }

    #[test]
    fn p_blocks_share_windows_s_blocks_do_not() {
        let t = figure1_trace(1);
        let a = t.accesses();
        // Indices 1..4 (P2..P4) and 5..8 (P3..P1) are tight.
        for &i in &[1usize, 2, 3, 5, 6, 7] {
            assert!(a[i].gap < 128, "P run must stay inside the window");
        }
        // S blocks (indices 8, 9, 10) each open a fresh interval.
        for &i in &[8usize, 9, 10] {
            assert!(a[i].gap >= 128, "S accesses are isolated");
        }
    }

    #[test]
    fn seven_distinct_blocks() {
        let t = figure1_trace(5);
        assert_eq!(t.unique_lines(), 7);
    }

    #[test]
    fn lines_follow_paper_order() {
        let lines = figure1_lines(1);
        assert_eq!(lines, vec![1, 2, 3, 4, 4, 3, 2, 1, 101, 102, 103]);
    }
}
