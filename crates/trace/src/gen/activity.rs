//! Activities: episodes of accesses with characteristic MLP.
//!
//! The out-of-order window model turns instruction gaps into memory-level
//! parallelism: misses dispatched within one 128-instruction window span
//! overlap, misses farther apart serialize. Each activity emits one
//! episode whose gaps engineer a target parallelism:
//!
//! | Activity | misses per window span | resulting `mlp-cost` |
//! |---|---|---|
//! | `Burst { width: 8 }` | 8 | ≈ 444/8 + bus/bank contention (bin 1) |
//! | `Pair` | 2 | ≈ 222 (bin 3) |
//! | `Isolated` | 1 | ≈ 444 (bin 7) |
//! | `Hot` | — | mostly hits; no cost contribution |

use crate::gen::region::Region;
use crate::record::{Access, AccessKind};
use rand::rngs::SmallRng;
use rand::Rng;

/// Gap large enough to guarantee isolation from the previous and next
/// memory access (> the 128-entry instruction window).
pub const ISOLATING_GAP: u32 = 192;

/// Gap small enough that consecutive accesses share a window span.
pub const TIGHT_GAP: u32 = 2;

/// One weighted workload component.
#[derive(Clone, Debug)]
pub enum Activity {
    /// `width` accesses to consecutive walk steps, all within one window
    /// span: misses are serviced with parallelism ≈ `width`.
    Burst {
        /// The region walked.
        region: Region,
        /// Number of overlapping accesses per episode.
        width: usize,
        /// Gap preceding the episode. [`ISOLATING_GAP`] gives the burst a
        /// clean window of its own; smaller values let consecutive bursts
        /// overlap, raising the effective parallelism.
        spacing: u32,
    },
    /// Two accesses within one window span (parallelism 2), isolated from
    /// neighboring episodes.
    Pair {
        /// The region walked.
        region: Region,
    },
    /// A single access isolated from its neighbors (parallelism 1): the
    /// pointer-chasing pattern of the paper's introduction.
    Isolated {
        /// The region walked.
        region: Region,
    },
    /// `width` *stores* to consecutive walk steps within one window span.
    /// Store misses occupy MSHR entries (they are demand misses, paper
    /// §3.1) and therefore dilute the measured `mlp-cost` of any load miss
    /// they overlap — but they do not unblock the window, so the load's
    /// real stall is undiminished. This is the cost-model blind spot that
    /// store-heavy sweeps (mgrid-style) exploit.
    StoreBurst {
        /// The region walked.
        region: Region,
        /// Number of overlapping stores per episode.
        width: usize,
        /// Gap preceding the episode.
        spacing: u32,
    },
    /// A run of accesses over a small, frequently re-visited region:
    /// recency-friendly traffic that mostly hits.
    Hot {
        /// The region walked (should be small relative to the cache).
        region: Region,
        /// Accesses per episode.
        run: usize,
        /// Gap between the run's accesses.
        gap: u32,
        /// Fraction (0–100) of accesses that are stores.
        store_pct: u8,
    },
}

impl Activity {
    /// Emits one episode into `out`; returns the number of accesses
    /// appended.
    pub fn emit(&mut self, out: &mut Vec<Access>, rng: &mut SmallRng) -> usize {
        match self {
            Activity::Burst {
                region,
                width,
                spacing,
            } => {
                let n = *width;
                for i in 0..n {
                    let line = region.next_line(rng);
                    let gap = if i == 0 { *spacing } else { TIGHT_GAP };
                    out.push(Access {
                        line,
                        kind: AccessKind::Load,
                        gap,
                    });
                }
                n
            }
            Activity::StoreBurst {
                region,
                width,
                spacing,
            } => {
                let n = *width;
                for i in 0..n {
                    let line = region.next_line(rng);
                    let gap = if i == 0 { *spacing } else { TIGHT_GAP };
                    out.push(Access {
                        line,
                        kind: AccessKind::Store,
                        gap,
                    });
                }
                n
            }
            Activity::Pair { region } => {
                let a = region.next_line(rng);
                let b = region.next_line(rng);
                out.push(Access::load(a, ISOLATING_GAP));
                out.push(Access::load(b, TIGHT_GAP + 2));
                2
            }
            Activity::Isolated { region } => {
                let line = region.next_line(rng);
                out.push(Access::load(line, ISOLATING_GAP));
                1
            }
            Activity::Hot {
                region,
                run,
                gap,
                store_pct,
            } => {
                let n = *run;
                for _ in 0..n {
                    let line = region.next_line(rng);
                    let kind = if rng.random_range(0..100u8) < *store_pct {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    out.push(Access {
                        line,
                        kind,
                        gap: *gap,
                    });
                }
                n
            }
        }
    }

    /// A short, human-readable label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Activity::Burst { .. } => "burst",
            Activity::StoreBurst { .. } => "store-burst",
            Activity::Pair { .. } => "pair",
            Activity::Isolated { .. } => "isolated",
            Activity::Hot { .. } => "hot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::region::Order;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn burst_emits_width_accesses_tightly_packed() {
        let mut a = Activity::Burst {
            region: Region::new(0, 100, Order::Sequential),
            width: 8,
            spacing: ISOLATING_GAP,
        };
        let mut out = Vec::new();
        assert_eq!(a.emit(&mut out, &mut rng()), 8);
        assert_eq!(out.len(), 8);
        assert!(
            out[0].gap >= ISOLATING_GAP,
            "burst opens with its spacing gap"
        );
        for acc in &out[1..] {
            assert!(acc.gap <= 4, "intra-burst gaps keep accesses in one window");
        }
    }

    #[test]
    fn isolated_uses_isolating_gap() {
        let mut a = Activity::Isolated {
            region: Region::new(0, 10, Order::Sequential),
        };
        let mut out = Vec::new();
        a.emit(&mut out, &mut rng());
        assert_eq!(out.len(), 1);
        assert!(out[0].gap >= 128, "gap must exceed the window size");
    }

    #[test]
    fn pair_keeps_two_accesses_in_one_window() {
        let mut a = Activity::Pair {
            region: Region::new(0, 10, Order::Sequential),
        };
        let mut out = Vec::new();
        a.emit(&mut out, &mut rng());
        assert_eq!(out.len(), 2);
        assert!(out[0].gap >= 128);
        assert!(out[1].gap < 128);
    }

    #[test]
    fn store_burst_emits_tight_stores() {
        let mut a = Activity::StoreBurst {
            region: Region::new(0, 100, Order::Fresh),
            width: 8,
            spacing: 30,
        };
        let mut out = Vec::new();
        assert_eq!(a.emit(&mut out, &mut rng()), 8);
        assert!(out.iter().all(|x| x.kind == AccessKind::Store));
        assert_eq!(out[0].gap, 30);
        assert!(out[1..].iter().all(|x| x.gap <= 4));
    }

    #[test]
    fn hot_run_mixes_stores() {
        let mut a = Activity::Hot {
            region: Region::new(0, 16, Order::Sequential),
            run: 200,
            gap: 1,
            store_pct: 50,
        };
        let mut out = Vec::new();
        a.emit(&mut out, &mut rng());
        let stores = out.iter().filter(|x| x.kind == AccessKind::Store).count();
        assert!(stores > 50 && stores < 150, "≈50% stores, got {stores}");
    }
}
