//! Address regions and iteration orders.

use rand::rngs::SmallRng;
use rand::Rng;

/// How a region is walked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Order {
    /// Cyclic sequential walk: `base, base+1, …, base+lines-1, base, …`.
    /// Re-walking the same lines keeps compulsory misses low (art-style).
    Sequential,
    /// Cyclic strided walk (wraps modulo the region size). A stride
    /// coprime to the region size still visits every line.
    Strided {
        /// Lines skipped per step.
        stride: u64,
    },
    /// Uniformly random lines within the region (irregular pointer-graph
    /// reuse, mcf-style).
    Random,
    /// Ever-advancing sequential walk that never wraps: every line is
    /// fresh, so every miss is compulsory (transient streams, mgrid-style
    /// sweeps into new data).
    Fresh,
}

/// A contiguous range of cache lines with a walk order and a cursor.
///
/// # Example
///
/// ```
/// use mlpsim_trace::gen::region::{Order, Region};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut r = Region::new(1000, 4, Order::Sequential);
/// let walked: Vec<u64> = (0..6).map(|_| r.next_line(&mut rng)).collect();
/// assert_eq!(walked, vec![1000, 1001, 1002, 1003, 1000, 1001]);
/// ```
#[derive(Clone, Debug)]
pub struct Region {
    base: u64,
    lines: u64,
    order: Order,
    cursor: u64,
}

impl Region {
    /// Creates a region of `lines` cache lines starting at line `base`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(base: u64, lines: u64, order: Order) -> Self {
        assert!(lines > 0, "a region must contain at least one line");
        Region {
            base,
            lines,
            order,
            cursor: 0,
        }
    }

    /// First line of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in lines (for [`Order::Fresh`] this is the wrap-free working
    /// span used only for bookkeeping).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The walk order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// Produces the next line of the walk.
    pub fn next_line(&mut self, rng: &mut SmallRng) -> u64 {
        match self.order {
            Order::Sequential => {
                let line = self.base + self.cursor;
                self.cursor = (self.cursor + 1) % self.lines;
                line
            }
            Order::Strided { stride } => {
                let line = self.base + self.cursor;
                self.cursor = (self.cursor + stride) % self.lines;
                line
            }
            Order::Random => self.base + rng.random_range(0..self.lines),
            Order::Fresh => {
                let line = self.base + self.cursor;
                self.cursor += 1;
                line
            }
        }
    }

    /// Produces `n` consecutive walk steps.
    pub fn take_lines(&mut self, n: usize, rng: &mut SmallRng) -> Vec<u64> {
        (0..n).map(|_| self.next_line(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn sequential_wraps() {
        let mut r = Region::new(10, 3, Order::Sequential);
        let mut g = rng();
        assert_eq!(r.take_lines(7, &mut g), vec![10, 11, 12, 10, 11, 12, 10]);
    }

    #[test]
    fn strided_visits_all_when_coprime() {
        let mut r = Region::new(0, 5, Order::Strided { stride: 2 });
        let mut g = rng();
        let mut seen = r.take_lines(5, &mut g);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fresh_never_repeats() {
        let mut r = Region::new(100, 2, Order::Fresh);
        let mut g = rng();
        let lines = r.take_lines(10, &mut g);
        let mut dedup = lines.clone();
        dedup.dedup();
        assert_eq!(lines, dedup);
        assert_eq!(lines[9], 109);
    }

    #[test]
    fn random_stays_in_bounds() {
        let mut r = Region::new(50, 10, Order::Random);
        let mut g = rng();
        for line in r.take_lines(1000, &mut g) {
            assert!((50..60).contains(&line));
        }
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn empty_region_panics() {
        let _ = Region::new(0, 0, Order::Sequential);
    }
}
