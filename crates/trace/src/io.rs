//! Plain-text trace serialization.
//!
//! The format is one access per line — `gap kind line` with `kind` being
//! `L` or `S` — plus `#`-prefixed comment lines. It is deliberately
//! trivial so traces can be produced or consumed by shell tools:
//!
//! ```text
//! # mlpsim trace v1
//! 192 L 4096
//! 2 L 4097
//! 0 S 128
//! ```

use crate::record::{Access, AccessKind, Trace};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Error produced while parsing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// Description of what was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line_no, reason } => {
                write!(f, "trace parse error at line {line_no}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the text format. A `&mut` writer may be passed.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    writeln!(w, "# mlpsim trace v1")?;
    for a in trace.iter() {
        let k = match a.kind {
            AccessKind::Load => 'L',
            AccessKind::Store => 'S',
        };
        writeln!(w, "{} {} {}", a.gap, k, a.line)?;
    }
    Ok(())
}

/// Reads a trace in the text format. A `&mut` reader may be passed.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on malformed lines and
/// [`TraceIoError::Io`] on read failures.
pub fn read_trace<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut trace = Trace::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let parse = |field: Option<&str>, what: &str| -> Result<String, TraceIoError> {
            field
                .map(str::to_string)
                .ok_or_else(|| TraceIoError::Parse {
                    line_no,
                    reason: format!("missing {what}"),
                })
        };
        let gap: u32 = parse(parts.next(), "gap")?
            .parse()
            .map_err(|e| TraceIoError::Parse {
                line_no,
                reason: format!("bad gap: {e}"),
            })?;
        let kind = match parse(parts.next(), "kind")?.as_str() {
            "L" => AccessKind::Load,
            "S" => AccessKind::Store,
            other => {
                return Err(TraceIoError::Parse {
                    line_no,
                    reason: format!("kind must be L or S, got {other:?}"),
                })
            }
        };
        let addr: u64 =
            parse(parts.next(), "line address")?
                .parse()
                .map_err(|e| TraceIoError::Parse {
                    line_no,
                    reason: format!("bad line address: {e}"),
                })?;
        if let Some(extra) = parts.next() {
            return Err(TraceIoError::Parse {
                line_no,
                reason: format!("unexpected trailing token {extra:?} after line address"),
            });
        }
        trace.push(Access {
            line: addr,
            kind,
            gap,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = Trace::from_accesses(vec![
            Access::load(4096, 192),
            Access::load(4097, 2),
            Access::store(128, 0),
        ]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n10 L 5\n   \n0 S 6\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bad_kind_is_reported_with_line_number() {
        let text = "# c\n1 L 2\n3 X 4\n";
        match read_trace(text.as_bytes()) {
            Err(TraceIoError::Parse { line_no, reason }) => {
                assert_eq!(line_no, 3);
                assert!(reason.contains('X'));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_fields_error() {
        assert!(read_trace("5 L\n".as_bytes()).is_err());
        assert!(read_trace("L 5\n".as_bytes()).is_err());
    }

    #[test]
    fn trailing_tokens_are_rejected_with_token_and_line() {
        let text = "# c\n1 L 2\n1 L 2 garbage\n";
        match read_trace(text.as_bytes()) {
            Err(TraceIoError::Parse { line_no, reason }) => {
                assert_eq!(line_no, 3);
                assert!(reason.contains("garbage"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Even a well-formed-looking numeric surplus field is an error.
        assert!(read_trace("0 S 128 7\n".as_bytes()).is_err());
    }
}
