//! Trace-level summary statistics (pre-simulation).

use crate::record::{AccessKind, Trace};
use serde::{Deserialize, Serialize};

/// Summary of a trace's static properties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Memory accesses in the trace.
    pub accesses: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Total instructions (accesses + gaps).
    pub instructions: u64,
    /// Distinct cache lines touched.
    pub unique_lines: u64,
    /// Accesses whose preceding gap is at least a window (128): episodes
    /// that start a fresh window span.
    pub window_breaks: u64,
}

impl TraceSummary {
    /// Computes the summary of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut s = TraceSummary {
            accesses: trace.len() as u64,
            instructions: trace.instructions(),
            unique_lines: trace.unique_lines(),
            ..TraceSummary::default()
        };
        for a in trace.iter() {
            match a.kind {
                AccessKind::Load => s.loads += 1,
                AccessKind::Store => s.stores += 1,
            }
            if a.gap >= 128 {
                s.window_breaks += 1;
            }
        }
        s
    }

    /// Memory accesses per 1000 instructions.
    pub fn accesses_per_kilo_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.accesses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Upper bound on the compulsory miss *fraction* if every unique line
    /// missed exactly once: `unique_lines / accesses`.
    pub fn unique_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.unique_lines as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Access;

    #[test]
    fn summary_counts_everything() {
        let t = Trace::from_accesses(vec![
            Access::load(1, 200),
            Access::load(2, 2),
            Access::store(1, 130),
        ]);
        let s = TraceSummary::of(&t);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.unique_lines, 2);
        assert_eq!(s.window_breaks, 2);
        assert_eq!(s.instructions, 201 + 3 + 131);
    }

    #[test]
    fn rates_handle_empty() {
        let s = TraceSummary::of(&Trace::new());
        assert_eq!(s.accesses_per_kilo_inst(), 0.0);
        assert_eq!(s.unique_fraction(), 0.0);
    }
}
