#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property-based tests for workload generation.

use mlpsim_trace::gen::activity::{Activity, ISOLATING_GAP};
use mlpsim_trace::gen::region::{Order, Region};
use mlpsim_trace::gen::schedule::Schedule;
use mlpsim_trace::spec::SpecBench;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Region walks never leave their address range (except Fresh, which
    /// never repeats).
    #[test]
    fn region_walk_bounds(base in 0u64..1_000_000, lines in 1u64..10_000, steps in 1usize..2000, seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for order in [Order::Sequential, Order::Strided { stride: 7 }, Order::Random] {
            let mut r = Region::new(base, lines, order);
            for _ in 0..steps {
                let line = r.next_line(&mut rng);
                prop_assert!((base..base + lines).contains(&line));
            }
        }
        let mut fresh = Region::new(base, lines, Order::Fresh);
        let walked = fresh.take_lines(steps, &mut rng);
        let mut dedup = walked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), steps, "fresh walks never repeat");
    }

    /// A schedule always emits at least the requested access count, never
    /// overshoots by more than one episode, and is seed-deterministic.
    #[test]
    fn schedule_length_contract(accesses in 1usize..5000, seed in 0u64..50) {
        let mk = || Schedule::single(vec![
            (Activity::Burst { region: Region::new(0, 100, Order::Sequential), width: 8, spacing: ISOLATING_GAP }, 2),
            (Activity::Isolated { region: Region::new(1000, 50, Order::Random) }, 1),
            (Activity::Hot { region: Region::new(2000, 16, Order::Sequential), run: 10, gap: 1, store_pct: 30 }, 1),
        ]);
        let t = mk().generate(accesses, seed);
        prop_assert!(t.len() >= accesses);
        prop_assert!(t.len() < accesses + 16, "no episode exceeds 16 accesses here");
        prop_assert_eq!(mk().generate(accesses, seed), t);
    }

    /// Every benchmark generator keeps the isolated/parallel vocabulary
    /// honest: bursts internally tight, episodes separated.
    #[test]
    fn episode_gap_structure(seed in 0u64..20) {
        let t = SpecBench::Sixtrack.generate(2_000, seed);
        // In sixtrack, every access is either an episode opener (gap >=
        // window) or tightly packed inside a burst/run.
        for a in t.iter() {
            prop_assert!(a.gap >= 128 || a.gap <= 16, "gap {}", a.gap);
        }
    }
}
