#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property-based tests for the analysis utilities.

use mlpsim_analysis::delta::DeltaTracker;
use mlpsim_analysis::ephist::{EpisodeHistogram, EPISODE_BUCKETS};
use mlpsim_analysis::hist::CostHistogram;
use mlpsim_analysis::sampling::{choose, p_best};
use mlpsim_analysis::table::Table;
use proptest::prelude::*;

proptest! {
    /// Histogram percentages always sum to 100 (when non-empty) and the
    /// mean lies within the observed range.
    #[test]
    fn histogram_identities(costs in prop::collection::vec(0.0f64..2000.0, 1..500)) {
        let mut h = CostHistogram::new();
        for &c in &costs {
            h.record(c);
        }
        let sum: f64 = h.percents().iter().sum();
        prop_assert!((sum - 100.0).abs() < 1e-9);
        let lo = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(h.mean() >= lo - 1e-9 && h.mean() <= hi + 1e-9);
        prop_assert_eq!(h.count(), costs.len() as u64);
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a in prop::collection::vec(0.0f64..800.0, 0..200),
        b in prop::collection::vec(0.0f64..800.0, 0..200),
    ) {
        let mut ha = CostHistogram::new();
        let mut hb = CostHistogram::new();
        let mut hall = CostHistogram::new();
        for &c in &a { ha.record(c); hall.record(c); }
        for &c in &b { hb.record(c); hall.record(c); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        for bin in 0..8 {
            prop_assert_eq!(ha.bin(bin), hall.bin(bin));
        }
        // Sums differ only by floating-point association order.
        prop_assert!((ha.mean() - hall.mean()).abs() < 1e-9);
    }

    /// Delta bookkeeping: n misses to one line yield exactly n-1 deltas,
    /// and the three Table-1 buckets partition them.
    #[test]
    fn delta_partition(costs in prop::collection::vec(0.0f64..600.0, 1..100)) {
        let mut t = DeltaTracker::new();
        for &c in &costs {
            t.observe(7, c);
        }
        let s = t.stats();
        prop_assert_eq!(s.count(), costs.len() as u64 - 1);
        if s.count() > 0 {
            let total = s.pct_lt60() + s.pct_lt120() + s.pct_ge120();
            prop_assert!((total - 100.0).abs() < 1e-9);
        }
    }

    /// P(Best) is a probability, equals p at k = 1, and is monotone in p.
    #[test]
    fn p_best_properties(k in 1u32..64, p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p_best(k, lo)));
        prop_assert!(p_best(k, lo) <= p_best(k, hi) + 1e-12, "monotone in p");
        prop_assert!((p_best(1, lo) - lo).abs() < 1e-12);
    }

    /// Pascal's identity holds for the binomial helper.
    #[test]
    fn pascal_identity(k in 2u32..50, i in 1u32..49) {
        prop_assume!(i < k);
        let lhs = choose(k, i);
        let rhs = choose(k - 1, i - 1) + choose(k - 1, i);
        prop_assert!((lhs - rhs).abs() / lhs < 1e-12);
    }

    /// Table rendering never loses rows and keeps lines aligned in width.
    #[test]
    fn table_renders_all_rows(cells in prop::collection::vec("[a-z0-9.]{1,12}", 1..40)) {
        let mut t = Table::with_headers(&["col"]);
        for c in &cells {
            t.row(vec![c.clone()]);
        }
        let rendered = t.render();
        prop_assert_eq!(rendered.lines().count(), cells.len() + 2);
    }

    /// Episode-histogram quantiles are monotone in q and bracketed by the
    /// occupied buckets' bounds.
    #[test]
    fn ephist_quantiles_are_monotone_and_bracketed(
        lens in prop::collection::vec(0u64..200_000, 1..300),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut h = EpisodeHistogram::new();
        for &l in &lens {
            h.record(l);
        }
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo_q) <= h.quantile(hi_q) + 1e-9);

        let min_b = (0..EPISODE_BUCKETS).find(|&b| h.bucket(b) > 0).unwrap();
        let max_b = h.max_bucket().unwrap();
        let floor = EpisodeHistogram::bucket_lower(min_b) as f64;
        let ceil = EpisodeHistogram::bucket_upper(max_b)
            .unwrap_or(EpisodeHistogram::bucket_lower(max_b)) as f64;
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(
                (floor..=ceil).contains(&v),
                "quantile({}) = {} outside [{}, {}]", q, v, floor, ceil
            );
        }
    }

    /// Bucket counts always sum to count() and cumulative counts are
    /// what a Prometheus `_bucket` rendering would publish: nondecreasing,
    /// ending exactly at count().
    #[test]
    fn ephist_cumulative_counts_close(lens in prop::collection::vec(0u64..100_000, 0..200)) {
        let mut h = EpisodeHistogram::new();
        for &l in &lens {
            h.record(l);
        }
        let mut cum = 0u64;
        let mut last = 0u64;
        for b in 0..EPISODE_BUCKETS {
            cum += h.bucket(b);
            prop_assert!(cum >= last);
            last = cum;
        }
        prop_assert_eq!(cum, h.count());
        prop_assert_eq!(h.count(), lens.len() as u64);
    }
}
