//! Minimal plain-text table rendering for experiment output.

/// A fixed-layout text table: headers plus rows, rendered with columns
/// padded to their widest cell.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::table::Table;
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["mcf".into(), "0.42".into()]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("mcf"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_headers(headers: &[&str]) -> Self {
        Table::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Replaces the most recent row (no-op on an empty table) — for
    /// incremental builders that refine a provisional row once final
    /// numbers arrive.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn replace_last(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        if let Some(last) = self.rows.last_mut() {
            *last = cells;
        }
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%eE".contains(ch))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_headers(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
        // Numeric column right-aligned: "22.5" ends both data lines' width.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_still_renders_header() {
        let t = Table::with_headers(&["x"]);
        assert!(t.is_empty());
        assert!(t.render().contains('x'));
    }
}
