//! `mlp-cost` distribution histograms (paper Figures 2 and 5).
//!
//! "The graph is plotted with 60-cycle intervals, with the leftmost bar
//! representing the percentage of misses that had a value of mlp-cost < 60
//! cycles. The rightmost bar represents the percentage of all misses that
//! had an mlp-cost of more than 420 cycles."

use serde::{Deserialize, Serialize};

/// Number of histogram bins (matches the 3-bit `cost_q` buckets).
pub const BINS: usize = 8;

/// Width of each bin in cycles.
pub const BIN_CYCLES: f64 = 60.0;

/// A histogram of MLP-based miss costs with the paper's 60-cycle binning.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::hist::CostHistogram;
/// let mut h = CostHistogram::new();
/// h.record(444.0); // an isolated miss → bin 7
/// h.record(55.0);  // highly parallel → bin 0
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.percent(7), 50.0);
/// assert_eq!(h.mean(), 249.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostHistogram {
    bins: [u64; BINS],
    sum: f64,
    count: u64,
}

impl CostHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        CostHistogram::default()
    }

    /// Records one miss with the given MLP-based cost in cycles.
    pub fn record(&mut self, cost_cycles: f64) {
        let bin = if cost_cycles <= 0.0 {
            0
        } else {
            ((cost_cycles / BIN_CYCLES) as usize).min(BINS - 1)
        };
        self.bins[bin] += 1;
        self.sum += cost_cycles.max(0.0);
        self.count += 1;
    }

    /// Raw count in a bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= 8`.
    pub fn bin(&self, bin: usize) -> u64 {
        self.bins[bin]
    }

    /// Total misses recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Percentage (0–100) of misses falling in `bin`.
    pub fn percent(&self, bin: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[bin] as f64 * 100.0 / self.count as f64
        }
    }

    /// All eight percentages, left (cheap) to right (isolated).
    pub fn percents(&self) -> [f64; BINS] {
        std::array::from_fn(|i| self.percent(i))
    }

    /// Mean cost in cycles (the "dot on the horizontal axis" of Fig. 2).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fraction of misses in the rightmost (isolated-dominated) bin.
    pub fn isolated_fraction(&self) -> f64 {
        self.percent(BINS - 1) / 100.0
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &CostHistogram) {
        for i in 0..BINS {
            self.bins[i] += other.bins[i];
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Renders a compact one-line ASCII view: `12% 30% … | mean 187`.
    pub fn render_row(&self) -> String {
        let cells: Vec<String> = self.percents().iter().map(|p| format!("{p:5.1}")).collect();
        format!("{} | mean {:6.1}", cells.join(" "), self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_matches_figure2_axis() {
        let mut h = CostHistogram::new();
        h.record(0.0); // bin 0
        h.record(59.9); // bin 0
        h.record(60.0); // bin 1
        h.record(419.9); // bin 6
        h.record(420.0); // bin 7
        h.record(4000.0); // bin 7
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(6), 1);
        assert_eq!(h.bin(7), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn percents_sum_to_100() {
        let mut h = CostHistogram::new();
        for i in 0..1000 {
            h.record(f64::from(i % 500));
        }
        let total: f64 = h.percents().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = CostHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percent(0), 0.0);
        assert_eq!(h.isolated_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_preserves_mean() {
        let mut a = CostHistogram::new();
        let mut b = CostHistogram::new();
        a.record(100.0);
        b.record(300.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 200.0);
    }

    #[test]
    fn negative_costs_clamp_to_zero_bin() {
        let mut h = CostHistogram::new();
        h.record(-5.0);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.mean(), 0.0);
    }
}
