//! Log-bucketed stall-episode-length histogram.
//!
//! Full-window stall episodes span three orders of magnitude: a few
//! cycles of bus staggering between overlapped misses, the paper's
//! 444-cycle isolated round trip, and multi-thousand-cycle bank-conflict
//! pileups. Linear 60-cycle bins (the [`crate::hist::CostHistogram`]
//! axis) flatten that range, so episode *lengths* get power-of-two
//! buckets instead: `[1,2) [2,4) … [2^(B-2), ∞)`.

use serde::{Deserialize, Serialize};

/// Number of buckets: lengths `1..2^14` resolved, longer in the last.
pub const EPISODE_BUCKETS: usize = 16;

/// A histogram of stall-episode lengths with power-of-two bucketing.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::ephist::EpisodeHistogram;
/// let mut h = EpisodeHistogram::new();
/// h.record(1);   // bucket 0: [1,2)
/// h.record(444); // bucket 8: [256,512)
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bucket(8), 1);
/// assert_eq!(h.mean(), 222.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeHistogram {
    buckets: [u64; EPISODE_BUCKETS],
    total_cycles: u64,
    count: u64,
}

/// The bucket a length falls in: `floor(log2(len))`, clamped.
fn bucket_of(len: u64) -> usize {
    if len == 0 {
        return 0;
    }
    (63 - len.leading_zeros() as usize).min(EPISODE_BUCKETS - 1)
}

impl EpisodeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        EpisodeHistogram::default()
    }

    /// Records one episode of `len` cycles. Zero-length episodes are
    /// counted in the first bucket (they cannot occur in a well-formed
    /// span stream, but a histogram must not panic on its input).
    pub fn record(&mut self, len: u64) {
        self.buckets[bucket_of(len)] += 1;
        self.total_cycles += len;
        self.count += 1;
    }

    /// Raw count in a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= EPISODE_BUCKETS`.
    pub fn bucket(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// Episodes recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total cycles across all episodes.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Mean episode length in cycles.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Human label for a bucket: `"[256,512)"`, `"[32768,inf)"` for the
    /// last.
    pub fn bucket_label(bucket: usize) -> String {
        let lo = 1u64 << bucket;
        if bucket + 1 >= EPISODE_BUCKETS {
            format!("[{lo},inf)")
        } else {
            format!("[{lo},{})", 1u64 << (bucket + 1))
        }
    }

    /// Index of the highest non-empty bucket, if any episode was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        (0..EPISODE_BUCKETS).rev().find(|&b| self.buckets[b] > 0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &EpisodeHistogram) {
        for i in 0..EPISODE_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.total_cycles += other.total_cycles;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_bucketing() {
        let mut h = EpisodeHistogram::new();
        h.record(1); // [1,2)
        h.record(2); // [2,4)
        h.record(3); // [2,4)
        h.record(4); // [4,8)
        h.record(444); // [256,512)
        h.record(1 << 20); // clamped to the last bucket
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(8), 1);
        assert_eq!(h.bucket(EPISODE_BUCKETS - 1), 1);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_bucket(), Some(EPISODE_BUCKETS - 1));
    }

    #[test]
    fn zero_length_is_tolerated() {
        let mut h = EpisodeHistogram::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn labels_cover_the_axis() {
        assert_eq!(EpisodeHistogram::bucket_label(0), "[1,2)");
        assert_eq!(EpisodeHistogram::bucket_label(8), "[256,512)");
        assert_eq!(
            EpisodeHistogram::bucket_label(EPISODE_BUCKETS - 1),
            "[32768,inf)"
        );
    }

    #[test]
    fn merge_adds_counts_and_cycles() {
        let mut a = EpisodeHistogram::new();
        let mut b = EpisodeHistogram::new();
        a.record(100);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.total_cycles(), 400);
        assert_eq!(a.mean(), 200.0);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = EpisodeHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_bucket(), None);
    }
}
