//! Log-bucketed stall-episode-length histogram.
//!
//! Full-window stall episodes span three orders of magnitude: a few
//! cycles of bus staggering between overlapped misses, the paper's
//! 444-cycle isolated round trip, and multi-thousand-cycle bank-conflict
//! pileups. Linear 60-cycle bins (the [`crate::hist::CostHistogram`]
//! axis) flatten that range, so episode *lengths* get power-of-two
//! buckets instead: `[1,2) [2,4) … [2^(B-2), ∞)`.

use serde::{Deserialize, Serialize};

/// Number of buckets: lengths `1..2^14` resolved, longer in the last.
pub const EPISODE_BUCKETS: usize = 16;

/// A histogram of stall-episode lengths with power-of-two bucketing.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::ephist::EpisodeHistogram;
/// let mut h = EpisodeHistogram::new();
/// h.record(1);   // bucket 0: [1,2)
/// h.record(444); // bucket 8: [256,512)
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bucket(8), 1);
/// assert_eq!(h.mean(), 222.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeHistogram {
    buckets: [u64; EPISODE_BUCKETS],
    total_cycles: u64,
    count: u64,
}

/// The bucket a length falls in: `floor(log2(len))`, clamped.
fn bucket_of(len: u64) -> usize {
    if len == 0 {
        return 0;
    }
    (63 - len.leading_zeros() as usize).min(EPISODE_BUCKETS - 1)
}

impl EpisodeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        EpisodeHistogram::default()
    }

    /// Records one episode of `len` cycles. Zero-length episodes are
    /// counted in the first bucket (they cannot occur in a well-formed
    /// span stream, but a histogram must not panic on its input).
    pub fn record(&mut self, len: u64) {
        self.buckets[bucket_of(len)] += 1;
        self.total_cycles = self.total_cycles.saturating_add(len);
        self.count += 1;
    }

    /// Raw count in a bucket; zero for `bucket >= EPISODE_BUCKETS`
    /// (an out-of-range bucket holds nothing, and this is rendered on
    /// a server path that must not panic).
    pub fn bucket(&self, bucket: usize) -> u64 {
        self.buckets.get(bucket).copied().unwrap_or(0)
    }

    /// Episodes recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total cycles across all episodes.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Mean episode length in cycles.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Human label for a bucket: `"[256,512)"`, `"[32768,inf)"` for the
    /// last.
    pub fn bucket_label(bucket: usize) -> String {
        let lo = 1u64 << bucket;
        if bucket + 1 >= EPISODE_BUCKETS {
            format!("[{lo},inf)")
        } else {
            format!("[{lo},{})", 1u64 << (bucket + 1))
        }
    }

    /// Index of the highest non-empty bucket, if any episode was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        (0..EPISODE_BUCKETS).rev().find(|&b| self.buckets[b] > 0)
    }

    /// Inclusive lower bound of a bucket's range (`2^bucket`; the first
    /// bucket also absorbs zero-length episodes).
    pub fn bucket_lower(bucket: usize) -> u64 {
        1u64 << bucket
    }

    /// Exclusive upper bound of a bucket's range, or `None` for the
    /// unbounded last bucket. This is the `le` boundary a Prometheus
    /// `_bucket` series uses (values strictly below the bound land at or
    /// below the bucket).
    pub fn bucket_upper(bucket: usize) -> Option<u64> {
        if bucket + 1 >= EPISODE_BUCKETS {
            None
        } else {
            Some(1u64 << (bucket + 1))
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`, clamped) of the recorded
    /// lengths, interpolated linearly within the target bucket.
    ///
    /// The histogram only keeps bucket counts, so this is a bucket-grade
    /// estimate: exact at bucket boundaries, linear in between, and
    /// clamped to the lower bound `32768` inside the unbounded last
    /// bucket. An empty histogram reports `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for b in 0..EPISODE_BUCKETS {
            let n = self.buckets[b];
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if rank <= next as f64 {
                let lo = Self::bucket_lower(b) as f64;
                let Some(hi) = Self::bucket_upper(b) else {
                    return lo;
                };
                let frac = ((rank - cum as f64) / n as f64).clamp(0.0, 1.0);
                return lo + (hi as f64 - lo) * frac;
            }
            cum = next;
        }
        Self::bucket_lower(EPISODE_BUCKETS - 1) as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &EpisodeHistogram) {
        for i in 0..EPISODE_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.total_cycles += other.total_cycles;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_bucketing() {
        let mut h = EpisodeHistogram::new();
        h.record(1); // [1,2)
        h.record(2); // [2,4)
        h.record(3); // [2,4)
        h.record(4); // [4,8)
        h.record(444); // [256,512)
        h.record(1 << 20); // clamped to the last bucket
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(8), 1);
        assert_eq!(h.bucket(EPISODE_BUCKETS - 1), 1);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_bucket(), Some(EPISODE_BUCKETS - 1));
    }

    #[test]
    fn zero_length_is_tolerated() {
        let mut h = EpisodeHistogram::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn labels_cover_the_axis() {
        assert_eq!(EpisodeHistogram::bucket_label(0), "[1,2)");
        assert_eq!(EpisodeHistogram::bucket_label(8), "[256,512)");
        assert_eq!(
            EpisodeHistogram::bucket_label(EPISODE_BUCKETS - 1),
            "[32768,inf)"
        );
    }

    #[test]
    fn merge_adds_counts_and_cycles() {
        let mut a = EpisodeHistogram::new();
        let mut b = EpisodeHistogram::new();
        a.record(100);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.total_cycles(), 400);
        assert_eq!(a.mean(), 200.0);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = EpisodeHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_bucket(), None);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn bucket_bounds_match_the_labels() {
        assert_eq!(EpisodeHistogram::bucket_lower(0), 1);
        assert_eq!(EpisodeHistogram::bucket_upper(0), Some(2));
        assert_eq!(EpisodeHistogram::bucket_lower(8), 256);
        assert_eq!(EpisodeHistogram::bucket_upper(8), Some(512));
        assert_eq!(EpisodeHistogram::bucket_lower(EPISODE_BUCKETS - 1), 32768);
        assert_eq!(EpisodeHistogram::bucket_upper(EPISODE_BUCKETS - 1), None);
        // Exact powers of two land in the bucket whose lower bound they
        // are — the bound is inclusive below, exclusive above.
        for b in 0..EPISODE_BUCKETS - 1 {
            let mut h = EpisodeHistogram::new();
            h.record(EpisodeHistogram::bucket_lower(b));
            assert_eq!(h.bucket(b), 1, "2^{b} must land in bucket {b}");
            let mut h = EpisodeHistogram::new();
            h.record(EpisodeHistogram::bucket_lower(b + 1) - 1);
            assert_eq!(h.bucket(b), 1, "2^{}-1 must land in bucket {b}", b + 1);
        }
    }

    #[test]
    fn single_sample_quantiles_stay_in_its_bucket() {
        let mut h = EpisodeHistogram::new();
        h.record(444); // bucket 8: [256,512)
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(
                (256.0..=512.0).contains(&v),
                "quantile({q}) = {v} escaped the only occupied bucket"
            );
        }
        assert_eq!(h.quantile(1.0), 512.0);
    }

    #[test]
    fn quantile_interpolates_across_buckets() {
        let mut h = EpisodeHistogram::new();
        for _ in 0..50 {
            h.record(1); // bucket 0
        }
        for _ in 0..50 {
            h.record(1000); // bucket 9: [512,1024)
        }
        // The median boundary sits exactly between the two buckets.
        assert!(h.quantile(0.25) < 2.0);
        assert!(h.quantile(0.75) >= 512.0);
        // q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn top_bucket_saturates_quantiles_at_its_lower_bound() {
        let mut h = EpisodeHistogram::new();
        h.record(1 << 20);
        h.record(u64::MAX);
        assert_eq!(h.bucket(EPISODE_BUCKETS - 1), 2);
        // The unbounded bucket has no upper edge to interpolate toward:
        // every quantile in it reports the conservative lower bound.
        assert_eq!(h.quantile(0.5), 32768.0);
        assert_eq!(h.quantile(1.0), 32768.0);
    }
}
