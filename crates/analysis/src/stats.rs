//! Simple summary statistics for multi-seed robustness experiments.

/// Mean, standard deviation, and a normal-approximation 95% confidence
/// half-width over a sample of measurements.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::stats::Summary;
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean, 5.0);
/// assert!((s.sd - 2.138).abs() < 0.001); // sample standard deviation
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub sd: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Computes the summary of a sample (all-zero for an empty slice).
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = if n < 2 {
            0.0
        } else {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary { mean, sd, n }
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// (`1.96 · sd / √n`; 0 for n < 2).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sd / (self.n as f64).sqrt()
        }
    }

    /// Renders as `mean ± ci95`.
    pub fn render(&self) -> String {
        format!("{:+.1} ± {:.1}", self.mean, self.ci95())
    }
}

/// The `p`-th percentile (0–100) of a sample by linear interpolation
/// between closest ranks (the same convention as numpy's default).
/// Returns 0 for an empty slice; `p` is clamped to [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_between_ranks() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
        // Unsorted input is handled; empty input is 0.
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 50.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 8);
        assert!((s.sd - 2.138_089_935_299_395).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let one = Summary::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.sd, 0.0);
        assert_eq!(one.ci95(), 0.0);
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::of(&[1.0; 10]);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn render_shows_mean_and_interval() {
        let s = Summary::of(&[10.0, 12.0, 14.0]);
        assert!(s.render().starts_with("+12.0"));
        assert!(s.render().contains('±'));
    }
}
