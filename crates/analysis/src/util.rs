//! Small numeric helpers shared by the experiment harness.

/// Percentage improvement of `new` over `base`: `(new/base − 1) × 100`.
///
/// Positive means `new` is larger. This is the metric of the paper's
/// Figures 4, 9 and 10 ("(%) IPC improvement over baseline (LRU)") when
/// applied to IPC, and of the Fig. 5 insets when applied to miss counts.
///
/// # Panics
///
/// Panics if `base` is not strictly positive.
pub fn percent_improvement(new: f64, base: f64) -> f64 {
    assert!(base > 0.0, "baseline must be positive");
    (new / base - 1.0) * 100.0
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice of positive values (0 for an empty slice).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_signs() {
        assert_eq!(percent_improvement(1.1, 1.0), 10.000000000000009);
        assert!((percent_improvement(0.9, 1.0) + 10.0).abs() < 1e-9);
        assert_eq!(percent_improvement(2.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_baseline_panics() {
        let _ = percent_improvement(1.0, 0.0);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
