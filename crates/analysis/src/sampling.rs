//! The analytical leader-set sampling model (paper §6.3, Eqs. 3–5,
//! Fig. 8).
//!
//! With `k` randomly chosen leader sets and a fraction `p ≥ 0.5` of all
//! sets favoring the globally best policy, the probability that a
//! majority-vote of the leaders picks the best policy is
//!
//! * odd `k`:  `P = Σ_{i=0}^{(k-1)/2} C(k,i) p^(k-i) (1-p)^i`
//! * even `k`: the same sum to `k/2 - 1`, plus half the probability of an
//!   exact tie: `(1/2) C(k, k/2) p^(k/2) (1-p)^(k/2)`.
//!
//! (The paper's summation bounds `(k+1)/2` and `k/2 − 1 + …` express the
//! same majority event; we implement the standard binomial tail.)

/// Binomial coefficient `C(k, i)` as `f64` (exact for the `k ≤ 64` range
/// the experiments use).
///
/// # Panics
///
/// Panics if `i > k`.
pub fn choose(k: u32, i: u32) -> f64 {
    assert!(i <= k, "C(k, i) requires i <= k");
    let i = i.min(k - i);
    let mut acc = 1.0f64;
    for j in 0..i {
        acc = acc * f64::from(k - j) / f64::from(j + 1);
    }
    acc
}

/// Probability that a `k`-leader-set sample selects the globally best
/// policy, given that a fraction `p` of all sets favor it (Eqs. 4–5).
///
/// # Panics
///
/// Panics if `k` is zero or `p` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::sampling::p_best;
/// // With one leader set the answer is just p (Eq. "P(Best) = p").
/// assert_eq!(p_best(1, 0.7), 0.7);
/// // Three leaders: p³ + 3p²(1−p)  (Eq. 3).
/// let p: f64 = 0.7;
/// assert!((p_best(3, p) - (p.powi(3) + 3.0 * p.powi(2) * (1.0 - p))).abs() < 1e-12);
/// ```
pub fn p_best(k: u32, p: f64) -> f64 {
    assert!(k > 0, "at least one leader set is required");
    assert!((0.0..=1.0).contains(&p), "p is a probability");
    let q = 1.0 - p;
    // Majority means more than k/2 leaders favor the best policy, i.e. the
    // number of *dissenting* leaders i satisfies i < k/2; an exact tie
    // (even k) selects the best policy with probability 1/2.
    let mut total = 0.0;
    let half = k / 2;
    if k % 2 == 1 {
        for i in 0..=half {
            total += choose(k, i) * p.powi((k - i) as i32) * q.powi(i as i32);
        }
    } else {
        for i in 0..half {
            total += choose(k, i) * p.powi((k - i) as i32) * q.powi(i as i32);
        }
        total += 0.5 * choose(k, half) * p.powi(half as i32) * q.powi(half as i32);
    }
    total
}

/// The `(k, P(Best))` series for Fig. 8: `k` from 1 to `max_k` at a given
/// `p`.
pub fn p_best_series(max_k: u32, p: f64) -> Vec<(u32, f64)> {
    (1..=max_k).map(|k| (k, p_best(k, p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_matches_pascal() {
        assert_eq!(choose(5, 0), 1.0);
        assert_eq!(choose(5, 5), 1.0);
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(32, 16), 601080390.0);
    }

    #[test]
    fn one_leader_is_just_p() {
        for p in [0.5, 0.6, 0.74, 0.99] {
            assert!((p_best(1, p) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn three_leaders_match_equation_3() {
        for p in [0.5, 0.6, 0.7, 0.8, 0.9] {
            let expect = p * p * p + 3.0 * p * p * (1.0 - p);
            assert!((p_best(3, p) - expect).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn p_half_gives_a_coin_flip() {
        // When the sets are evenly split, sampling can do no better than
        // chance, for any k.
        for k in [1u32, 2, 3, 8, 16, 32] {
            assert!((p_best(k, 0.5) - 0.5).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn p_best_is_monotonic_in_k_for_odd_k() {
        // More (odd) leaders never hurt when p > 0.5.
        for p in [0.6, 0.74, 0.9] {
            let mut prev = 0.0;
            for k in (1..=31).step_by(2) {
                let v = p_best(k, p);
                assert!(v >= prev - 1e-12, "k={k}, p={p}");
                prev = v;
            }
        }
    }

    #[test]
    fn papers_conclusion_16_to_32_leaders_suffice() {
        // "the average value of p for all benchmarks is between 0.74 and
        // 0.99. … a small number of leader sets (16-32) is sufficient to
        // select the globally best-performing policy with a high (> 95%)
        // probability."
        assert!(p_best(16, 0.74) > 0.95);
        assert!(p_best(32, 0.74) > 0.99);
        assert!(p_best(16, 0.99) > 0.999);
    }

    #[test]
    fn certain_p_gives_certain_selection() {
        for k in [1u32, 2, 7, 32] {
            assert!((p_best(k, 1.0) - 1.0).abs() < 1e-12);
            assert!(p_best(k, 0.0) < 1e-12);
        }
    }

    #[test]
    fn series_covers_requested_range() {
        let s = p_best_series(8, 0.8);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0].0, 1);
        assert_eq!(s[7].0, 8);
    }
}
