//! Predictability of `mlp-cost`: the *delta* analysis of Table 1.
//!
//! "We call the absolute difference in the value of mlp-cost for successive
//! misses to a cache block as delta. … A small delta value means that
//! mlp-cost does not significantly change between successive misses to a
//! given cache block" (§3.3). Table 1 reports the fraction of deltas below
//! 60 cycles, between 60 and 119 cycles, and at or above 120 cycles, plus
//! the average delta.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregated delta statistics (one row of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaStats {
    /// Deltas in `[0, 60)` cycles.
    pub lt60: u64,
    /// Deltas in `[60, 120)` cycles.
    pub lt120: u64,
    /// Deltas `>= 120` cycles.
    pub ge120: u64,
    /// Sum of all deltas (for the average).
    pub sum: f64,
}

impl DeltaStats {
    /// Total deltas observed.
    pub fn count(&self) -> u64 {
        self.lt60 + self.lt120 + self.ge120
    }

    /// Percentage of deltas below 60 cycles (Table 1, row 1).
    pub fn pct_lt60(&self) -> f64 {
        self.pct(self.lt60)
    }

    /// Percentage of deltas in `[60, 120)` (Table 1, row 2).
    pub fn pct_lt120(&self) -> f64 {
        self.pct(self.lt120)
    }

    /// Percentage of deltas at or above 120 cycles (Table 1, row 3).
    pub fn pct_ge120(&self) -> f64 {
        self.pct(self.ge120)
    }

    /// Average delta in cycles (Table 1, row 4).
    pub fn average(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum / self.count() as f64
        }
    }

    fn pct(&self, n: u64) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            n as f64 * 100.0 / self.count() as f64
        }
    }

    /// Records one delta value.
    pub fn record(&mut self, delta: f64) {
        let d = delta.abs();
        if d < 60.0 {
            self.lt60 += 1;
        } else if d < 120.0 {
            self.lt120 += 1;
        } else {
            self.ge120 += 1;
        }
        self.sum += d;
    }
}

/// Tracks the last `mlp-cost` seen per cache line and accumulates deltas
/// between successive misses to the same line.
///
/// Lines are identified by their raw [`u64`] line address so this crate
/// stays dependency-free.
///
/// # Example
///
/// ```
/// use mlpsim_analysis::delta::DeltaTracker;
/// let mut t = DeltaTracker::new();
/// // The paper's worked example: block A misses with costs
/// // {444, 110, 220, 220} → deltas 334, 110, 0.
/// for c in [444.0, 110.0, 220.0, 220.0] {
///     t.observe(0xA, c);
/// }
/// assert_eq!(t.stats().count(), 3);
/// assert_eq!(t.stats().average(), 148.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeltaTracker {
    last_cost: HashMap<u64, f64>,
    stats: DeltaStats,
}

impl DeltaTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// Observes a serviced miss to `line` with the given cost; the first
    /// miss to a line produces no delta.
    pub fn observe(&mut self, line: u64, cost_cycles: f64) {
        if let Some(prev) = self.last_cost.insert(line, cost_cycles) {
            self.stats.record(cost_cycles - prev);
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Number of distinct lines seen.
    pub fn lines_seen(&self) -> usize {
        self.last_cost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_worked_example() {
        // §3.3: costs {444, 110, 220, 220} → deltas 334, 110, 0.
        let mut t = DeltaTracker::new();
        for c in [444.0, 110.0, 220.0, 220.0] {
            t.observe(1, c);
        }
        let s = t.stats();
        assert_eq!(s.count(), 3);
        assert_eq!(s.lt60, 1); // the 0
        assert_eq!(s.lt120, 1); // the 110
        assert_eq!(s.ge120, 1); // the 334
        assert!((s.average() - (334.0 + 110.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lines_are_independent() {
        let mut t = DeltaTracker::new();
        t.observe(1, 100.0);
        t.observe(2, 400.0);
        assert_eq!(t.stats().count(), 0, "first misses make no deltas");
        t.observe(1, 100.0);
        assert_eq!(t.stats().count(), 1);
        assert_eq!(t.stats().lt60, 1);
        assert_eq!(t.lines_seen(), 2);
    }

    #[test]
    fn percentages_partition() {
        let mut s = DeltaStats::default();
        for d in [0.0, 59.9, 60.0, 119.9, 120.0, 500.0] {
            s.record(d);
        }
        assert_eq!(s.lt60, 2);
        assert_eq!(s.lt120, 2);
        assert_eq!(s.ge120, 2);
        let total = s.pct_lt60() + s.pct_lt120() + s.pct_ge120();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn negative_deltas_use_absolute_value() {
        let mut s = DeltaStats::default();
        s.record(-200.0);
        assert_eq!(s.ge120, 1);
        assert_eq!(s.average(), 200.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DeltaStats::default();
        assert_eq!(s.average(), 0.0);
        assert_eq!(s.pct_lt60(), 0.0);
    }
}
