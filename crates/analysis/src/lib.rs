#![warn(missing_docs)]

//! Analysis utilities for the MLP-aware replacement study.
//!
//! * [`hist`] — the 60-cycle-binned `mlp-cost` histograms of the paper's
//!   Figures 2 and 5,
//! * [`delta`] — the successive-miss cost-delta predictability analysis of
//!   Table 1,
//! * [`sampling`] — the analytical leader-set sampling model of §6.3
//!   (Eqs. 3–5, Fig. 8),
//! * [`stats`] — mean/sd/CI summaries for multi-seed robustness runs,
//! * [`table`] — plain-text table rendering for the experiment binaries,
//! * [`util`] — small numeric helpers (percent improvement, means).

pub mod delta;
pub mod ephist;
pub mod hist;
pub mod sampling;
pub mod stats;
pub mod table;
pub mod util;

pub use delta::{DeltaStats, DeltaTracker};
pub use ephist::EpisodeHistogram;
pub use hist::CostHistogram;
pub use sampling::p_best;
pub use table::Table;
