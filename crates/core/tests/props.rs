#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property-based tests for the MLP-aware replacement mechanisms.

use mlpsim_cache::addr::LineAddr;
use mlpsim_cache::meta::COST_Q_MAX;
use mlpsim_core::ccl::{update_mlp_cost_per_cycle, AdderMode, Ccl};
use mlpsim_core::leader::{LeaderSets, SelectionPolicy};
use mlpsim_core::psel::Psel;
use mlpsim_core::quant::{bucket_range, quantize};
use mlpsim_mem::Mshr;
use proptest::prelude::*;

proptest! {
    /// Quantization is monotone, 3-bit, and consistent with its bucket
    /// ranges.
    #[test]
    fn quantize_is_monotone_and_in_range(a in 0.0f64..2000.0, b in 0.0f64..2000.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(quantize(lo) <= quantize(hi));
        let q = quantize(lo);
        prop_assert!(q <= COST_Q_MAX);
        let (rlo, rhi) = bucket_range(q);
        prop_assert!(rlo <= lo && lo < rhi);
    }

    /// The event-driven CCL equals the literal per-cycle Algorithm 1 for
    /// arbitrary interleavings of allocations, frees, and time.
    #[test]
    fn ccl_matches_per_cycle_reference(
        events in prop::collection::vec((0u8..3, 0u64..40, 1u64..200), 1..40)
    ) {
        let mut fast_mshr = Mshr::new(8);
        let mut slow_mshr = Mshr::new(8);
        let mut ccl = Ccl::new(AdderMode::PerEntry);
        let mut now = 0u64;
        let mut next_line = 0u64;
        for &(op, pick, dt) in &events {
            // Advance both models by dt cycles.
            ccl.advance(&mut fast_mshr, now + dt);
            update_mlp_cost_per_cycle(&mut slow_mshr, dt);
            now += dt;
            match op {
                0 if !fast_mshr.is_full() => {
                    let line = LineAddr(next_line);
                    next_line += 1;
                    let demand = pick % 4 != 0; // mix demand and writeback
                    fast_mshr.allocate(line, now, now + 444, demand).unwrap();
                    slow_mshr.allocate(line, now, now + 444, demand).unwrap();
                }
                1 if !fast_mshr.is_empty() => {
                    let ids: Vec<_> = fast_mshr.iter().map(|(id, _)| id).collect();
                    let id = ids[pick as usize % ids.len()];
                    let a = fast_mshr.free(id);
                    let b = slow_mshr.free(id);
                    prop_assert!((a.mlp_cost - b.mlp_cost).abs() < 1e-6,
                        "event-driven {} vs per-cycle {}", a.mlp_cost, b.mlp_cost);
                }
                _ => {}
            }
        }
        for ((_, a), (_, b)) in fast_mshr.iter().zip(slow_mshr.iter()) {
            prop_assert!((a.mlp_cost - b.mlp_cost).abs() < 1e-6);
        }
    }

    /// The event-driven CCL still matches the per-cycle reference when
    /// Algorithm 1's `N` divisor changes via promotions and demotions
    /// (prefetch merges, wrong-path resolution), not just alloc/free.
    /// Run with `--features invariants` this also asserts every increment
    /// is finite and non-negative and recounts the MSHR's demand slots.
    #[test]
    fn ccl_divisor_tracks_promotions(
        events in prop::collection::vec((0u8..4, 0u64..40, 1u64..200), 1..40)
    ) {
        let mut fast_mshr = Mshr::new(8);
        let mut slow_mshr = Mshr::new(8);
        let mut ccl = Ccl::new(AdderMode::PerEntry);
        let mut now = 0u64;
        let mut next_line = 0u64;
        for &(op, pick, dt) in &events {
            ccl.advance(&mut fast_mshr, now + dt);
            update_mlp_cost_per_cycle(&mut slow_mshr, dt);
            now += dt;
            let ids: Vec<_> = fast_mshr.iter().map(|(id, _)| id).collect();
            match op {
                0 if !fast_mshr.is_full() => {
                    let line = LineAddr(next_line);
                    next_line += 1;
                    let demand = pick % 3 != 0;
                    fast_mshr.allocate(line, now, now + 444, demand).unwrap();
                    slow_mshr.allocate(line, now, now + 444, demand).unwrap();
                }
                1 if !ids.is_empty() => {
                    let id = ids[pick as usize % ids.len()];
                    fast_mshr.promote_to_demand(id);
                    slow_mshr.promote_to_demand(id);
                }
                2 if !ids.is_empty() => {
                    let id = ids[pick as usize % ids.len()];
                    fast_mshr.demote_from_demand(id);
                    slow_mshr.demote_from_demand(id);
                }
                _ if !ids.is_empty() => {
                    let id = ids[pick as usize % ids.len()];
                    let a = fast_mshr.free(id);
                    let b = slow_mshr.free(id);
                    prop_assert!((a.mlp_cost - b.mlp_cost).abs() < 1e-6);
                }
                _ => {}
            }
            prop_assert_eq!(fast_mshr.demand_count(), slow_mshr.demand_count());
        }
        for ((_, a), (_, b)) in fast_mshr.iter().zip(slow_mshr.iter()) {
            prop_assert!((a.mlp_cost - b.mlp_cost).abs() < 1e-6);
        }
    }

    /// Shared adders never overshoot the ideal accumulation and lose less
    /// than one visit-stride worth of cost.
    #[test]
    fn shared_adders_bounded_below_ideal(n in 1usize..8, dt in 1u64..2000) {
        let build = |count: usize| {
            let mut m = Mshr::new(8);
            for i in 0..count {
                m.allocate(LineAddr(i as u64), 0, 10_000, true).unwrap();
            }
            m
        };
        let mut ideal = build(n);
        let mut shared = build(n);
        Ccl::new(AdderMode::PerEntry).advance(&mut ideal, dt);
        Ccl::new(AdderMode::paper_shared()).advance(&mut shared, dt);
        for ((_, a), (_, b)) in ideal.iter().zip(shared.iter()) {
            prop_assert!(b.mlp_cost <= a.mlp_cost + 1e-9);
            let stride = (n as f64 / 4.0).ceil();
            prop_assert!(a.mlp_cost - b.mlp_cost <= stride / n as f64 * stride + 1e-9);
        }
    }

    /// PSEL stays within [0, 2^bits) under any update sequence.
    #[test]
    fn psel_is_bounded(bits in 1u32..12, updates in prop::collection::vec((prop::bool::ANY, 0u32..8), 0..200)) {
        let mut p = Psel::new(bits);
        for (up, amount) in updates {
            if up { p.inc_by(amount) } else { p.dec_by(amount) }
            prop_assert!(p.value() <= p.max());
        }
    }

    /// PSEL saturates rather than wraps at both rails, even for update
    /// amounts far beyond the counter width. Run with
    /// `--features invariants` each step also fires the counter's
    /// internal saturation assertion.
    #[test]
    fn psel_saturates_at_extremes(
        bits in 1u32..12,
        updates in prop::collection::vec((prop::bool::ANY, 0u32..u32::MAX), 0..60)
    ) {
        let mut p = Psel::new(bits);
        for (up, amount) in updates {
            let before = p.value();
            if up {
                p.inc_by(amount);
                prop_assert!(p.value() >= before, "inc must never wrap below");
            } else {
                p.dec_by(amount);
                prop_assert!(p.value() <= before, "dec must never wrap above");
            }
            prop_assert!(p.value() <= p.max());
        }
        p.inc_by(u32::MAX);
        prop_assert_eq!(p.value(), p.max(), "top rail is sticky under overflow");
        p.dec_by(u32::MAX);
        prop_assert_eq!(p.value(), 0, "bottom rail is sticky under underflow");
    }

    /// Leader-set maps always choose exactly one leader per constituency,
    /// for both selection policies and across reselections.
    #[test]
    fn leader_sets_partition(k_log in 0u32..6, reselects in 0usize..4, seed in 0u64..1000) {
        let sets = 1024u32;
        let k = 1u32 << k_log;
        for policy in [SelectionPolicy::SimpleStatic, SelectionPolicy::RandDynamic] {
            let mut l = LeaderSets::new(sets, k, policy, seed);
            for _ in 0..=reselects {
                let leaders: Vec<u32> = l.leaders().collect();
                prop_assert_eq!(leaders.len() as u32, k);
                let size = sets / k;
                for (c, &s) in leaders.iter().enumerate() {
                    prop_assert_eq!(s / size, c as u32);
                    prop_assert!(l.is_leader(s));
                }
                let count = (0..sets).filter(|&s| l.is_leader(s)).count();
                prop_assert_eq!(count as u32, k);
                l.reselect();
            }
        }
    }
}

/// LIN's victim really is the arg-min of `R + λ·cost_q` (cross-checked
/// against a brute-force evaluation on random set states).
#[test]
fn lin_victim_is_argmin() {
    use mlpsim_cache::addr::Geometry;
    use mlpsim_cache::meta::WayMeta;
    use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};
    use mlpsim_cache::set::OwnedSet;

    let geom = Geometry::from_sets(2, 8, 64);
    let mut state = 0xDEADBEEFu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for lambda in [0u32, 1, 2, 4, 8] {
        let mut lin = mlpsim_core::lin::LinEngine::new(lambda);
        for _ in 0..200 {
            let ways: Vec<WayMeta> = (0..8)
                .map(|i| WayMeta {
                    valid: true,
                    tag: i,
                    // Distinct by construction: the tag store's monotonic
                    // stamp source never hands out duplicates, and the
                    // recency ranks are only a permutation without them.
                    lru_stamp: (rng() % 1000) * 8 + i,
                    fill_stamp: 0,
                    cost_q: (rng() % 8) as u8,
                    dirty: false,
                })
                .collect();
            let set = OwnedSet::from_ways(&ways, 0, geom);
            let view = set.view();
            let ranks = view.recency_ranks();
            let victim = lin.victim(&VictimCtx {
                set: view,
                incoming: mlpsim_cache::addr::LineAddr(99),
                seq: 0,
            });
            let score = |w: usize| u32::from(ranks[w]) + lambda * u32::from(ways[w].cost_q);
            let best = (0..8).map(score).min().unwrap();
            assert_eq!(score(victim), best, "victim must minimize the LIN score");
            // Tie-break: no way with the same score has a smaller rank.
            for w in 0..8 {
                if score(w) == best {
                    assert!(ranks[victim] <= ranks[w], "ties break to smallest recency");
                }
            }
        }
    }
}
