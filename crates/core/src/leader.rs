//! Leader-set selection for sampling-based hybrid replacement (paper §6.4).
//!
//! The cache's sets are divided into `K` equally sized *constituencies*;
//! one *leader set* is chosen from each. Leader sets carry ATD entries and
//! update the PSEL counter; follower sets merely obey the PSEL output.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How leader sets are chosen within their constituencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionPolicy {
    /// The paper's `simple-static` policy: constituency `c` leads with the
    /// set at offset `c` ("set 0 from constituency 0, set 33 from
    /// constituency 1, …" for K = 32, N = 1024 — identifiable with a
    /// five-bit comparator and no storage).
    SimpleStatic,
    /// The paper's `rand-dynamic` policy: a uniformly random offset per
    /// constituency, re-drawn by [`LeaderSets::reselect`] (the paper
    /// re-invokes it every 25 M instructions).
    RandDynamic,
}

/// The set-sampling map: which sets of the cache are leader sets.
///
/// # Example
///
/// ```
/// use mlpsim_core::leader::{LeaderSets, SelectionPolicy};
/// // The paper's default: 32 leaders over 1024 sets, simple-static.
/// let l = LeaderSets::new(1024, 32, SelectionPolicy::SimpleStatic, 0);
/// assert!(l.is_leader(0));
/// assert!(l.is_leader(33));
/// assert!(l.is_leader(1023));
/// assert!(!l.is_leader(1));
/// assert_eq!(l.leaders().count(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct LeaderSets {
    sets: u32,
    constituency_size: u32,
    /// Offset of the leader within each constituency.
    offsets: Vec<u32>,
    policy: SelectionPolicy,
    rng: SmallRng,
}

impl LeaderSets {
    /// Creates a sampling map with `k` leader sets over `sets` cache sets.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, `sets` is not divisible by `k`, or `k` exceeds
    /// `sets`.
    pub fn new(sets: u32, k: u32, policy: SelectionPolicy, seed: u64) -> Self {
        assert!(k > 0 && k <= sets, "leader count must be in 1..=sets");
        assert!(
            sets.is_multiple_of(k),
            "constituencies must be equally sized"
        );
        let constituency_size = sets / k;
        let mut rng = SmallRng::seed_from_u64(seed);
        let offsets = match policy {
            SelectionPolicy::SimpleStatic => (0..k).map(|c| c % constituency_size).collect(),
            SelectionPolicy::RandDynamic => (0..k)
                .map(|_| rng.random_range(0..constituency_size))
                .collect(),
        };
        LeaderSets {
            sets,
            constituency_size,
            offsets,
            policy,
            rng,
        }
    }

    /// Number of leader sets (K).
    pub fn k(&self) -> u32 {
        crate::convert::idx_u32(self.offsets.len())
    }

    /// Number of cache sets covered (N).
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// The selection policy in use.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Whether `set_index` is a leader set.
    #[inline]
    pub fn is_leader(&self, set_index: u32) -> bool {
        debug_assert!(set_index < self.sets);
        let c = crate::convert::idx(set_index / self.constituency_size);
        self.offsets[c] == set_index % self.constituency_size
    }

    /// Iterator over the leader set indices, in ascending order.
    pub fn leaders(&self) -> impl Iterator<Item = u32> + '_ {
        self.offsets
            .iter()
            .enumerate()
            .map(move |(c, &off)| crate::convert::idx_u32(c) * self.constituency_size + off)
    }

    /// Re-draws the leader offsets (only meaningful for
    /// [`SelectionPolicy::RandDynamic`]; a no-op for `SimpleStatic`). The
    /// paper invokes this once every 25 M instructions.
    pub fn reselect(&mut self) {
        if self.policy == SelectionPolicy::RandDynamic {
            for off in &mut self.offsets {
                *off = self.rng.random_range(0..self.constituency_size);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_static_matches_paper_example() {
        // "if K=32 and N=1024, the simple-static policy selects sets 0, 33,
        // 66, 99, …" — i.e. multiples of 33.
        let l = LeaderSets::new(1024, 32, SelectionPolicy::SimpleStatic, 0);
        let leaders: Vec<u32> = l.leaders().collect();
        assert_eq!(leaders.len(), 32);
        for (i, &s) in leaders.iter().enumerate() {
            assert_eq!(s, 33 * i as u32);
        }
        assert_eq!(*leaders.last().unwrap(), 1023);
    }

    #[test]
    fn one_leader_per_constituency() {
        for &k in &[8u32, 16, 32] {
            let l = LeaderSets::new(1024, k, SelectionPolicy::SimpleStatic, 0);
            let size = 1024 / k;
            let mut per_constituency = vec![0u32; k as usize];
            for s in 0..1024u32 {
                if l.is_leader(s) {
                    per_constituency[(s / size) as usize] += 1;
                }
            }
            assert!(per_constituency.iter().all(|&c| c == 1), "k={k}");
        }
    }

    #[test]
    fn rand_dynamic_is_seeded_and_reselects() {
        let mut a = LeaderSets::new(1024, 32, SelectionPolicy::RandDynamic, 9);
        let b = LeaderSets::new(1024, 32, SelectionPolicy::RandDynamic, 9);
        let first: Vec<u32> = a.leaders().collect();
        assert_eq!(
            first,
            b.leaders().collect::<Vec<_>>(),
            "same seed, same leaders"
        );
        a.reselect();
        let second: Vec<u32> = a.leaders().collect();
        assert_ne!(
            first, second,
            "32 uniform redraws virtually never all repeat"
        );
        // Still exactly one per constituency.
        for (c, &s) in second.iter().enumerate() {
            assert_eq!(s / 32, c as u32);
        }
    }

    #[test]
    fn simple_static_reselect_is_noop() {
        let mut l = LeaderSets::new(64, 8, SelectionPolicy::SimpleStatic, 1);
        let before: Vec<u32> = l.leaders().collect();
        l.reselect();
        assert_eq!(before, l.leaders().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn indivisible_constituencies_panic() {
        let _ = LeaderSets::new(100, 32, SelectionPolicy::SimpleStatic, 0);
    }
}
