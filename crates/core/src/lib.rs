#![warn(missing_docs)]
#![warn(clippy::cast_possible_truncation)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

//! MLP-aware cache replacement — the paper's contribution.
//!
//! This crate implements the mechanisms proposed in *"A Case for MLP-Aware
//! Cache Replacement"* (Qureshi, Lynch, Mutlu, Patt — ISCA 2006):
//!
//! * [`ccl`] — the Cost Calculation Logic (Algorithm 1): every cycle, the
//!   `mlp_cost` of each demand miss in the MSHR grows by `1/N` where `N` is
//!   the number of outstanding demand misses. Implemented event-driven (add
//!   `Δcycles / N` whenever `N` changes), which is mathematically identical
//!   to the per-cycle loop; a 4-adder time-shared variant is also provided
//!   (paper footnote 3).
//! * [`quant`] — quantization of `mlp-cost` into the 3-bit `cost_q`
//!   (Fig. 3b: 60-cycle intervals, saturating at 420+).
//! * [`lin`] — the Linear (LIN) policy (Eq. 2):
//!   `Victim_LIN = argmin_i { R(i) + λ · cost_q(i) }`.
//! * [`psel`] — the saturating policy-selector counter.
//! * [`leader`] — leader-set selection: `simple-static` and `rand-dynamic`
//!   (§6.4, §6.6).
//! * [`sbar`] — Sampling Based Adaptive Replacement (Fig. 7c).
//! * [`cbs`] — Contest Based Selection, both `CBS-local` and `CBS-global`
//!   (Fig. 7a/b), used as the expensive reference points SBAR approximates.
//! * [`overhead`] — the hardware bit-budget model behind the paper's
//!   "1854 B, less than 0.2% of a 1 MB cache" claim,
//! * [`bcl`] — an alternative Cost-Aware Replacement Engine in the style
//!   of Jeong & Dubois (the paper's reference \[8\]), demonstrating that
//!   the MLP-based cost plugs into "any generic cost-sensitive scheme".

/// Model-checking assertion for the paper's numeric invariants (Algorithm
/// 1 accounting, `cost_q` range, PSEL saturation). Compiled to a real
/// `assert!` only under the `invariants` feature; a no-op (zero cost, in
/// release and debug alike) otherwise. See DESIGN.md §10.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// No-op twin of the `invariants`-enabled assertion (feature disabled).
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {};
}

pub mod bcl;
pub mod cbs;
pub mod ccl;
pub mod convert;
pub mod leader;
pub mod lin;
pub mod overhead;
pub mod psel;
pub mod quant;
pub mod sbar;

pub use ccl::{AdderMode, Ccl};
pub use lin::LinEngine;
pub use psel::Psel;
pub use quant::{quantize, COST_Q_INTERVAL_CYCLES};
pub use sbar::SbarEngine;
