//! Sampling Based Adaptive Replacement (SBAR) — paper §6.4, Fig. 7c.
//!
//! SBAR makes hybrid replacement cheap:
//!
//! * the main tag directory's sets are split into *leader sets* (which
//!   always run LIN and update the PSEL counter) and *follower sets*
//!   (which run whichever of LIN/LRU the PSEL output currently favors);
//! * a single auxiliary tag directory (ATD-LRU) shadows only the leader
//!   sets with the LRU policy;
//! * on a divergence between the leader set (LIN) and its ATD-LRU shadow,
//!   PSEL moves by the `cost_q` of the divergent miss, so the contest is
//!   decided on MLP-based cost (≈ stall cycles), not raw misses.

use crate::leader::{LeaderSets, SelectionPolicy};
use crate::lin::LinEngine;
use crate::psel::{Psel, PselWatch};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::atd::Atd;
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::meta::CostQ;
use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};
use mlpsim_telemetry::{Event, SinkHandle};
use std::collections::HashMap;

/// Configuration for [`SbarEngine`].
#[derive(Clone, Copy, Debug)]
pub struct SbarConfig {
    /// λ of the LIN component (paper default 4).
    pub lambda: u32,
    /// Number of leader sets (paper default 32).
    pub leader_sets: u32,
    /// Leader-set selection policy (paper default `simple-static`).
    pub selection: SelectionPolicy,
    /// PSEL width in bits (paper default 6).
    pub psel_bits: u32,
    /// Seed for `rand-dynamic` selection.
    pub seed: u64,
}

impl SbarConfig {
    /// The paper's default SBAR configuration: λ = 4, 32 leader sets,
    /// simple-static selection, 6-bit PSEL.
    pub fn paper_default() -> Self {
        SbarConfig {
            lambda: 4,
            leader_sets: 32,
            selection: SelectionPolicy::SimpleStatic,
            psel_bits: 6,
            seed: 0,
        }
    }
}

impl Default for SbarConfig {
    fn default() -> Self {
        SbarConfig::paper_default()
    }
}

/// Observability counters for SBAR's adaptation behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbarStats {
    /// Follower-set victim decisions made with LIN.
    pub follower_lin_victims: u64,
    /// Follower-set victim decisions made with LRU.
    pub follower_lru_victims: u64,
    /// PSEL increments (LIN beat LRU on an access).
    pub psel_increments: u64,
    /// PSEL decrements (LRU beat LIN on an access).
    pub psel_decrements: u64,
}

/// The SBAR replacement engine.
///
/// Plug it into a [`CacheModel`](mlpsim_cache::model::CacheModel) as the L2
/// replacement engine; the cache forwards every access through
/// [`ReplacementEngine::on_access`] (which drives the ATD and PSEL) and
/// every serviced miss cost through [`ReplacementEngine::on_serviced`]
/// (which settles PSEL updates that had to wait for the real MLP-based
/// cost).
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::Geometry;
/// use mlpsim_cache::model::CacheModel;
/// use mlpsim_core::sbar::{SbarConfig, SbarEngine};
///
/// let geom = Geometry::baseline_l2();
/// let engine = SbarEngine::new(geom, SbarConfig::paper_default());
/// assert_eq!(engine.leaders().k(), 32);
/// assert!(!engine.followers_use_lin()); // starts on the LRU side
/// let cache = CacheModel::new(geom, Box::new(engine));
/// assert_eq!(cache.policy_name(), "sbar");
/// ```
pub struct SbarEngine {
    geometry: Geometry,
    lin: LinEngine,
    lru: LruEngine,
    leaders: LeaderSets,
    atd_lru: Atd,
    psel: Psel,
    /// Leader-set misses that hit in ATD-LRU: PSEL must be decremented by
    /// the miss's cost_q, which is only known when the miss is serviced.
    pending_dec: HashMap<LineAddr, u32>,
    stats: SbarStats,
    sink: SinkHandle,
    watch: PselWatch,
    /// Sequence number of the most recent access, stamped on PSEL events
    /// settled later in `on_serviced` (engines have no cycle clock).
    last_seq: u64,
}

impl SbarEngine {
    /// Creates an SBAR engine for a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's set count is not divisible by the leader
    /// count (constituencies must be equally sized).
    pub fn new(geometry: Geometry, config: SbarConfig) -> Self {
        let leaders = LeaderSets::new(
            geometry.sets(),
            config.leader_sets,
            config.selection,
            config.seed,
        );
        let psel = Psel::new(config.psel_bits);
        SbarEngine {
            geometry,
            lin: LinEngine::new(config.lambda),
            lru: LruEngine::new(),
            leaders,
            atd_lru: Atd::new(geometry, Box::new(LruEngine::new())),
            psel,
            pending_dec: HashMap::new(),
            stats: SbarStats::default(),
            sink: SinkHandle::disabled(),
            watch: PselWatch::new(&psel),
            last_seq: 0,
        }
    }

    /// Emits a `psel_update` (and a `psel_flip` when the MSB changed) after
    /// a PSEL movement of `delta` attributed to access `seq`.
    fn note_psel_update(&mut self, delta: i64, seq: u64) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(Event::PselUpdate {
            unit: "sbar".to_string(),
            index: 0,
            delta,
            value: u64::from(self.psel.value()),
            msb: self.psel.msb_set(),
            saturated: self.psel.is_saturated(),
            seq,
        });
        if let Some(msb) = self.watch.observe(&self.psel) {
            self.sink.emit(Event::PselFlip {
                unit: "sbar".to_string(),
                index: 0,
                msb,
                value: u64::from(self.psel.value()),
                seq,
            });
        }
    }

    /// Current PSEL value (for time-series experiments).
    pub fn psel(&self) -> &Psel {
        &self.psel
    }

    /// Whether follower sets are currently using LIN.
    pub fn followers_use_lin(&self) -> bool {
        self.psel.msb_set()
    }

    /// The leader-set map.
    pub fn leaders(&self) -> &LeaderSets {
        &self.leaders
    }

    /// Adaptation counters.
    pub fn stats(&self) -> &SbarStats {
        &self.stats
    }

    /// Re-draws `rand-dynamic` leader sets (no-op under `simple-static`).
    /// The paper re-invokes this every 25 M instructions.
    pub fn reselect_leaders(&mut self) {
        self.leaders.reselect();
    }
}

impl ReplacementEngine for SbarEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        let set_index = ctx.set.set_index();
        if self.leaders.is_leader(set_index) {
            // Leader sets in the MTD implement only the LIN policy (§6.4).
            self.lin.victim(ctx)
        } else if self.psel.msb_set() {
            self.stats.follower_lin_victims += 1;
            self.lin.victim(ctx)
        } else {
            self.stats.follower_lru_victims += 1;
            self.lru.victim(ctx)
        }
    }

    fn on_access(
        &mut self,
        line: LineAddr,
        seq: u64,
        mtd_hit: bool,
        resident_cost_q: Option<CostQ>,
    ) {
        self.last_seq = seq;
        let set_index = self.geometry.set_index(line);
        if !self.leaders.is_leader(set_index) {
            return; // follower sets have no ATD entries and never update PSEL
        }
        // Replay the access in the ATD-LRU shadow. If the MTD holds the
        // line, the shadow block inherits the MTD's stored cost_q
        // (footnote 6); otherwise the real cost is patched in later via
        // `on_serviced`.
        let atd_hit = self
            .atd_lru
            .access(line, seq, resident_cost_q.unwrap_or(0))
            .hit;
        match (mtd_hit, atd_hit) {
            (true, true) | (false, false) => {} // neither policy is doing better
            (false, true) => {
                // The LIN-managed leader set missed where LRU would have
                // hit: LRU wins this access. The decrement amount is the
                // cost_q the miss is eventually serviced with.
                *self.pending_dec.entry(line).or_insert(0) += 1;
            }
            (true, false) => {
                // LIN kept a line LRU would have evicted: LIN wins. The
                // miss ATD-LRU incurred is not serviced by memory; its
                // cost_q comes from the MTD's tag-store entry.
                let cost = resident_cost_q.unwrap_or(0);
                self.psel.inc_by(u32::from(cost));
                self.stats.psel_increments += 1;
                self.sink.emit_with(|| Event::LeaderDivergence {
                    unit: "sbar".to_string(),
                    side: "atd_lru_miss".to_string(),
                    line: line.0,
                    cost_q: cost,
                    seq,
                });
                self.note_psel_update(i64::from(cost), seq);
            }
        }
    }

    fn on_serviced(&mut self, line: LineAddr, cost_q: CostQ) {
        // Keep the shadow directory's stored cost in sync (it matters only
        // for diagnostics under an LRU ATD, but is what hardware would do).
        self.atd_lru.set_cost_q(line, cost_q);
        if let Some(n) = self.pending_dec.remove(&line) {
            for _ in 0..n {
                self.psel.dec_by(u32::from(cost_q));
                self.stats.psel_decrements += 1;
                let seq = self.last_seq;
                self.sink.emit_with(|| Event::LeaderDivergence {
                    unit: "sbar".to_string(),
                    side: "leader_lin_miss".to_string(),
                    line: line.0,
                    cost_q,
                    seq,
                });
                self.note_psel_update(-i64::from(cost_q), seq);
            }
        }
    }

    fn on_epoch(&mut self) {
        self.reselect_leaders();
    }

    fn debug_state(&self) -> Option<String> {
        Some(format!(
            "psel={} msb={} inc={} dec={} lin_victims={} lru_victims={}",
            self.psel.value(),
            self.psel.msb_set(),
            self.stats.psel_increments,
            self.stats.psel_decrements,
            self.stats.follower_lin_victims,
            self.stats.follower_lru_victims,
        ))
    }

    fn name(&self) -> &'static str {
        "sbar"
    }

    fn policy_for_set(&self, set_index: u32) -> &'static str {
        // Mirrors `victim`: leaders always run LIN (§6.4); followers
        // track the PSEL's most-significant bit.
        if self.leaders.is_leader(set_index) {
            "lin-leader"
        } else if self.psel.msb_set() {
            "lin"
        } else {
            "lru"
        }
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }
}

impl std::fmt::Debug for SbarEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SbarEngine")
            .field("geometry", &self.geometry)
            .field("lambda", &self.lin.lambda())
            .field("k", &self.leaders.k())
            .field("psel", &self.psel)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::model::CacheModel;

    /// A small geometry where set 0 is the single leader set.
    fn tiny() -> (Geometry, SbarConfig) {
        let g = Geometry::from_sets(4, 2, 64);
        let cfg = SbarConfig {
            lambda: 4,
            leader_sets: 4, // every set a leader? no — use 2 leaders
            ..SbarConfig::paper_default()
        };
        (g, cfg)
    }

    #[test]
    fn leader_sets_always_use_lin() {
        let (g, mut cfg) = tiny();
        cfg.leader_sets = 2; // sets 0 and 3 lead (constituency size 2: offsets 0,1)
        let engine = SbarEngine::new(g, cfg);
        let leaders: Vec<u32> = engine.leaders().leaders().collect();
        assert_eq!(leaders, vec![0, 3]);
    }

    #[test]
    fn policy_for_set_tracks_leaders_and_psel() {
        let (g, mut cfg) = tiny();
        cfg.leader_sets = 2;
        let mut engine = SbarEngine::new(g, cfg);
        // PSEL starts below its MSB: followers run LRU, leaders run LIN.
        assert!(!engine.followers_use_lin());
        assert_eq!(engine.policy_for_set(0), "lin-leader");
        assert_eq!(engine.policy_for_set(1), "lru");
        // Push the PSEL over the midpoint: followers flip to LIN.
        while !engine.followers_use_lin() {
            engine.psel.inc_by(64);
        }
        assert_eq!(engine.policy_for_set(0), "lin-leader");
        assert_eq!(engine.policy_for_set(1), "lin");
    }

    #[test]
    fn psel_moves_toward_lru_when_lin_misses_more() {
        let (g, mut cfg) = tiny();
        cfg.leader_sets = 2;
        let mut cache = CacheModel::new(g, Box::new(SbarEngine::new(g, cfg)));
        // Leader set 0 lines: 0, 4, 8 (all ≡ 0 mod 4). Prime line 0 with a
        // huge cost so leader-LIN pins it, then thrash with 4 and 8 while
        // touching 0 rarely — LRU would keep the recent pair.
        let mut seq = 0u64;
        let mut acc = |c: &mut CacheModel, l: u64, q: u8| {
            let r = c.access(LineAddr(l), false, seq);
            if !r.hit {
                c.record_serviced_cost(LineAddr(l), q);
            }
            seq += 1;
        };
        acc(&mut cache, 0, 7); // pinned by LIN with cost 7
                               // Alternate 4, 8: under LIN (0 pinned) they evict each other and
                               // miss every time; under LRU in the ATD they... also alternate.
                               // But touching 0 occasionally hits in both. To force divergence,
                               // access pattern: 4, 8, 4, 8 — LIN keeps {0, last}, LRU keeps
                               // {last two} = {4, 8}. So re-access of 4/8 hits in ATD-LRU and
                               // misses in MTD → pending decrements, settled by serviced costs.
        for _ in 0..20 {
            acc(&mut cache, 4, 1);
            acc(&mut cache, 8, 1);
        }
        // Force settle-check: PSEL should have dropped to favor LRU.
        // (record_serviced_cost drives on_serviced through the model.)
        // We can't reach into the boxed engine; behavioural check instead:
        // follower set 1 should now evict like LRU. Fill follower set 1
        // with a high-cost LRU block and a low-cost MRU block: LRU evicts
        // the former, LIN the latter.
        acc(&mut cache, 1, 7); // set 1, cost 7, older
        acc(&mut cache, 5, 0); // set 1, cost 0, newer
        let res = cache.access(LineAddr(9), false, seq);
        assert_eq!(
            res.evicted.unwrap().line,
            LineAddr(1),
            "followers must behave like LRU after LIN loses the contest"
        );
    }

    #[test]
    fn psel_moves_toward_lin_when_lin_protects_useful_blocks() {
        let g = Geometry::from_sets(4, 2, 64);
        let cfg = SbarConfig {
            leader_sets: 2,
            ..SbarConfig::paper_default()
        };
        let mut engine = SbarEngine::new(g, cfg);
        let before = engine.psel().value();
        // Simulate: MTD hit while ATD-LRU misses on a line whose MTD entry
        // carries cost 7 → PSEL += 7.
        // First make the ATD know the line then evict it there:
        engine.on_access(LineAddr(0), 0, false, None); // both miss; ATD fills
        engine.on_serviced(LineAddr(0), 7);
        engine.on_access(LineAddr(4), 1, false, None); // ATD fills way 2? (2-way: 0,4)
        engine.on_serviced(LineAddr(4), 1);
        engine.on_access(LineAddr(8), 2, false, None); // ATD evicts LRU = 0
        engine.on_serviced(LineAddr(8), 1);
        // Now line 0 gone from ATD; pretend MTD still has it (LIN pinned).
        engine.on_access(LineAddr(0), 3, true, Some(7));
        assert_eq!(engine.psel().value(), before + 7);
        assert_eq!(engine.stats().psel_increments, 1);
    }

    #[test]
    fn pending_decrements_wait_for_serviced_cost() {
        let g = Geometry::from_sets(4, 2, 64);
        let cfg = SbarConfig {
            leader_sets: 2,
            ..SbarConfig::paper_default()
        };
        let mut engine = SbarEngine::new(g, cfg);
        let start = engine.psel().value();
        // Teach the ATD the line so it hits there while MTD misses.
        engine.on_access(LineAddr(0), 0, false, None);
        engine.on_access(LineAddr(0), 1, false, None); // ATD hit, MTD miss → pending dec
        assert_eq!(
            engine.psel().value(),
            start,
            "decrement deferred until service"
        );
        engine.on_serviced(LineAddr(0), 5);
        assert_eq!(engine.psel().value(), start - 5);
        assert_eq!(engine.stats().psel_decrements, 1);
    }

    #[test]
    fn follower_accesses_do_not_touch_psel() {
        let g = Geometry::from_sets(4, 2, 64);
        let cfg = SbarConfig {
            leader_sets: 2,
            ..SbarConfig::paper_default()
        };
        let mut engine = SbarEngine::new(g, cfg);
        let start = engine.psel().value();
        // Sets 1 and 2 are followers (leaders are 0 and 3).
        for seq in 0..50u64 {
            engine.on_access(LineAddr(1 + 4 * (seq % 3)), seq, seq % 2 == 0, Some(7));
            engine.on_serviced(LineAddr(1 + 4 * (seq % 3)), 7);
        }
        assert_eq!(engine.psel().value(), start);
    }
}
