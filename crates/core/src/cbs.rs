//! Contest Based Selection (CBS) — paper §6.1–§6.2, Figs. 6 and 7a/b.
//!
//! CBS runs *two* full auxiliary tag directories — ATD-LIN and ATD-LRU —
//! on the cache's access stream and lets them race. PSEL counters track
//! which shadow policy incurs less MLP-based cost; the main tag directory
//! (MTD) follows the winner. `CBS-local` keeps one PSEL per set and decides
//! per set; `CBS-global` funnels every set into a single PSEL (the paper
//! uses a 7-bit counter there, footnote 7).
//!
//! CBS is the expensive reference design; SBAR (in [`crate::sbar`])
//! approximates it with 64× fewer ATD entries.

use crate::lin::LinEngine;
use crate::psel::{Psel, PselWatch};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::atd::Atd;
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::meta::CostQ;
use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};
use mlpsim_telemetry::{Event, SinkHandle};
use std::collections::HashMap;

/// Scope of the PSEL contest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CbsMode {
    /// One PSEL per set; each set follows its own contest (Fig. 7a's
    /// per-set variant, "CBS-local").
    Local,
    /// A single global PSEL fed by every set ("CBS-global", Fig. 7a).
    Global,
}

/// Configuration for [`CbsEngine`].
#[derive(Clone, Copy, Debug)]
pub struct CbsConfig {
    /// Contest scope.
    pub mode: CbsMode,
    /// λ of the LIN component.
    pub lambda: u32,
    /// PSEL width in bits. The paper uses 6 for CBS-local and 7 for
    /// CBS-global (footnote 7).
    pub psel_bits: u32,
}

impl CbsConfig {
    /// Paper configuration for CBS-local: λ = 4, 6-bit PSELs.
    pub fn local() -> Self {
        CbsConfig {
            mode: CbsMode::Local,
            lambda: 4,
            psel_bits: 6,
        }
    }

    /// Paper configuration for CBS-global: λ = 4, 7-bit PSEL (footnote 7).
    pub fn global() -> Self {
        CbsConfig {
            mode: CbsMode::Global,
            lambda: 4,
            psel_bits: 7,
        }
    }
}

/// Pending PSEL adjustments for a miss whose MLP-based cost is not yet
/// known (the miss is still in flight).
#[derive(Clone, Copy, Debug, Default)]
struct Pending {
    increments: u32,
    decrements: u32,
}

/// The CBS replacement engine: MTD policy chosen per access by dueling
/// ATDs.
pub struct CbsEngine {
    geometry: Geometry,
    mode: CbsMode,
    lin: LinEngine,
    lru: LruEngine,
    atd_lin: Atd,
    atd_lru: Atd,
    /// One counter in `Global` mode, `sets` counters in `Local` mode.
    psels: Vec<Psel>,
    pending: HashMap<LineAddr, Pending>,
    sink: SinkHandle,
    /// One MSB watch per PSEL, for `psel_flip` telemetry.
    watches: Vec<PselWatch>,
    /// Sequence number of the most recent access, stamped on PSEL events
    /// settled later in `on_serviced`.
    last_seq: u64,
}

impl CbsEngine {
    /// Creates a CBS engine for a cache with the given geometry.
    pub fn new(geometry: Geometry, config: CbsConfig) -> Self {
        let psel_count = match config.mode {
            CbsMode::Local => crate::convert::idx(geometry.sets()),
            CbsMode::Global => 1,
        };
        let psels = vec![Psel::new(config.psel_bits); psel_count];
        let watches = psels.iter().map(PselWatch::new).collect();
        CbsEngine {
            geometry,
            mode: config.mode,
            lin: LinEngine::new(config.lambda),
            lru: LruEngine::new(),
            atd_lin: Atd::new(geometry, Box::new(LinEngine::new(config.lambda))),
            atd_lru: Atd::new(geometry, Box::new(LruEngine::new())),
            psels,
            pending: HashMap::new(),
            sink: SinkHandle::disabled(),
            watches,
            last_seq: 0,
        }
    }

    /// Moves PSEL `idx` by `cost` in the direction of `delta_sign`, with
    /// telemetry (`psel_update`, and `psel_flip` on MSB change, plus the
    /// `leader_divergence` that caused it).
    fn duel_update(&mut self, idx: usize, inc: bool, cost: CostQ, line: LineAddr, seq: u64) {
        let p = &mut self.psels[idx];
        if inc {
            p.inc_by(u32::from(cost));
        } else {
            p.dec_by(u32::from(cost));
        }
        if !self.sink.enabled() {
            return;
        }
        let unit = match self.mode {
            CbsMode::Local => "cbs-local",
            CbsMode::Global => "cbs-global",
        };
        let side = if inc { "atd_lru_miss" } else { "atd_lin_miss" };
        self.sink.emit(Event::LeaderDivergence {
            unit: unit.to_string(),
            side: side.to_string(),
            line: line.0,
            cost_q: cost,
            seq,
        });
        let p = self.psels[idx];
        self.sink.emit(Event::PselUpdate {
            unit: unit.to_string(),
            index: crate::convert::idx_u64(idx),
            delta: if inc {
                i64::from(cost)
            } else {
                -i64::from(cost)
            },
            value: u64::from(p.value()),
            msb: p.msb_set(),
            saturated: p.is_saturated(),
            seq,
        });
        if let Some(msb) = self.watches[idx].observe(&p) {
            self.sink.emit(Event::PselFlip {
                unit: unit.to_string(),
                index: crate::convert::idx_u64(idx),
                msb,
                value: u64::from(p.value()),
                seq,
            });
        }
    }

    /// The contest scope.
    pub fn mode(&self) -> CbsMode {
        self.mode
    }

    #[inline]
    fn psel_index(&self, set_index: u32) -> usize {
        match self.mode {
            CbsMode::Local => crate::convert::idx(set_index),
            CbsMode::Global => 0,
        }
    }

    /// The PSEL governing `set_index` (for diagnostics).
    pub fn psel_for(&self, set_index: u32) -> &Psel {
        &self.psels[self.psel_index(set_index)]
    }

    /// Census of the PSEL counters: `(sets_favoring_lin, total_counters)`.
    ///
    /// Under [`CbsMode::Local`] this measures the paper's §6.3 quantity
    /// `p` directly: the fraction of sets whose contest currently favors
    /// each policy ("Experimentally, we found that the average value of p
    /// for all benchmarks is between 0.74 and 0.99").
    pub fn psel_census(&self) -> (usize, usize) {
        let lin = self.psels.iter().filter(|p| p.msb_set()).count();
        (lin, self.psels.len())
    }
}

impl ReplacementEngine for CbsEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        if self.psel_for(ctx.set.set_index()).msb_set() {
            self.lin.victim(ctx)
        } else {
            self.lru.victim(ctx)
        }
    }

    fn on_access(
        &mut self,
        line: LineAddr,
        seq: u64,
        mtd_hit: bool,
        resident_cost_q: Option<CostQ>,
    ) {
        // Replay in both shadows. If the MTD holds the line, shadow fills
        // inherit the MTD's cost_q (footnote 6); otherwise the real cost is
        // patched in via `on_serviced`.
        self.last_seq = seq;
        let provisional = resident_cost_q.unwrap_or(0);
        let lin_hit = self.atd_lin.access(line, seq, provisional).hit;
        let lru_hit = self.atd_lru.access(line, seq, provisional).hit;
        let idx = self.psel_index(self.geometry.set_index(line));
        match (lin_hit, lru_hit) {
            (true, true) | (false, false) => {} // PSEL unchanged (Fig. 6)
            (false, true) => {
                // ATD-LIN missed: LRU is doing better; decrement by the
                // cost_q of ATD-LIN's miss.
                if mtd_hit {
                    // Not serviced by memory; cost from the MTD tag entry.
                    self.duel_update(idx, false, provisional, line, seq);
                } else {
                    self.pending.entry(line).or_default().decrements += 1;
                }
            }
            (true, false) => {
                // ATD-LRU missed: LIN is doing better; increment by the
                // cost_q of ATD-LRU's miss.
                if mtd_hit {
                    self.duel_update(idx, true, provisional, line, seq);
                } else {
                    self.pending.entry(line).or_default().increments += 1;
                }
            }
        }
    }

    fn on_serviced(&mut self, line: LineAddr, cost_q: CostQ) {
        self.atd_lin.set_cost_q(line, cost_q);
        self.atd_lru.set_cost_q(line, cost_q);
        if let Some(p) = self.pending.remove(&line) {
            let idx = self.psel_index(self.geometry.set_index(line));
            let seq = self.last_seq;
            for _ in 0..p.increments {
                self.duel_update(idx, true, cost_q, line, seq);
            }
            for _ in 0..p.decrements {
                self.duel_update(idx, false, cost_q, line, seq);
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            CbsMode::Local => "cbs-local",
            CbsMode::Global => "cbs-global",
        }
    }

    fn policy_for_set(&self, set_index: u32) -> &'static str {
        // Mirrors `victim`: the governing PSEL's MSB picks the component.
        if self.psel_for(set_index).msb_set() {
            "lin"
        } else {
            "lru"
        }
    }

    fn debug_state(&self) -> Option<String> {
        let (lin, total) = self.psel_census();
        Some(format!("psel_lin={lin}/{total}"))
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }
}

impl std::fmt::Debug for CbsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbsEngine")
            .field("geometry", &self.geometry)
            .field("mode", &self.mode)
            .field("psels", &self.psels.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::model::CacheModel;

    #[test]
    fn mode_controls_psel_count_and_name() {
        let g = Geometry::from_sets(8, 2, 64);
        let mut local = CbsEngine::new(g, CbsConfig::local());
        let mut global = CbsEngine::new(g, CbsConfig::global());
        assert_eq!(local.name(), "cbs-local");
        assert_eq!(global.name(), "cbs-global");
        // Feed a divergence into set 3 only; in Local mode other sets'
        // PSELs stay put, in Global mode the single PSEL moves.
        for e in [&mut local, &mut global] {
            // Build divergent shadow state in set 3 (lines ≡ 3 mod 8).
            // LIN pins a high-cost block; LRU follows recency.
            e.on_access(LineAddr(3), 0, false, None);
            e.on_serviced(LineAddr(3), 7);
            e.on_access(LineAddr(11), 1, false, None);
            e.on_serviced(LineAddr(11), 0);
            e.on_access(LineAddr(19), 2, false, None);
            e.on_serviced(LineAddr(19), 0);
            // ATD-LIN now holds {3,19} (3 pinned, score 0+28 vs fills);
            // ATD-LRU holds {11,19}. Access 3: LIN hit, LRU miss → +7 via
            // MTD-resident path.
            e.on_access(LineAddr(3), 3, true, Some(7));
        }
        assert!(local.psel_for(3).value() > Psel::new(6).value());
        assert_eq!(local.psel_for(0).value(), Psel::new(6).value());
        assert!(global.psel_for(0).value() > Psel::new(7).value());
    }

    #[test]
    fn policy_for_set_follows_each_governing_psel() {
        let g = Geometry::from_sets(8, 2, 64);
        let mut e = CbsEngine::new(g, CbsConfig::local());
        assert_eq!(e.policy_for_set(3), "lru");
        // Drive set 3's PSEL over its midpoint (same divergence pattern
        // as `mode_controls_psel_count_and_name`, repeated until the MSB
        // sets); other sets' PSELs stay on the LRU side.
        let mut seq = 0u64;
        while !e.psel_for(3).msb_set() {
            e.on_access(LineAddr(3), seq, false, None);
            e.on_serviced(LineAddr(3), 7);
            e.on_access(LineAddr(11), seq + 1, false, None);
            e.on_serviced(LineAddr(11), 0);
            e.on_access(LineAddr(19), seq + 2, false, None);
            e.on_serviced(LineAddr(19), 0);
            e.on_access(LineAddr(3), seq + 3, true, Some(7));
            seq += 4;
        }
        assert_eq!(e.policy_for_set(3), "lin");
        assert_eq!(e.policy_for_set(0), "lru");
    }

    #[test]
    fn pending_updates_settle_with_real_cost() {
        let g = Geometry::from_sets(4, 2, 64);
        let mut e = CbsEngine::new(g, CbsConfig::global());
        let base = e.psel_for(0).value();
        // LIN-favoring divergence on an MTD miss: settle via on_serviced.
        e.on_access(LineAddr(0), 0, false, None);
        e.on_serviced(LineAddr(0), 7);
        e.on_access(LineAddr(4), 1, false, None);
        e.on_serviced(LineAddr(4), 0);
        e.on_access(LineAddr(8), 2, false, None);
        e.on_serviced(LineAddr(8), 0);
        // ATD-LIN = {0, 8}; ATD-LRU = {4, 8}. Access 0 with MTD miss:
        // lin hit, lru miss → pending increment.
        e.on_access(LineAddr(0), 3, false, None);
        assert_eq!(e.psel_for(0).value(), base, "waits for service");
        e.on_serviced(LineAddr(0), 6);
        assert_eq!(e.psel_for(0).value(), base + 6);
    }

    #[test]
    fn mtd_follows_the_winning_policy() {
        // Drive the global PSEL all the way down, then check the MTD evicts
        // like LRU.
        let g = Geometry::from_sets(4, 2, 64);
        let mut cache = CacheModel::new(g, Box::new(CbsEngine::new(g, CbsConfig::global())));
        let mut seq = 0u64;
        let mut acc = |c: &mut CacheModel, l: u64, q: u8| {
            let r = c.access(LineAddr(l), false, seq);
            if !r.hit {
                c.record_serviced_cost(LineAddr(l), q);
            }
            seq += 1;
            r
        };
        // In set 0: pin a cost-7 block under LIN, then alternate two
        // other lines. ATD-LIN keeps missing them; ATD-LRU keeps the
        // recent pair and hits. PSEL sinks toward LRU.
        acc(&mut cache, 0, 7);
        for _ in 0..30 {
            acc(&mut cache, 4, 1);
            acc(&mut cache, 8, 1);
        }
        // Set 1 (follower of the same global PSEL): LRU behavior expected.
        acc(&mut cache, 1, 7); // old, costly
        acc(&mut cache, 5, 0); // new, cheap
        let res = cache.access(LineAddr(9), false, seq);
        assert_eq!(
            res.evicted.unwrap().line,
            LineAddr(1),
            "LRU evicts the older block"
        );
    }
}
