//! Hardware bit-budget model (paper §1.2: SBAR costs 1854 B, "less than
//! 0.2% area of the baseline 1MB cache").
//!
//! The model is parameterized so the ablation experiments can sweep leader
//! counts and PSEL widths and watch the budget move.

use mlpsim_cache::addr::Geometry;

/// Parameters of the overhead calculation.
#[derive(Clone, Copy, Debug)]
pub struct OverheadParams {
    /// Cache geometry of the main tag directory.
    pub geometry: Geometry,
    /// Physical address width in bits (mid-2000s high-end: 40).
    pub phys_addr_bits: u32,
    /// Number of leader sets carrying ATD entries.
    pub leader_sets: u32,
    /// PSEL counter width in bits.
    pub psel_bits: u32,
    /// Width of the quantized cost field stored per tag (3 bits).
    pub cost_q_bits: u32,
    /// MSHR entries carrying an `mlp_cost` accumulator.
    pub mshr_entries: u32,
    /// Width of the per-MSHR-entry cost accumulator. 10 bits count cycles
    /// up to 1023, enough headroom over the 444-cycle isolated miss.
    pub mshr_cost_bits: u32,
}

impl OverheadParams {
    /// The paper's baseline: 1 MB 16-way L2, 40-bit physical addresses,
    /// 32 leader sets, 6-bit PSEL, 3-bit cost_q, 32 MSHR entries.
    pub fn paper_baseline() -> Self {
        OverheadParams {
            geometry: Geometry::baseline_l2(),
            phys_addr_bits: 40,
            leader_sets: 32,
            psel_bits: 6,
            cost_q_bits: 3,
            mshr_entries: 32,
            mshr_cost_bits: 10,
        }
    }

    /// Tag width: physical address minus set-index and line-offset bits.
    pub fn tag_bits(&self) -> u32 {
        let index_bits = crate::convert::trunc_u32(f64::from(self.geometry.sets()).log2().ceil());
        let offset_bits =
            crate::convert::trunc_u32(f64::from(self.geometry.line_bytes()).log2().ceil());
        // A geometry larger than the physical address space would wrap
        // here; saturate to zero tag bits instead.
        self.phys_addr_bits
            .saturating_sub(index_bits)
            .saturating_sub(offset_bits)
    }

    /// Bits per ATD entry: tag + valid + LRU stack position.
    pub fn atd_entry_bits(&self) -> u32 {
        let lru_bits = crate::convert::trunc_u32(f64::from(self.geometry.ways()).log2().ceil());
        self.tag_bits() + 1 + lru_bits
    }
}

/// Itemized storage overhead, in bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overhead {
    /// Auxiliary-tag-directory storage (leader sets × ways × entry bits).
    pub atd_bits: u64,
    /// Policy-selector counter(s).
    pub psel_bits: u64,
    /// Quantized-cost fields added to the main tag store.
    pub cost_q_bits: u64,
    /// Per-MSHR-entry cost accumulators.
    pub mshr_bits: u64,
}

impl Overhead {
    /// Total overhead in bits.
    pub fn total_bits(&self) -> u64 {
        self.atd_bits + self.psel_bits + self.cost_q_bits + self.mshr_bits
    }

    /// Total overhead in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Overhead as a fraction of a cache's data capacity.
    pub fn fraction_of(&self, geometry: Geometry) -> f64 {
        crate::convert::cycles_f64(self.total_bytes())
            / crate::convert::cycles_f64(geometry.capacity_bytes())
    }
}

/// The adaptation overhead of SBAR alone: one ATD covering only the leader
/// sets, plus a single PSEL. This is the quantity the paper prices at
/// 1854 B (§1.2); with 40-bit addresses the model yields 1856 B — a 2-byte
/// rounding difference from the paper's unstated tag width.
pub fn sbar_overhead(p: &OverheadParams) -> Overhead {
    let entries = u64::from(p.leader_sets) * u64::from(p.geometry.ways());
    Overhead {
        atd_bits: entries * u64::from(p.atd_entry_bits()),
        psel_bits: u64::from(p.psel_bits),
        cost_q_bits: 0,
        mshr_bits: 0,
    }
}

/// The overhead of MLP-aware replacement itself (independent of SBAR): the
/// 3-bit `cost_q` per main-tag-store entry and the CCL's per-MSHR-entry
/// accumulators.
pub fn lin_overhead(p: &OverheadParams) -> Overhead {
    Overhead {
        atd_bits: 0,
        psel_bits: 0,
        cost_q_bits: p.geometry.lines() * u64::from(p.cost_q_bits),
        mshr_bits: u64::from(p.mshr_entries) * u64::from(p.mshr_cost_bits),
    }
}

/// Overhead of CBS-local or CBS-global: two full-size ATDs (LIN and LRU)
/// plus PSEL counters (`sets` of them for local, one for global). This is
/// what makes CBS impractical and motivates sampling.
pub fn cbs_overhead(p: &OverheadParams, local: bool) -> Overhead {
    let entries = p.geometry.lines() * 2; // two full ATDs
    let psel_count = if local {
        u64::from(p.geometry.sets())
    } else {
        1
    };
    Overhead {
        atd_bits: entries * u64::from(p.atd_entry_bits()),
        psel_bits: psel_count * u64::from(p.psel_bits),
        cost_q_bits: 0,
        mshr_bits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_tag_is_24_bits() {
        let p = OverheadParams::paper_baseline();
        // 40 - 10 (1024 sets) - 6 (64 B lines) = 24.
        assert_eq!(p.tag_bits(), 24);
        // 24 + 1 valid + 4 LRU = 29 bits per ATD entry.
        assert_eq!(p.atd_entry_bits(), 29);
    }

    #[test]
    fn sbar_overhead_matches_papers_1854_bytes() {
        let p = OverheadParams::paper_baseline();
        let o = sbar_overhead(&p);
        // 32 sets × 16 ways × 29 bits + 6 = 14854 bits = 1857 B; the paper
        // quotes 1854 B. Allow a ±8 B window for the unstated tag width.
        let bytes = o.total_bytes();
        assert!((1846..=1862).contains(&bytes), "got {bytes} B");
        // And well under 0.2% of the 1 MB cache.
        assert!(o.fraction_of(p.geometry) < 0.002);
    }

    #[test]
    fn cbs_needs_64x_more_atd_entries_than_sbar() {
        let p = OverheadParams::paper_baseline();
        let sbar = sbar_overhead(&p);
        let cbs = cbs_overhead(&p, true);
        // "SBAR requires 64 times fewer ATD entries than CBS-local or
        // CBS-global" (§6.6): 2 × 1024 sets vs 1 × 32 sets.
        assert_eq!(cbs.atd_bits / sbar.atd_bits, 64);
    }

    #[test]
    fn lin_overhead_is_dominated_by_cost_q_fields() {
        let p = OverheadParams::paper_baseline();
        let o = lin_overhead(&p);
        assert_eq!(o.cost_q_bits, 16384 * 3);
        assert_eq!(o.mshr_bits, 32 * 10);
        assert!(o.cost_q_bits > 10 * o.mshr_bits);
    }

    #[test]
    fn fewer_leader_sets_cost_proportionally_less() {
        let mut p = OverheadParams::paper_baseline();
        let full = sbar_overhead(&p).atd_bits;
        p.leader_sets = 8;
        assert_eq!(sbar_overhead(&p).atd_bits * 4, full);
    }
}
