//! The policy-selector (PSEL) saturating counter (paper §6.1).

/// A saturating up/down counter whose most-significant bit selects the
/// winning policy.
///
/// "Unless stated otherwise, we use a 6-bit PSEL counter … All PSEL updates
/// are done using saturating arithmetic. If the most significant bit (MSB)
/// of PSEL is 1, the output of PSEL indicates that LIN is doing better."
/// The counter is incremented/decremented by the `cost_q` of divergent
/// misses, not by 1 — this is what makes CBS select on *stall cycles*
/// rather than raw miss counts (§6.1).
///
/// # Example
///
/// ```
/// use mlpsim_core::psel::Psel;
/// let mut p = Psel::new(6);
/// assert!(!p.msb_set()); // starts neutral-low
/// for _ in 0..6 { p.inc_by(7); }
/// assert!(p.msb_set());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Psel {
    value: u32,
    max: u32,
    msb: u32,
}

impl Psel {
    /// Creates a `bits`-wide counter initialized to the midpoint
    /// (`2^(bits-1)` − 1, just below the MSB threshold, i.e. favoring the
    /// baseline until evidence accumulates).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 31`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "PSEL width must be 1..=31 bits");
        let max = (1u32 << bits) - 1;
        let msb = 1u32 << (bits - 1);
        Psel {
            value: msb - 1,
            max,
            msb,
        }
    }

    /// The paper's default: a 6-bit counter.
    pub fn paper_default() -> Self {
        Psel::new(6)
    }

    /// Current raw value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Saturating maximum.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Whether the MSB is set (the MLP-aware policy is winning).
    pub fn msb_set(&self) -> bool {
        self.value & self.msb != 0
    }

    /// Saturating increment by `amount` (the cost_q of a divergent miss).
    pub fn inc_by(&mut self, amount: u32) {
        self.value = self.value.saturating_add(amount).min(self.max);
        crate::invariant!(
            self.value <= self.max,
            "PSEL must saturate at its width's maximum"
        );
    }

    /// Saturating decrement by `amount`.
    pub fn dec_by(&mut self, amount: u32) {
        self.value = self.value.saturating_sub(amount);
        crate::invariant!(
            self.value <= self.max,
            "PSEL must saturate at its width's maximum"
        );
    }

    /// Whether the counter is pinned at either rail (0 or max). Useful for
    /// telemetry: a saturated PSEL means one policy is winning decisively.
    pub fn is_saturated(&self) -> bool {
        self.value == 0 || self.value == self.max
    }
}

/// Observes a [`Psel`] across updates and reports MSB flips — the moments
/// the follower sets actually switch policy. Engines keep one watch per
/// counter so telemetry can count flips and measure dwell times.
#[derive(Clone, Copy, Debug)]
pub struct PselWatch {
    last_msb: bool,
}

impl PselWatch {
    /// Starts watching from `p`'s current state.
    pub fn new(p: &Psel) -> Self {
        PselWatch {
            last_msb: p.msb_set(),
        }
    }

    /// Call after every update to `p`; returns `Some(new_msb)` when the
    /// MSB changed since the last observation.
    pub fn observe(&mut self, p: &Psel) -> Option<bool> {
        let msb = p.msb_set();
        if msb != self.last_msb {
            self.last_msb = msb;
            Some(msb)
        } else {
            None
        }
    }
}

impl Default for Psel {
    fn default() -> Self {
        Psel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_bit_counter_saturates_at_63() {
        let mut p = Psel::new(6);
        for _ in 0..100 {
            p.inc_by(7);
        }
        assert_eq!(p.value(), 63);
        assert!(p.msb_set());
        for _ in 0..100 {
            p.dec_by(7);
        }
        assert_eq!(p.value(), 0);
        assert!(!p.msb_set());
    }

    #[test]
    fn starts_just_below_threshold() {
        let p = Psel::new(6);
        assert_eq!(p.value(), 31);
        assert!(!p.msb_set());
        let mut p2 = p;
        p2.inc_by(1);
        assert!(p2.msb_set());
    }

    #[test]
    fn msb_flips_at_midpoint() {
        let mut p = Psel::new(4); // max 15, msb at 8
        p.inc_by(20);
        assert_eq!(p.value(), 15);
        p.dec_by(8); // 7 < 8
        assert!(!p.msb_set());
        p.inc_by(1); // 8
        assert!(p.msb_set());
    }

    #[test]
    fn seven_bit_variant_for_cbs_global() {
        // Footnote 7: CBS-global uses a 7-bit PSEL.
        let p = Psel::new(7);
        assert_eq!(p.max(), 127);
        assert_eq!(p.value(), 63);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Psel::new(0);
    }
}
