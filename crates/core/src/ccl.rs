//! The Cost Calculation Logic (CCL) — Algorithm 1 of the paper.
//!
//! ```text
//! init_mlp_cost(miss):      /* gets called when miss enters MSHR */
//!     miss.mlp_cost = 0
//! update_mlp_cost():        /* gets called every cycle */
//!     N = number of outstanding demand misses in MSHR
//!     for each demand miss in the MSHR:
//!         miss.mlp_cost += 1/N
//! ```
//!
//! Running this literally every cycle is wasteful in software: `N` only
//! changes when an entry is allocated, freed, or promoted to demand status.
//! [`Ccl::advance`] therefore adds `Δcycles / N` to every demand entry at
//! each such event, which sums to exactly the same value as the per-cycle
//! loop. The unit tests cross-check against a literal per-cycle
//! implementation.
//!
//! The paper's footnote 3 notes that a real design would time-share four
//! adders over the 32 MSHR entries instead of dedicating one adder per
//! entry, "with only a negligible effect". [`AdderMode::Shared`] models
//! that: with `N` demand entries and `A` adders, each entry is only updated
//! every `ceil(N/A)` cycles, so accumulation advances in coarser steps. The
//! `ablate_adders` experiment quantifies the (tiny) difference.

use mlpsim_mem::Mshr;

/// How many adders the CCL hardware has available.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdderMode {
    /// One adder per MSHR entry: every demand entry is updated every cycle
    /// (the idealized Algorithm 1).
    PerEntry,
    /// `adders` adders time-shared round-robin over the demand entries
    /// (the paper's practical design uses 4).
    Shared {
        /// Number of physical adders.
        adders: u32,
    },
}

impl AdderMode {
    /// The paper's practical configuration: 4 time-shared adders.
    pub fn paper_shared() -> Self {
        AdderMode::Shared { adders: 4 }
    }
}

/// The cost-calculation logic: accumulates MLP-based cost into the
/// `mlp_cost` field of demand MSHR entries.
///
/// Drive it by calling [`Ccl::advance`] with the current cycle *before*
/// every MSHR mutation (allocate / free / promote) and before reading a
/// completed entry's cost. The CCL is oblivious to what the entries mean —
/// it implements exactly Algorithm 1.
///
/// # Example
///
/// ```
/// use mlpsim_core::ccl::{AdderMode, Ccl};
/// use mlpsim_mem::Mshr;
/// use mlpsim_cache::addr::LineAddr;
///
/// let mut mshr = Mshr::new(4);
/// let mut ccl = Ccl::new(AdderMode::PerEntry);
/// let a = mshr.allocate(LineAddr(0), 0, 444, true).unwrap();
/// let b = mshr.allocate(LineAddr(1), 0, 444, true).unwrap();
/// ccl.advance(&mut mshr, 444); // two parallel misses split the time
/// assert_eq!(mshr.entry(a).mlp_cost, 222.0);
/// assert_eq!(mshr.entry(b).mlp_cost, 222.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ccl {
    mode: AdderMode,
    last_cycle: u64,
    gate_open: bool,
}

impl Ccl {
    /// Creates a CCL in the given adder mode, starting at cycle 0, with
    /// accumulation enabled every cycle (the paper's default).
    pub fn new(mode: AdderMode) -> Self {
        Ccl {
            mode,
            last_cycle: 0,
            gate_open: true,
        }
    }

    /// Opens or closes the accumulation gate. With the gate closed,
    /// [`Ccl::advance`] moves time without accruing cost. This implements
    /// the paper's footnote-4 variant ("increasing the mlp_cost only
    /// during cycles when there is a full window stall"): the simulator
    /// opens the gate for stall spans and closes it otherwise.
    pub fn set_gate(&mut self, open: bool) {
        self.gate_open = open;
    }

    /// Whether the accumulation gate is open.
    pub fn gate_open(&self) -> bool {
        self.gate_open
    }

    /// The adder configuration.
    pub fn mode(&self) -> AdderMode {
        self.mode
    }

    /// The cycle up to which costs have been accumulated.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// Accumulates cost over the interval `(last_cycle, now]` given the
    /// *current* MSHR occupancy, then remembers `now`.
    ///
    /// Must be called before any event that changes the demand-miss count
    /// so the interval is charged at the correct `N`.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than a previously seen cycle (time runs
    /// forward).
    pub fn advance(&mut self, mshr: &mut Mshr, now: u64) {
        assert!(now >= self.last_cycle, "CCL time must be monotonic");
        // The assert above makes the subtraction exact.
        let delta = now.wrapping_sub(self.last_cycle);
        self.last_cycle = now;
        if delta == 0 || !self.gate_open {
            return;
        }
        let n = mshr.demand_count();
        if n == 0 {
            return;
        }
        let increment = match self.mode {
            AdderMode::PerEntry => crate::convert::cycles_f64(delta) / crate::convert::count_f64(n),
            AdderMode::Shared { adders } => {
                // Each entry is visited every `stride` cycles and receives
                // `stride / N` per visit; over `delta` cycles it gets
                // floor(delta / stride) visits. The fractional remainder of
                // the interval is dropped, modeling the update an entry
                // misses while the adders are visiting its peers.
                let stride = crate::convert::idx_u64(n).div_ceil(u64::from(adders.max(1)));
                if stride <= 1 {
                    crate::convert::cycles_f64(delta) / crate::convert::count_f64(n)
                } else {
                    let visits = delta / stride;
                    // lint: bounded("visits = delta / stride, so visits * stride <= delta")
                    crate::convert::cycles_f64(visits * stride) / crate::convert::count_f64(n)
                }
            }
        };
        crate::invariant!(
            increment.is_finite() && increment >= 0.0,
            "Algorithm 1 increment must be finite and non-negative"
        );
        for (_, e) in mshr.iter_mut() {
            if e.is_demand {
                e.mlp_cost += increment;
            }
        }
    }
}

impl Default for Ccl {
    fn default() -> Self {
        Ccl::new(AdderMode::PerEntry)
    }
}

/// A literal, cycle-by-cycle implementation of Algorithm 1, used by tests
/// and the adder-sharing ablation as the ground truth. O(cycles × entries);
/// do not use in full simulations.
pub fn update_mlp_cost_per_cycle(mshr: &mut Mshr, cycles: u64) {
    for _ in 0..cycles {
        let n = mshr.demand_count();
        if n == 0 {
            continue;
        }
        let inc = 1.0 / crate::convert::count_f64(n);
        for (_, e) in mshr.iter_mut() {
            if e.is_demand {
                e.mlp_cost += inc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::addr::LineAddr;

    fn costs(mshr: &Mshr) -> Vec<f64> {
        let mut v: Vec<(u64, f64)> = mshr.iter().map(|(_, e)| (e.line.0, e.mlp_cost)).collect();
        v.sort_by_key(|&(l, _)| l);
        v.into_iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn isolated_miss_accumulates_full_latency() {
        let mut mshr = Mshr::new(4);
        let id = mshr.allocate(LineAddr(0), 0, 444, true).unwrap();
        let mut ccl = Ccl::default();
        ccl.advance(&mut mshr, 444);
        assert_eq!(mshr.entry(id).mlp_cost, 444.0);
    }

    #[test]
    fn two_parallel_misses_split_the_cost() {
        let mut mshr = Mshr::new(4);
        let a = mshr.allocate(LineAddr(0), 0, 444, true).unwrap();
        let b = mshr.allocate(LineAddr(1), 0, 460, true).unwrap();
        let mut ccl = Ccl::default();
        // Both in flight for 444 cycles → each accrues 222.
        ccl.advance(&mut mshr, 444);
        assert_eq!(mshr.entry(a).mlp_cost, 222.0);
        let done_a = mshr.free(a);
        assert_eq!(done_a.mlp_cost, 222.0);
        // b alone for 16 more cycles.
        ccl.advance(&mut mshr, 460);
        assert_eq!(mshr.entry(b).mlp_cost, 238.0);
    }

    #[test]
    fn non_demand_entries_neither_pay_nor_dilute() {
        let mut mshr = Mshr::new(4);
        let d = mshr.allocate(LineAddr(0), 0, 444, true).unwrap();
        let w = mshr.allocate(LineAddr(1), 0, 444, false).unwrap();
        let mut ccl = Ccl::default();
        ccl.advance(&mut mshr, 100);
        assert_eq!(
            mshr.entry(d).mlp_cost,
            100.0,
            "demand miss pays full rate: N=1"
        );
        assert_eq!(mshr.entry(w).mlp_cost, 0.0, "writeback accrues nothing");
    }

    #[test]
    fn event_driven_matches_per_cycle_reference() {
        // Build identical MSHR states and charge the same intervals.
        let build = || {
            let mut m = Mshr::new(8);
            m.allocate(LineAddr(0), 0, 1000, true).unwrap();
            m.allocate(LineAddr(1), 0, 1000, true).unwrap();
            m.allocate(LineAddr(2), 0, 1000, true).unwrap();
            m
        };
        let mut fast = build();
        let mut slow = build();
        let mut ccl = Ccl::default();
        ccl.advance(&mut fast, 137);
        update_mlp_cost_per_cycle(&mut slow, 137);
        for (f, s) in costs(&fast).iter().zip(costs(&slow).iter()) {
            assert!((f - s).abs() < 1e-9, "event-driven {f} vs per-cycle {s}");
        }
    }

    #[test]
    fn occupancy_changes_are_charged_piecewise() {
        let mut mshr = Mshr::new(4);
        let a = mshr.allocate(LineAddr(0), 0, 300, true).unwrap();
        let mut ccl = Ccl::default();
        ccl.advance(&mut mshr, 100); // a alone: +100
        let b = mshr.allocate(LineAddr(1), 100, 500, true).unwrap();
        ccl.advance(&mut mshr, 300); // both: +100 each
        let ea = mshr.free(a);
        assert_eq!(ea.mlp_cost, 200.0);
        ccl.advance(&mut mshr, 500); // b alone: +200
        assert_eq!(mshr.entry(b).mlp_cost, 300.0);
    }

    #[test]
    fn shared_adders_underestimate_slightly() {
        // With N=8 demand entries and 4 adders, stride = 2: over an odd
        // interval one visit is lost.
        let build = || {
            let mut m = Mshr::new(8);
            for i in 0..8 {
                m.allocate(LineAddr(i), 0, 1000, true).unwrap();
            }
            m
        };
        let mut exact = build();
        let mut shared = build();
        let mut c_exact = Ccl::new(AdderMode::PerEntry);
        let mut c_shared = Ccl::new(AdderMode::paper_shared());
        c_exact.advance(&mut exact, 445);
        c_shared.advance(&mut shared, 445);
        let e = costs(&exact);
        let s = costs(&shared);
        for (a, b) in e.iter().zip(s.iter()) {
            assert!(b <= a, "shared adders never overshoot");
            assert!(
                (a - b) < 1.0,
                "difference is sub-cycle per paper footnote 3"
            );
        }
    }

    #[test]
    fn shared_adders_match_exact_when_few_entries() {
        // N <= adders → stride 1 → identical behavior.
        let mut m1 = Mshr::new(8);
        let mut m2 = Mshr::new(8);
        for i in 0..3 {
            m1.allocate(LineAddr(i), 0, 1000, true).unwrap();
            m2.allocate(LineAddr(i), 0, 1000, true).unwrap();
        }
        let mut exact = Ccl::new(AdderMode::PerEntry);
        let mut shared = Ccl::new(AdderMode::paper_shared());
        exact.advance(&mut m1, 777);
        shared.advance(&mut m2, 777);
        assert_eq!(costs(&m1), costs(&m2));
    }

    #[test]
    fn zero_delta_advance_is_a_no_op() {
        let mut mshr = Mshr::new(2);
        mshr.allocate(LineAddr(0), 0, 10, true).unwrap();
        let mut ccl = Ccl::default();
        ccl.advance(&mut mshr, 0);
        ccl.advance(&mut mshr, 0);
        assert_eq!(costs(&mshr), vec![0.0]);
    }

    #[test]
    fn closed_gate_moves_time_without_cost() {
        let mut mshr = Mshr::new(2);
        let id = mshr.allocate(LineAddr(0), 0, 400, true).unwrap();
        let mut ccl = Ccl::default();
        ccl.set_gate(false);
        ccl.advance(&mut mshr, 100);
        assert_eq!(mshr.entry(id).mlp_cost, 0.0, "gate closed: no accrual");
        ccl.set_gate(true);
        ccl.advance(&mut mshr, 300);
        assert_eq!(mshr.entry(id).mlp_cost, 200.0, "gate open: full rate");
        assert_eq!(ccl.last_cycle(), 300);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_reversal_panics() {
        let mut mshr = Mshr::new(2);
        let mut ccl = Ccl::default();
        ccl.advance(&mut mshr, 10);
        ccl.advance(&mut mshr, 5);
    }
}
