//! BCL — a basic cost-sensitive LRU engine in the style of Jeong &
//! Dubois, the paper's reference \[8\].
//!
//! The paper notes (§2, §5) that its contribution is the *cost metric*,
//! not the cost-sensitive mechanism: "In general, any cost-sensitive
//! replacement scheme, including the ones proposed in \[8\], can be used
//! for implementing an MLP-aware replacement policy." This module
//! provides that alternative CARE so the claim is testable: plug
//! [`BclEngine`] into the L2 instead of LIN and the MLP-based `cost_q`
//! still steers replacement.
//!
//! The mechanism (following Jeong & Dubois's BCL): the baseline victim is
//! the LRU block. If its cost exceeds the cost of some other block within
//! a bounded depth of the LRU stack, the cheapest such block is evicted
//! instead and the spared block's *credit* is charged; a block whose
//! credit is exhausted is evicted regardless of cost. The credit bounds
//! how long a costly block can squat, which is BCL's defense against the
//! dead-block pathology that pure LIN exhibits on parser/mgrid.

use mlpsim_cache::addr::LineAddr;
use mlpsim_cache::meta::CostQ;
use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};
use std::collections::HashMap;

/// Configuration for [`BclEngine`].
#[derive(Clone, Copy, Debug)]
pub struct BclConfig {
    /// How far up the LRU stack (in recency positions) the engine may look
    /// for a cheaper victim.
    pub depth: u8,
    /// Number of times a costly LRU block may be spared before it is
    /// evicted regardless (its *credit*).
    pub credit: u8,
}

impl BclConfig {
    /// A reasonable default: look 4 positions deep, spare a block at most
    /// 4 times.
    pub fn default_config() -> Self {
        BclConfig {
            depth: 4,
            credit: 4,
        }
    }
}

impl Default for BclConfig {
    fn default() -> Self {
        BclConfig::default_config()
    }
}

/// The BCL replacement engine.
///
/// # Example
///
/// ```
/// use mlpsim_core::bcl::{BclConfig, BclEngine};
/// let engine = BclEngine::new(BclConfig::default_config());
/// assert_eq!(engine.config().depth, 4);
/// ```
#[derive(Clone, Debug)]
pub struct BclEngine {
    config: BclConfig,
    /// Remaining spare-credit per resident costly line.
    credits: HashMap<LineAddr, u8>,
}

impl BclEngine {
    /// Creates a BCL engine.
    pub fn new(config: BclConfig) -> Self {
        BclEngine {
            config,
            credits: HashMap::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> BclConfig {
        self.config
    }

    /// Number of lines currently holding spare credit (diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.credits.len()
    }
}

impl ReplacementEngine for BclEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        let ranks = ctx.set.recency_ranks();
        // Order the valid ways by recency rank (0 = LRU first).
        let mut by_rank: Vec<usize> = ctx.set.valid_ways().collect();
        by_rank.sort_by_key(|&w| ranks[w]);
        let lru_way = by_rank[0];
        let lru_line = ctx.set.line_of(lru_way).expect("valid way");
        let lru_cost = ctx.set.cost_q(lru_way);

        // Cheapest block within the search depth that is cheaper than the
        // LRU block.
        let candidate = by_rank
            .iter()
            .take(usize::from(self.config.depth).min(by_rank.len()))
            .copied()
            .filter(|&w| ctx.set.cost_q(w) < lru_cost)
            .min_by_key(|&w| (ctx.set.cost_q(w), ranks[w]));

        match candidate {
            Some(cheap_way) => {
                // Spare the LRU block, charging its credit.
                let credit = self.credits.entry(lru_line).or_insert(self.config.credit);
                if *credit == 0 {
                    // Credit exhausted: the costly block goes anyway.
                    self.credits.remove(&lru_line);
                    lru_way
                } else {
                    *credit -= 1;
                    if let Some(line) = ctx.set.line_of(cheap_way) {
                        self.credits.remove(&line);
                    }
                    cheap_way
                }
            }
            None => {
                self.credits.remove(&lru_line);
                lru_way
            }
        }
    }

    fn on_access(&mut self, line: LineAddr, _seq: u64, hit: bool, _cost: Option<CostQ>) {
        if hit {
            // A touched block earns its keep: restore its credit.
            self.credits.remove(&line);
        }
    }

    fn name(&self) -> &'static str {
        "bcl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::addr::Geometry;
    use mlpsim_cache::model::CacheModel;

    fn cache(config: BclConfig) -> CacheModel {
        CacheModel::new(
            Geometry::from_sets(1, 4, 64),
            Box::new(BclEngine::new(config)),
        )
    }

    /// Fill the 4-way set with lines 0..4; line 0 (the LRU) carries the
    /// given cost, others are free.
    fn prime(c: &mut CacheModel, lru_cost: CostQ) {
        for i in 0..4u64 {
            c.access(LineAddr(i), false, i);
            c.record_serviced_cost(LineAddr(i), if i == 0 { lru_cost } else { 0 });
        }
    }

    #[test]
    fn cheap_lru_block_is_evicted_normally() {
        let mut c = cache(BclConfig::default_config());
        prime(&mut c, 0);
        let r = c.access(LineAddr(10), false, 10);
        assert_eq!(
            r.evicted.unwrap().line,
            LineAddr(0),
            "plain LRU when costs tie"
        );
    }

    #[test]
    fn costly_lru_block_is_spared_for_a_cheaper_one() {
        let mut c = cache(BclConfig::default_config());
        prime(&mut c, 7);
        let r = c.access(LineAddr(10), false, 10);
        // Way with line 1 is the cheapest non-LRU block in depth.
        assert_eq!(r.evicted.unwrap().line, LineAddr(1));
        assert!(c.contains(LineAddr(0)), "costly block spared");
    }

    #[test]
    fn credit_exhaustion_evicts_the_squatter() {
        let mut c = cache(BclConfig {
            depth: 4,
            credit: 2,
        });
        prime(&mut c, 7);
        // Each new fill spares line 0 once; after `credit` spares it goes.
        let mut evicted = Vec::new();
        for (i, l) in (20..26u64).enumerate() {
            let r = c.access(LineAddr(l), false, 10 + i as u64);
            evicted.push(r.evicted.unwrap().line);
        }
        assert!(
            evicted.contains(&LineAddr(0)),
            "line 0 must eventually be evicted, got {evicted:?}"
        );
        // And it must not have been the first victim (it was spared).
        assert_ne!(evicted[0], LineAddr(0));
    }

    #[test]
    fn hit_restores_credit() {
        let mut c = cache(BclConfig {
            depth: 4,
            credit: 1,
        });
        prime(&mut c, 7);
        // Burn the credit once.
        c.access(LineAddr(20), false, 10);
        // Touch line 0: credit restored.
        c.access(LineAddr(0), false, 11);
        // Line 0 is now MRU anyway; make it LRU again by touching others.
        for (i, l) in [20u64, 2, 3].iter().enumerate() {
            c.access(LineAddr(*l), false, 12 + i as u64);
        }
        let r = c.access(LineAddr(30), false, 20);
        assert_ne!(
            r.evicted.unwrap().line,
            LineAddr(0),
            "refreshed credit spares it again"
        );
    }

    #[test]
    fn bcl_bounds_the_dead_block_pathology() {
        // A dead cost-7 block plus a live low-cost working set: under LIN
        // the dead block squats forever; under BCL it is gone after
        // `credit` spares.
        let g = Geometry::from_sets(1, 2, 64);
        let mut c = CacheModel::new(
            g,
            Box::new(BclEngine::new(BclConfig {
                depth: 2,
                credit: 3,
            })),
        );
        c.access(LineAddr(0), false, 0);
        c.record_serviced_cost(LineAddr(0), 7); // dead, never re-accessed
        let mut dead_survived = 0;
        for i in 1..20u64 {
            c.access(LineAddr(i), false, i);
            if c.contains(LineAddr(0)) {
                dead_survived += 1;
            }
        }
        assert!(
            dead_survived <= 4,
            "dead block evicted after its credit ({dead_survived})"
        );
    }
}
