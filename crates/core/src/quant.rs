//! Quantization of `mlp-cost` into the 3-bit `cost_q` (paper Fig. 3b).
//!
//! "In a real implementation, to limit storage, the value of mlp-cost can
//! be quantized to a few bits … It converts the value of mlp-cost into a
//! 3-bit quantized value" (§5). The intervals are 60 cycles wide:
//!
//! | mlp-cost (cycles) | cost_q |
//! |---|---|
//! | 0–59    | 0 |
//! | 60–119  | 1 |
//! | 120–179 | 2 |
//! | 180–239 | 3 |
//! | 240–299 | 4 |
//! | 300–359 | 5 |
//! | 360–419 | 6 |
//! | 420+    | 7 |

use mlpsim_cache::meta::{CostQ, COST_Q_MAX};

/// Width of one quantization interval in cycles (Fig. 3b).
pub const COST_Q_INTERVAL_CYCLES: f64 = 60.0;

/// Integer twin of [`COST_Q_INTERVAL_CYCLES`] for exact label arithmetic.
pub const COST_Q_INTERVAL_CYCLES_INT: u32 = 60;

/// Quantizes an `mlp-cost` value (in cycles) into the 3-bit `cost_q`.
///
/// Negative inputs (which cannot arise from Algorithm 1 but might from
/// user code) quantize to 0.
///
/// # Example
///
/// ```
/// use mlpsim_core::quant::quantize;
/// assert_eq!(quantize(0.0), 0);
/// assert_eq!(quantize(59.9), 0);
/// assert_eq!(quantize(60.0), 1);
/// assert_eq!(quantize(444.0), 7); // an isolated miss
/// ```
#[inline]
pub fn quantize(mlp_cost_cycles: f64) -> CostQ {
    if mlp_cost_cycles <= 0.0 {
        return 0;
    }
    let bucket = crate::convert::trunc_u64(mlp_cost_cycles / COST_Q_INTERVAL_CYCLES);
    let q = CostQ::try_from(bucket.min(u64::from(COST_Q_MAX)))
        .expect("min with COST_Q_MAX (7) always fits in the 3-bit CostQ");
    crate::invariant!(q <= COST_Q_MAX, "cost_q is a 3-bit value");
    q
}

/// The inclusive-exclusive cycle range `[lo, hi)` covered by a `cost_q`
/// value; the top bucket is open-ended (`hi` = `f64::INFINITY`).
///
/// # Panics
///
/// Panics if `cost_q > 7`.
pub fn bucket_range(cost_q: CostQ) -> (f64, f64) {
    assert!(cost_q <= COST_Q_MAX, "cost_q is a 3-bit value");
    // lint: bounded("f64 arithmetic saturates to inf; no integer overflow")
    let lo = f64::from(cost_q) * COST_Q_INTERVAL_CYCLES;
    let hi = if cost_q == COST_Q_MAX {
        f64::INFINITY
    } else {
        // lint: bounded("f64 arithmetic saturates to inf; no integer overflow")
        lo + COST_Q_INTERVAL_CYCLES
    };
    (lo, hi)
}

/// Human-readable label for a `cost_q` bucket, as used on the x-axis of the
/// paper's Figures 2 and 5 ("0", "60", …, "420").
///
/// # Panics
///
/// Panics if `cost_q > 7`.
pub fn bucket_label(cost_q: CostQ) -> String {
    assert!(cost_q <= COST_Q_MAX, "cost_q is a 3-bit value");
    // lint: bounded("cost_q <= 7 (asserted above) and the interval is 60: max 420")
    let lo = u32::from(cost_q) * COST_Q_INTERVAL_CYCLES_INT;
    if cost_q == COST_Q_MAX {
        format!("{lo}+")
    } else {
        format!("{lo}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_figure_3b_intervals() {
        let cases = [
            (0.0, 0),
            (59.999, 0),
            (60.0, 1),
            (119.0, 1),
            (120.0, 2),
            (180.0, 3),
            (240.0, 4),
            (300.0, 5),
            (360.0, 6),
            (419.9, 6),
            (420.0, 7),
            (444.0, 7),
            (10_000.0, 7),
        ];
        for (cycles, expect) in cases {
            assert_eq!(quantize(cycles), expect, "quantize({cycles})");
        }
    }

    #[test]
    fn negative_and_zero_quantize_to_zero() {
        assert_eq!(quantize(-1.0), 0);
        assert_eq!(quantize(0.0), 0);
    }

    #[test]
    fn bucket_ranges_tile_the_axis() {
        for q in 0..7u8 {
            let (lo, hi) = bucket_range(q);
            let (next_lo, _) = bucket_range(q + 1);
            assert_eq!(hi, next_lo);
            assert_eq!(quantize(lo), q);
            assert_eq!(quantize(hi - 0.001), q);
        }
        let (lo, hi) = bucket_range(7);
        assert_eq!(lo, 420.0);
        assert!(hi.is_infinite());
    }

    #[test]
    fn labels_match_axis_of_figure2() {
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(3), "180");
        assert_eq!(bucket_label(7), "420+");
    }

    #[test]
    #[should_panic(expected = "3-bit")]
    fn bucket_range_rejects_wide_values() {
        let _ = bucket_range(8);
    }

    #[test]
    fn integer_interval_twin_stays_consistent() {
        assert_eq!(
            f64::from(COST_Q_INTERVAL_CYCLES_INT),
            COST_Q_INTERVAL_CYCLES
        );
    }
}
