//! Documented numeric conversions for the cost model.
//!
//! Lint rule D3 bans bare `as` casts in this crate: Algorithm 1's cost
//! accumulation, the 3-bit `cost_q` quantization, and the PSEL/leader-set
//! index arithmetic all have hard numeric invariants, and a silent
//! truncation in any of them corrupts results without failing a test.
//! Every conversion the model needs is therefore spelled as one of these
//! helpers, each stating why it cannot lose information on reachable
//! inputs — and asserting so under the `invariants` feature. The residual
//! `as` casts live here, one per helper, under audited allow-pragmas.

/// A `u64` cycle count (or byte count) as `f64`.
///
/// Exact for values below 2^53. A simulation would need to run for 2^53
/// cycles (~104 days of simulated 4 GHz time; our longest runs are ~10^8
/// cycles) or model a 9-petabyte cache before this rounds, and rounding —
/// not truncation — is the worst case.
#[inline]
pub fn cycles_f64(x: u64) -> f64 {
    invariant!(
        x < (1u64 << 53),
        "cycle/byte count {x} exceeds f64 mantissa"
    );
    // lint: allow(D3, "exact below 2^53, asserted under the invariants feature")
    x as f64
}

/// A `usize` entry/element count as `f64` (the `N` divisor of Algorithm 1,
/// table sizes, …). Counts are bounded by MSHR capacity, set counts, or
/// trace length — all far below 2^53, where the conversion is exact.
#[inline]
pub fn count_f64(x: usize) -> f64 {
    invariant!(x < (1usize << 53), "count {x} exceeds f64 mantissa");
    // lint: allow(D3, "exact below 2^53, asserted under the invariants feature")
    x as f64
}

/// Truncates a finite non-negative `f64` to `u64` — the quantization
/// step's `floor(mlp_cost / interval)`. Saturates NaN/negative to 0 and
/// +inf to `u64::MAX` (Rust's `as` semantics), which the invariants
/// feature rejects as model-unsound before the saturation can matter.
#[inline]
#[allow(clippy::cast_possible_truncation)] // the audited cast this module exists for
pub fn trunc_u64(x: f64) -> u64 {
    invariant!(
        x.is_finite() && x >= 0.0,
        "truncating unrepresentable f64 {x} (cost must be finite and non-negative)"
    );
    // lint: allow(D3, "saturating by language semantics; domain asserted above")
    x as u64
}

/// Truncates a finite non-negative `f64` that provably fits in `u32`
/// (bit-width computations in the overhead model: `log2(sets).ceil()` and
/// friends — a cache would need 2^32 sets to overflow).
#[inline]
#[allow(clippy::cast_possible_truncation)] // the audited cast this module exists for
pub fn trunc_u32(x: f64) -> u32 {
    invariant!(
        x.is_finite() && (0.0..=f64::from(u32::MAX)).contains(&x),
        "f64 {x} out of u32 range"
    );
    // lint: allow(D3, "saturating by language semantics; domain asserted above")
    x as u32
}

/// A `u32` set/constituency index as `usize`. Exact: every supported
/// target has at least 32-bit pointers (the workspace's tag stores alone
/// rule out 16-bit hosts).
#[inline]
pub fn idx(x: u32) -> usize {
    // lint: allow(D3, "u32 -> usize is widening on every supported target")
    x as usize
}

/// A `usize` index/count as `u64`. Exact on every supported target
/// (pointers are at most 64 bits).
#[inline]
pub fn idx_u64(x: usize) -> u64 {
    // lint: allow(D3, "usize -> u64 is widening on every supported target")
    x as u64
}

/// A `usize` index as `u32`, for the leader-set math whose set indices
/// are architecturally 32-bit. Checked: panics (with context) if the
/// index genuinely exceeds `u32` — which means a caller built a cache
/// with more than 4 G sets and truncation would corrupt set selection.
#[inline]
pub fn idx_u32(x: usize) -> u32 {
    u32::try_from(x).expect("set/constituency index fits the architectural 32 bits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_round_trips() {
        for v in [0u64, 1, 444, 1 << 40, (1 << 53) - 1] {
            assert_eq!(cycles_f64(v), v as f64);
            assert_eq!(trunc_u64(cycles_f64(v)), v);
        }
        assert_eq!(count_f64(32), 32.0);
        assert_eq!(idx(7), 7usize);
        assert_eq!(idx_u64(9), 9u64);
        assert_eq!(idx_u32(1024), 1024u32);
    }

    #[test]
    fn trunc_is_floor_for_positive() {
        assert_eq!(trunc_u64(7.99), 7);
        assert_eq!(trunc_u32(10.01), 10);
    }

    #[cfg(feature = "invariants")]
    #[test]
    #[should_panic(expected = "finite")]
    fn invariants_reject_nan_cost() {
        let _ = trunc_u64(f64::NAN);
    }

    #[cfg(feature = "invariants")]
    #[test]
    #[should_panic(expected = "u32 range")]
    fn invariants_reject_oversized_width() {
        let _ = trunc_u32(1e300);
    }

    #[test]
    #[should_panic(expected = "architectural")]
    fn idx_u32_rejects_wild_indices() {
        let _ = idx_u32(usize::MAX);
    }
}
