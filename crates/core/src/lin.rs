//! The Linear (LIN) replacement policy (paper §5.1, Eq. 2).

use mlpsim_cache::policy::{ReplacementEngine, VictimCtx};

/// The LIN policy: victim = `argmin_i { R(i) + λ · cost_q(i) }`, where
/// `R(i)` is the LRU-stack position (0 = LRU) and `cost_q(i)` the stored
/// 3-bit quantized MLP-based cost.
///
/// "In case of a tie for the minimum value of `{R + λ·cost_q}`, the
/// candidate with the smallest recency value is selected. Note that LRU is
/// a special case of the LIN policy with λ = 0." The paper's default is
/// λ = 4 ([`LinEngine::paper_default`]).
///
/// # Example
///
/// The policy retains recent *and* costly blocks: a block at the LRU
/// position with `cost_q = 7` (score 0 + 4·7 = 28) outlives every block
/// with `cost_q = 0` in a 16-way cache (max recency score 15).
///
/// ```
/// use mlpsim_core::lin::LinEngine;
/// let lin = LinEngine::new(4);
/// assert_eq!(lin.lambda(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinEngine {
    lambda: u32,
}

impl LinEngine {
    /// Creates a LIN engine with the given λ.
    pub fn new(lambda: u32) -> Self {
        LinEngine { lambda }
    }

    /// The paper's default configuration, λ = 4.
    pub fn paper_default() -> Self {
        LinEngine::new(4)
    }

    /// The cost weight λ.
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// The LIN score of a way: `R + λ · cost_q`. Lower scores are evicted
    /// first.
    #[inline]
    pub fn score(&self, recency_rank: u8, cost_q: u8) -> u32 {
        u32::from(recency_rank) + self.lambda * u32::from(cost_q)
    }
}

impl ReplacementEngine for LinEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        let ranks = ctx.set.recency_ranks();
        let mut best_way = None;
        let mut best_score = u32::MAX;
        let mut best_rank = u8::MAX;
        for way in ctx.set.valid_ways() {
            let rank = ranks[way];
            let score = self.score(rank, ctx.set.cost_q(way));
            // Strict less-than on score; ties break to the smallest
            // recency rank as the paper specifies.
            if score < best_score || (score == best_score && rank < best_rank) {
                best_way = Some(way);
                best_score = score;
                best_rank = rank;
            }
        }
        best_way.expect("victim() is only invoked on full sets")
    }

    fn name(&self) -> &'static str {
        "lin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::addr::{Geometry, LineAddr};
    use mlpsim_cache::lru::LruEngine;
    use mlpsim_cache::model::CacheModel;

    /// Fills a 4-way set with lines of given cost_q values in order (way i
    /// gets cost[i]; later fills are more recent).
    fn filled_cache(costs: &[u8]) -> CacheModel {
        let g = Geometry::from_sets(1, costs.len() as u16, 64);
        let mut c = CacheModel::new(g, Box::new(LinEngine::paper_default()));
        for (i, &q) in costs.iter().enumerate() {
            c.access(LineAddr(i as u64), false, i as u64);
            c.record_serviced_cost(LineAddr(i as u64), q);
        }
        c
    }

    #[test]
    fn high_cost_lru_block_survives_low_cost_recents() {
        // Way 0 (LRU, rank 0) has cost 7 → score 28.
        // Ways 1..3 have cost 0 → scores 1, 2, 3. Victim must be way 1.
        let mut c = filled_cache(&[7, 0, 0, 0]);
        let res = c.access(LineAddr(100), false, 10);
        assert_eq!(res.evicted.unwrap().line, LineAddr(1));
    }

    #[test]
    fn lambda_zero_degenerates_to_lru() {
        let g = Geometry::from_sets(1, 4, 64);
        let mut lin0 = CacheModel::new(g, Box::new(LinEngine::new(0)));
        let mut lru = CacheModel::new(g, Box::new(LruEngine::new()));
        // A pseudo-random access pattern with costs attached.
        let mut x = 12345u64;
        for seq in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr(x % 9);
            let q = (x >> 32) as u8 % 8;
            let a = lin0.access(line, false, seq);
            let b = lru.access(line, false, seq);
            lin0.record_serviced_cost(line, q);
            assert_eq!(a.hit, b.hit, "LIN(0) must be exactly LRU at seq {seq}");
            assert_eq!(a.evicted.map(|e| e.line), b.evicted.map(|e| e.line));
        }
    }

    #[test]
    fn tie_breaks_to_smallest_recency() {
        // λ=1: way0 rank0 cost2 → 2; way1 rank1 cost1 → 2; way2 rank2 cost0 → 2.
        // All tie at 2 → evict way with smallest recency = way 0.
        let g = Geometry::from_sets(1, 3, 64);
        let mut c = CacheModel::new(g, Box::new(LinEngine::new(1)));
        for (i, q) in [2u8, 1, 0].iter().enumerate() {
            c.access(LineAddr(i as u64), false, i as u64);
            c.record_serviced_cost(LineAddr(i as u64), *q);
        }
        let res = c.access(LineAddr(50), false, 5);
        assert_eq!(res.evicted.unwrap().line, LineAddr(0));
    }

    #[test]
    fn cost_weight_scales_with_lambda() {
        // Fill order 0..3 → way i has recency rank i; way0 carries cost 1.
        // λ=1: scores 1,1,2,3 → tie way0/way1 → way0 (smaller rank).
        // λ=4: scores 4,1,2,3 → way1.
        let build = |lambda| {
            let g = Geometry::from_sets(1, 4, 64);
            let mut c = CacheModel::new(g, Box::new(LinEngine::new(lambda)));
            for i in 0..4u64 {
                c.access(LineAddr(i), false, i);
            }
            c.record_serviced_cost(LineAddr(0), 1);
            c
        };
        let mut c1 = build(1);
        assert_eq!(
            c1.access(LineAddr(9), false, 9).evicted.unwrap().line,
            LineAddr(0)
        );
        let mut c4 = build(4);
        assert_eq!(
            c4.access(LineAddr(9), false, 9).evicted.unwrap().line,
            LineAddr(1)
        );
    }

    #[test]
    fn figure1_loop_under_lin_protects_isolated_blocks() {
        // The paper's Figure 1 access pattern on a 4-entry fully-associative
        // cache: P1..P4 are parallel-miss blocks (cost_q low), S1..S3 are
        // isolated-miss blocks (cost_q 7). After warm-up, LIN must never
        // evict an S block.
        let g = Geometry::from_sets(1, 4, 64);
        let mut c = CacheModel::new(g, Box::new(LinEngine::paper_default()));
        let p = [LineAddr(1), LineAddr(2), LineAddr(3), LineAddr(4)];
        let s = [LineAddr(11), LineAddr(12), LineAddr(13)];
        let mut seq = 0u64;
        let mut access = |c: &mut CacheModel, line: LineAddr, q: u8| {
            let r = c.access(line, false, seq);
            if !r.hit {
                c.record_serviced_cost(line, q);
            }
            seq += 1;
            r
        };
        // Warm one iteration.
        for &l in &p {
            access(&mut c, l, 1);
        }
        for &l in p.iter().rev() {
            access(&mut c, l, 1);
        }
        for &l in &s {
            access(&mut c, l, 7);
        }
        // Steady-state iterations: S blocks always hit.
        for _ in 0..10 {
            for &l in &p {
                access(&mut c, l, 1);
            }
            for &l in p.iter().rev() {
                access(&mut c, l, 1);
            }
            for &l in &s {
                let r = access(&mut c, l, 7);
                assert!(r.hit, "LIN must keep isolated-miss blocks resident");
            }
        }
    }
}
