#![allow(clippy::unwrap_used)] // test code: panics are failures, not bugs

//! Property-based tests for the trace characterizer (ISSUE 10 satellite):
//! histogram mass conservation, per-set stack distances permutation-
//! consistent with `cache::lru`, and a deterministic, scale-invariant
//! Zipf fit.

use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::model::CacheModel;
use mlpsim_model::characterize::{profile_trace, CharacterizeConfig};
use mlpsim_model::zipf;
use mlpsim_trace::record::{Access, AccessKind, Trace};
use proptest::prelude::*;

fn trace_of(lines: &[u64], stores: &[bool]) -> Trace {
    Trace::from_accesses(
        lines
            .iter()
            .zip(stores.iter().cycle())
            .map(|(&line, &st)| Access {
                line,
                kind: if st {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                gap: 0,
            })
            .collect(),
    )
}

proptest! {
    /// The reuse-distance histogram plus cold accesses accounts for every
    /// access exactly once, and cold accesses equal distinct lines.
    #[test]
    fn histogram_total_equals_access_count(
        lines in prop::collection::vec(0u64..200, 1..2000),
        stores in prop::collection::vec(prop::bool::ANY, 1..8),
    ) {
        let t = trace_of(&lines, &stores);
        let p = profile_trace(&t, &CharacterizeConfig::unfiltered());
        prop_assert_eq!(p.raw_accesses, lines.len() as u64);
        prop_assert_eq!(p.accesses, lines.len() as u64);
        prop_assert_eq!(p.hist.total() + p.cold, p.accesses);
        prop_assert_eq!(p.cold, p.distinct_lines);
        let bucket_mass: u64 = p.buckets().iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_mass, p.hist.total());
        prop_assert_eq!(p.zipf.total, p.accesses);
    }

    /// Per-set stack distances predict a real `cache::lru` model exactly:
    /// the profile's LRU miss count equals the simulated cache's at every
    /// geometry sharing the profiled set count. (The stack property —
    /// what makes distances "permutation-consistent" with LRU's recency
    /// ordering — is that one profile answers every associativity.)
    #[test]
    fn set_profile_is_consistent_with_cache_lru(
        lines in prop::collection::vec(0u64..500, 1..1500),
        sets in 1u32..9,
        ways in 1u16..7,
    ) {
        let t = trace_of(&lines, &[false]);
        let cfg = CharacterizeConfig::unfiltered().with_set_profiles(&[sets]);
        let p = profile_trace(&t, &cfg);
        let g = Geometry::from_sets(sets, ways, 64);
        let mut cache = CacheModel::new(g, Box::new(LruEngine::new()));
        for (seq, a) in t.iter().enumerate() {
            cache.access(LineAddr(a.line), false, seq as u64);
        }
        let predicted = p.set_profile(sets).and_then(|sp| sp.lru_misses(ways));
        prop_assert_eq!(predicted, Some(cache.stats().misses));
    }

    /// The Zipf fit is deterministic (same input → bit-identical output)
    /// and scale-invariant (scaling every count leaves α unchanged up to
    /// float noise in the logs).
    #[test]
    fn zipf_fit_is_deterministic_and_scale_invariant(
        counts in prop::collection::vec(1u64..100_000, 2..300),
        scale in 2u64..1000,
    ) {
        let a = zipf::fit(&counts);
        let b = zipf::fit(&counts);
        prop_assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
        prop_assert_eq!(a.r2.to_bits(), b.r2.to_bits());
        let scaled: Vec<u64> = counts.iter().map(|&c| c * scale).collect();
        let s = zipf::fit(&scaled);
        prop_assert!((a.alpha - s.alpha).abs() < 1e-9, "{} vs {}", a.alpha, s.alpha);
        prop_assert_eq!(a.distinct, s.distinct);
    }
}
