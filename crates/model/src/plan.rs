//! The estimate → prune decision rule of the sweep planner.
//!
//! A sweep cell is (benchmark, policy, geometry). The planner's job is to
//! decide, from the analytical models alone, whether simulating the cell
//! can tell us anything the incumbent policy's standing numbers don't
//! already. The predicted miss-rate delta of a cell vs the incumbent is
//! factored as
//!
//! ```text
//! delta = potential(bench, geometry) × aggressiveness(policy)
//! ```
//!
//! where *potential* is the fraction of accesses whose stack distance
//! lies in the geometry's transition band
//! ([`TraceProfile::transition_mass`]) — the reuses any replacement
//! policy could plausibly flip — and *aggressiveness* is a per-policy
//! prior on how far the policy departs from the incumbent LRU's
//! ordering. The incumbent itself has aggressiveness 0, so its cells are
//! pruned at any positive margin (their numbers are the baseline the
//! deltas are measured against); `--prune-margin 0` keeps every cell
//! (the comparison is strict `<`), which is how CI obtains the unpruned
//! reference run.
//!
//! The rule is deliberately *monotone and transparent*: a cell is pruned
//! iff `delta < margin`, and the reason string states both numbers.
//! What the model cannot see — LIN/SBAR optimize stall cost, not miss
//! count — is documented in DESIGN.md §17; the margin is a bound on
//! predicted *miss-rate* movement only, which is why unknown policies
//! default to aggressiveness 1 (never pruned).

use crate::characterize::TraceProfile;
use crate::estimate::{Estimate, MissRateEstimator, ReuseDistEstimator};
use mlpsim_cache::addr::Geometry;

/// Default `--prune-margin`: half a percent of predicted miss-rate
/// movement. Below this, the simulated tables are indistinguishable from
/// the incumbent's to the precision they print.
pub const DEFAULT_PRUNE_MARGIN: f64 = 0.005;

/// One cell's analytical score and verdict.
#[derive(Clone, Debug)]
pub struct CellScore {
    /// Predicted LRU-model miss rate of the cell's (bench, geometry).
    pub estimate: Estimate,
    /// Predicted |miss-rate delta| vs the incumbent policy.
    pub delta: f64,
    /// `delta < margin` — the cell is not worth a simulation.
    pub pruned: bool,
    /// Human-readable decision, stating delta and margin.
    pub reason: String,
}

/// Prior on how far a policy's eviction ordering departs from the
/// incumbent LRU, as a fraction of the transition-band mass it can flip.
/// Keyed on [`PolicyKind::label`]-style names so the model crate needs no
/// dependency on the policy registry; an unrecognized label scores 1.0 —
/// the planner never prunes what it cannot model.
///
/// [`PolicyKind::label`]: https://docs.rs/mlpsim-cpu
pub fn aggressiveness(policy_label: &str) -> f64 {
    if policy_label == "lru" {
        return 0.0;
    }
    if policy_label == "fifo" || policy_label == "random" {
        return 0.3;
    }
    if let Some(rest) = policy_label.strip_prefix("lin(") {
        if let Some(lambda) = rest.strip_suffix(')').and_then(|n| n.parse::<u32>().ok()) {
            // λ scales how hard LIN reorders by cost; saturate at 1.
            return (f64::from(lambda) / 8.0).min(1.0);
        }
    }
    if policy_label.starts_with("sbar")
        || policy_label.starts_with("cbs")
        || policy_label.starts_with("bcl")
    {
        return 0.5;
    }
    1.0
}

/// Score one cell against the incumbent at the given prune margin.
pub fn score_cell(
    profile: &TraceProfile,
    geometry: Geometry,
    policy_label: &str,
    margin: f64,
) -> CellScore {
    let estimate = ReuseDistEstimator.estimate(profile, geometry);
    let potential = profile.transition_mass(geometry.lines());
    let delta = potential * aggressiveness(policy_label);
    let pruned = delta < margin;
    let reason = if pruned {
        format!("predicted |miss-rate delta| {delta:.4} vs incumbent is below margin {margin:.4}")
    } else {
        format!(
            "predicted |miss-rate delta| {delta:.4} vs incumbent is at/above margin {margin:.4}"
        )
    };
    CellScore {
        estimate,
        delta,
        pruned,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{profile_trace, CharacterizeConfig};
    use mlpsim_trace::record::{Access, Trace};

    #[test]
    fn incumbent_and_unknown_policies_sit_at_the_extremes() {
        assert_eq!(aggressiveness("lru"), 0.0);
        assert_eq!(aggressiveness("belady-oracle"), 1.0);
        assert!(aggressiveness("lin(4)") > aggressiveness("lin(1)"));
        assert_eq!(aggressiveness("lin(64)"), 1.0);
        assert!(aggressiveness("sbar(k=32)") > 0.0);
        assert!(aggressiveness("cbs-local") > 0.0);
    }

    #[test]
    fn margin_zero_keeps_everything_and_lru_is_always_pruned_otherwise() {
        let trace = Trace::from_accesses((0..5000u64).map(|i| Access::load(i % 97, 0)).collect());
        let p = profile_trace(&trace, &CharacterizeConfig::unfiltered());
        let g = Geometry::from_sets(4, 8, 64);
        let kept = score_cell(&p, g, "lru", 0.0);
        assert!(!kept.pruned, "margin 0 must keep the incumbent too");
        let pruned = score_cell(&p, g, "lru", DEFAULT_PRUNE_MARGIN);
        assert!(pruned.pruned);
        assert!(pruned.reason.contains("below margin"), "{}", pruned.reason);
    }

    #[test]
    fn transitional_working_set_survives_the_default_margin() {
        // 97 lines cycling over a 32-line cache: squarely in the
        // transition band, so an aggressive policy is worth simulating.
        let trace = Trace::from_accesses((0..5000u64).map(|i| Access::load(i % 97, 0)).collect());
        let p = profile_trace(&trace, &CharacterizeConfig::unfiltered());
        let g = Geometry::from_sets(4, 8, 64);
        let s = score_cell(&p, g, "lin(4)", DEFAULT_PRUNE_MARGIN);
        assert!(!s.pruned, "delta {} should beat the margin", s.delta);
        assert!(s.delta > 0.1);
    }
}
