//! Exact LRU stack distances in O(distinct lines) memory.
//!
//! The classic Mattson stack algorithm keeps the lines of a trace on a
//! recency stack; the *stack distance* (equivalently, reuse distance over
//! distinct lines) of an access is the number of **distinct** lines
//! touched since the previous access to the same line. A fully
//! associative LRU cache of `C` lines hits exactly the accesses with
//! distance `< C`, so one pass yields the miss count of *every* capacity
//! at once.
//!
//! A naive stack walk is O(n) per access. This implementation is the
//! standard Fenwick-tree formulation: each access occupies a *time slot*,
//! a binary-indexed tree marks which slots hold the **most recent**
//! access to their line, and the distance of a re-access whose previous
//! slot is `p` is `live − prefix(p)` — the number of marked slots after
//! `p`. Slots grow append-only and are compacted (tree rebuilt over the
//! live lines in recency order) whenever the slot array reaches twice the
//! live-line count, so memory stays O(distinct lines) while each access
//! costs O(log distinct) amortized.
//!
//! Determinism: slots and the line → slot map ([`std::collections::BTreeMap`],
//! never a hash map) depend only on the access sequence.

use std::collections::BTreeMap;

/// Exact stack-distance tracker for one reference stream.
#[derive(Clone, Debug)]
pub struct StackDist {
    /// Fenwick tree over time slots, 1-based; +1 marks "this slot holds
    /// the most recent access to its line".
    tree: Vec<i64>,
    /// line → its most recent slot.
    last: BTreeMap<u64, usize>,
    /// slot → the line that was accessed there (possibly stale; a slot is
    /// live iff `last[line_of[slot]] == slot`).
    line_of: Vec<u64>,
    /// Next free slot; slots `0..next` have been written.
    next: usize,
}

impl Default for StackDist {
    fn default() -> Self {
        StackDist::new()
    }
}

impl StackDist {
    /// An empty tracker.
    pub fn new() -> Self {
        StackDist {
            tree: vec![0; 65],
            last: BTreeMap::new(),
            line_of: vec![0; 64],
            next: 0,
        }
    }

    /// Number of distinct lines seen so far.
    pub fn distinct(&self) -> u64 {
        self.last.len() as u64
    }

    /// Record one access. Returns `None` for a cold (first-ever) access
    /// to the line, otherwise `Some(d)` where `d` is the number of
    /// distinct *other* lines accessed since the line was last touched
    /// (`0` for an immediate re-access).
    pub fn record(&mut self, line: u64) -> Option<u64> {
        if self.next == self.line_of.len() {
            self.compact();
        }
        let slot = self.next;
        let dist = match self.last.get(&line).copied() {
            Some(prev) => {
                let live = self.last.len() as u64;
                let at_or_before = self.prefix(prev);
                self.add(prev, -1);
                // `prefix(prev)` counts live slots ≤ prev *including* the
                // line's own mark, so the distinct intermediaries are the
                // live slots strictly after it.
                Some(live - at_or_before)
            }
            None => None,
        };
        self.add(slot, 1);
        self.line_of[slot] = line;
        self.last.insert(line, slot);
        self.next = slot + 1;
        dist
    }

    /// Rebuild the slot space over the live lines in recency order.
    fn compact(&mut self) {
        let mut lines: Vec<u64> = Vec::with_capacity(self.last.len());
        for slot in 0..self.next {
            let line = self.line_of[slot];
            if self.last.get(&line).copied() == Some(slot) {
                lines.push(line);
            }
        }
        let cap = (lines.len() * 2).max(64);
        self.tree = vec![0; cap + 1];
        self.line_of = vec![0; cap];
        for (slot, &line) in lines.iter().enumerate() {
            self.add(slot, 1);
            self.line_of[slot] = line;
            self.last.insert(line, slot);
        }
        self.next = lines.len();
    }

    fn add(&mut self, slot: usize, delta: i64) {
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of live marks in slots `0..=slot`.
    fn prefix(&self, slot: usize) -> u64 {
        let mut i = slot + 1;
        let mut sum = 0i64;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        u64::try_from(sum).expect("live-mark prefix sums are never negative")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_cold_and_immediate_reuse_is_zero() {
        let mut s = StackDist::new();
        assert_eq!(s.record(7), None);
        assert_eq!(s.record(7), Some(0));
        assert_eq!(s.distinct(), 1);
    }

    #[test]
    fn distance_counts_distinct_intermediaries() {
        let mut s = StackDist::new();
        // a b c b a: a's reuse sees {b, c}; b's reuse sees {c}.
        assert_eq!(s.record(1), None);
        assert_eq!(s.record(2), None);
        assert_eq!(s.record(3), None);
        assert_eq!(s.record(2), Some(1));
        assert_eq!(s.record(1), Some(2));
        // Repeated intermediaries count once: a b b b a → distance 1.
        let mut s = StackDist::new();
        s.record(10);
        s.record(20);
        s.record(20);
        s.record(20);
        assert_eq!(s.record(10), Some(1));
    }

    #[test]
    fn compaction_preserves_distances() {
        // A cyclic scan over k lines: after warm-up every access has
        // distance k-1, across many compactions.
        let k = 37u64;
        let mut s = StackDist::new();
        for round in 0..200u64 {
            for line in 0..k {
                let d = s.record(line);
                if round == 0 {
                    assert_eq!(d, None);
                } else {
                    assert_eq!(d, Some(k - 1), "round {round} line {line}");
                }
            }
        }
        assert_eq!(s.distinct(), k);
    }

    #[test]
    fn matches_naive_stack_on_a_mixed_stream() {
        // Deterministic pseudo-random stream vs an O(n) recency list.
        let mut s = StackDist::new();
        let mut naive: Vec<u64> = Vec::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let line = (x >> 33) % 97;
            let expect = naive.iter().position(|&l| l == line).map(|p| p as u64);
            if let Some(p) = expect {
                naive.remove(p as usize);
            }
            naive.insert(0, line);
            assert_eq!(s.record(line), expect);
        }
    }
}
