#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Analytical miss-rate models for sweep planning.
//!
//! The simulator answers "what is the miss rate of bench B under policy P
//! in geometry G" exactly, in seconds per cell. This crate answers the
//! same question *approximately, in microseconds per cell*, which is what
//! makes million-configuration studies tractable (ROADMAP item 2): score
//! the whole grid analytically, prune the cells the model says cannot
//! move the needle, and spend the simulator only on the survivors.
//!
//! Three layers:
//!
//! - [`characterize`]: a one-pass, O(distinct lines) trace characterizer
//!   built on an exact Mattson stack ([`stackdist`]) — reuse-distance
//!   histogram, per-set stack-distance profiles, and per-line popularity
//!   counts feeding a Zipf fit ([`zipf`]).
//! - [`estimate`]: two closed-form estimators over one characterization —
//!   the reuse-distance model with a Poisson associativity correction
//!   (after the ETH fully-associative cache model, arXiv:2001.01653) and
//!   the Fagin/Berthet working-set approximation under a fitted power-law
//!   popularity (arXiv:1705.10738). Each returns a predicted miss rate
//!   *plus a stated error band*; the cross-validation suite holds them to
//!   those bands against the real simulator.
//! - [`plan`]: the estimate → prune decision rule the sweep planner
//!   applies per matrix cell (`--plan estimate` / `--prune-margin`).
//!
//! Everything here is deterministic and fixed-iteration: no wall clock,
//! no ambient randomness, no iterate-until-converged loops (lint rule D2
//! covers this crate). Scoring never touches the simulator — the
//! simulated path stays byte-identical whether or not a plan ran.

pub mod characterize;
pub mod estimate;
pub mod plan;
pub mod stackdist;
pub mod zipf;
