//! Analytical LRU miss-rate estimators over a [`TraceProfile`].
//!
//! Two complementary models, each returning a predicted miss rate **plus
//! a stated error band** that the cross-validation suite enforces against
//! the real simulator:
//!
//! - [`ReuseDistEstimator`] — the reuse-distance model in the style of
//!   the ETH fast analytical cache model (arXiv:2001.01653). When the
//!   profile carries an exact per-set profile at the queried set count,
//!   the LRU miss count is *exact* (band [`EXACT_BAND`], covering only
//!   the simulator's non-cache effects). Otherwise the fully-associative
//!   histogram is corrected for associativity: an access at stack
//!   distance `d` in an `S`-set cache sees `Poisson(d/S)` distinct
//!   intermediaries in its own set, so it misses in a `W`-way set with
//!   probability `P(Poisson(d/S) ≥ W)` (band [`APPROX_BAND`]).
//! - [`ZipfWsEstimator`] — the Fagin/Berthet working-set approximation
//!   (arXiv:1705.10738) under the fitted power-law popularity: solve the
//!   characteristic size `t*` with `∫(1 − e^(−p(x)·t*))dx = C`, then the
//!   steady-state miss ratio is `∫p(x)·e^(−p(x)·t*)dx`. Fully
//!   associative by construction; its band widens as the popularity
//!   curve departs from a power law (low `r2`).
//!
//! Both estimators are pure functions of the profile: fixed-iteration
//! bisection and fixed-node quadrature only (lint rule D2 — no
//! convergence loops), so a cell scores in microseconds and a grid of
//! 10k cells in under a second.

use crate::characterize::TraceProfile;
use mlpsim_cache::addr::Geometry;

/// Error band of the exact per-set path: the set profile reproduces the
/// simulated L2's hit/miss decisions, so the band only covers residual
/// non-cache effects (MSHR merge accounting on re-misses).
pub const EXACT_BAND: f64 = 0.02;

/// Error band of the Poisson-corrected fully-associative path.
pub const APPROX_BAND: f64 = 0.10;

/// A predicted miss rate with its stated uncertainty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Predicted miss rate in `[0, 1]`, over the accesses the profiled
    /// cache level sees.
    pub miss_rate: f64,
    /// Stated absolute error band: the model claims
    /// `|miss_rate − simulated| ≤ band`.
    pub band: f64,
}

/// A closed-form miss-rate model over one trace characterization.
pub trait MissRateEstimator {
    /// Short stable name for reports and JSON documents.
    fn name(&self) -> &'static str;
    /// Predict the LRU miss rate of a `geometry` cache on the profiled
    /// stream.
    fn estimate(&self, profile: &TraceProfile, geometry: Geometry) -> Estimate;
}

/// Reuse-distance estimator with Poisson associativity correction.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReuseDistEstimator;

impl MissRateEstimator for ReuseDistEstimator {
    fn name(&self) -> &'static str {
        "reuse-dist"
    }

    fn estimate(&self, profile: &TraceProfile, geometry: Geometry) -> Estimate {
        if profile.accesses == 0 {
            return Estimate {
                miss_rate: 0.0,
                band: 1.0,
            };
        }
        let total = profile.accesses as f64;
        if let Some(sp) = profile.set_profile(geometry.sets()) {
            if let Some(misses) = sp.lru_misses(geometry.ways()) {
                return Estimate {
                    miss_rate: (misses as f64 / total).clamp(0.0, 1.0),
                    band: EXACT_BAND,
                };
            }
        }
        let sets = f64::from(geometry.sets());
        let mut missed = profile.cold as f64;
        for b in profile.buckets() {
            missed += b.count as f64 * poisson_tail(b.mean / sets, geometry.ways());
        }
        Estimate {
            miss_rate: (missed / total).clamp(0.0, 1.0),
            band: APPROX_BAND,
        }
    }
}

/// `P(Poisson(lambda) ≥ ways)` — the probability that at least `ways`
/// distinct lines of the reuse interval landed in the access's own set,
/// evicting it under set-local LRU. Fixed `ways`-term summation; a
/// `lambda` large enough to underflow `e^(−lambda)` is a certain miss.
fn poisson_tail(lambda: f64, ways: u16) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    let mut term = (-lambda).exp();
    if term == 0.0 {
        return 1.0;
    }
    let mut below = 0.0;
    for k in 0..ways {
        below += term;
        term *= lambda / f64::from(k + 1);
    }
    (1.0 - below).clamp(0.0, 1.0)
}

/// Fagin/Berthet working-set estimator under fitted Zipf popularity.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZipfWsEstimator;

/// Quadrature nodes for the popularity integrals (log-spaced in rank).
const WS_NODES: usize = 256;
/// Bisection steps for the characteristic size `t*`.
const WS_BISECT_STEPS: u32 = 80;

impl MissRateEstimator for ZipfWsEstimator {
    fn name(&self) -> &'static str {
        "zipf-ws"
    }

    fn estimate(&self, profile: &TraceProfile, geometry: Geometry) -> Estimate {
        if profile.accesses == 0 {
            return Estimate {
                miss_rate: 0.0,
                band: 1.0,
            };
        }
        let total = profile.accesses as f64;
        let cold_frac = profile.cold as f64 / total;
        // Two honesty terms: a poor power-law fit (low r²) undermines the
        // popularity model, and a high compulsory share means the warm-
        // cache steady state is extrapolated from few observed reuses.
        let band =
            (0.12 + 0.4 * (1.0 - profile.zipf.r2) + 0.3 * cold_frac.clamp(0.0, 1.0)).min(0.5);
        let n = profile.distinct_lines.max(1) as f64;
        let capacity = f64::from(geometry.sets()) * f64::from(geometry.ways());
        if capacity >= n {
            // The whole footprint fits: only compulsory misses remain.
            return Estimate {
                miss_rate: cold_frac.clamp(0.0, 1.0),
                band,
            };
        }
        let alpha = profile.zipf.alpha.clamp(0.0, 4.0);
        // Normalizer H = ∫_1^n x^(−α) dx so that p(x) = x^(−α)/H.
        let h = integrate_log(n, |x| x.powf(-alpha));
        if h <= 0.0 {
            return Estimate {
                miss_rate: cold_frac.clamp(0.0, 1.0),
                band: 1.0,
            };
        }
        // Characteristic size: W(t) = ∫ (1 − e^(−p(x)·t)) dx grows from 0
        // to n; find t* with W(t*) = capacity by fixed-step bisection.
        // `1 − e^(−y)` is spelled `−expm1(−y)` for small-y accuracy.
        let working_set = |t: f64| integrate_log(n, |x| -(-(x.powf(-alpha) / h) * t).exp_m1());
        let mut lo = 0.0f64;
        let mut hi = 1e18f64;
        for _ in 0..WS_BISECT_STEPS {
            let mid = 0.5 * (lo + hi);
            if working_set(mid) < capacity {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t_star = 0.5 * (lo + hi);
        // Steady-state (request-weighted) miss ratio of the warm cache.
        let miss_irm = integrate_log(n, |x| {
            let p = x.powf(-alpha) / h;
            p * (-p * t_star).exp()
        }) / integrate_log(n, |x| x.powf(-alpha) / h);
        let miss_rate = cold_frac + (1.0 - cold_frac) * miss_irm.clamp(0.0, 1.0);
        Estimate {
            miss_rate: miss_rate.clamp(0.0, 1.0),
            band,
        }
    }
}

/// Trapezoid quadrature of `∫_1^n f(x) dx` on [`WS_NODES`] log-spaced
/// nodes (substitute `x = e^u`: `∫ f(e^u)·e^u du` over `u ∈ [0, ln n]`).
fn integrate_log<F: Fn(f64) -> f64>(n: f64, f: F) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    let span = n.ln();
    let step = span / WS_NODES as f64;
    let g = |u: f64| {
        let x = u.exp();
        f(x) * x
    };
    let mut sum = 0.5 * (g(0.0) + g(span));
    for i in 1..WS_NODES {
        sum += g(step * i as f64);
    }
    sum * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{profile_trace, CharacterizeConfig};
    use mlpsim_trace::record::{Access, Trace};

    fn cyclic_trace(lines: u64, rounds: usize) -> Trace {
        let mut v = Vec::new();
        for _ in 0..rounds {
            for line in 0..lines {
                v.push(Access::load(line, 0));
            }
        }
        Trace::from_accesses(v)
    }

    #[test]
    fn poisson_tail_sanity() {
        assert_eq!(poisson_tail(0.0, 4), 0.0);
        assert!(poisson_tail(1e-6, 4) < 1e-20);
        assert!(poisson_tail(1e9, 4) > 0.999_999);
        // Monotone in lambda, antitone in ways.
        assert!(poisson_tail(2.0, 4) < poisson_tail(4.0, 4));
        assert!(poisson_tail(4.0, 8) < poisson_tail(4.0, 4));
    }

    #[test]
    fn cyclic_scan_thrashes_small_caches_and_fits_large_ones() {
        let p = profile_trace(&cyclic_trace(4096, 20), &CharacterizeConfig::unfiltered());
        let small = Geometry::from_sets(64, 8, 64); // 512 lines < 4096
        let large = Geometry::from_sets(1024, 8, 64); // 8192 lines > 4096

        // LRU thrashes a cyclic scan completely; the working-set model
        // answers for an IRM-randomized stream, where the steady-state
        // miss ratio of an equal-popularity scan is 1 − C/N = 0.875.
        for (est, floor) in [
            (&ReuseDistEstimator as &dyn MissRateEstimator, 0.9),
            (&ZipfWsEstimator, 0.8),
        ] {
            let s = est.estimate(&p, small);
            let l = est.estimate(&p, large);
            assert!(s.miss_rate > floor, "{}: small {}", est.name(), s.miss_rate);
            assert!(l.miss_rate < 0.1, "{}: large {}", est.name(), l.miss_rate);
            assert!(s.band > 0.0 && l.band > 0.0);
        }
    }

    #[test]
    fn exact_set_profile_path_reports_the_tight_band() {
        let cfg = CharacterizeConfig::unfiltered().with_set_profiles(&[64]);
        let p = profile_trace(&cyclic_trace(512, 10), &cfg);
        let e = ReuseDistEstimator.estimate(&p, Geometry::from_sets(64, 4, 64));
        assert_eq!(e.band, EXACT_BAND);
        // 512 lines over 64 sets = 8 lines/set > 4 ways: every reuse
        // misses, plus the cold pass — a full thrash.
        assert!(e.miss_rate > 0.99, "{}", e.miss_rate);
        // A different set count falls back to the corrected band.
        let f = ReuseDistEstimator.estimate(&p, Geometry::from_sets(128, 4, 64));
        assert_eq!(f.band, APPROX_BAND);
    }

    #[test]
    fn empty_profile_is_all_band() {
        let p = profile_trace(&Trace::new(), &CharacterizeConfig::unfiltered());
        for est in [
            &ReuseDistEstimator as &dyn MissRateEstimator,
            &ZipfWsEstimator,
        ] {
            let e = est.estimate(&p, Geometry::baseline_l2());
            assert_eq!((e.miss_rate, e.band), (0.0, 1.0));
        }
    }
}
