//! Closed-form Zipf/power-law fit of a popularity distribution.
//!
//! The Fagin/Berthet working-set estimator ([`crate::estimate`]) models
//! line popularity as `p(rank) ∝ rank^(-α)`. The exponent is fitted here
//! by ordinary least squares on the log-log rank/count curve — a closed
//! form, not an iterative optimizer, so the fit is deterministic (lint
//! rule D2) and *scale-invariant*: multiplying every count by a constant
//! shifts the log-log intercept but leaves the slope (and hence `α`)
//! unchanged.

/// A fitted power-law popularity curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZipfFit {
    /// Fitted exponent `α ≥ 0` of `p(rank) ∝ rank^(-α)`.
    pub alpha: f64,
    /// Number of distinct keys the fit covered.
    pub distinct: u64,
    /// Total references across all keys.
    pub total: u64,
    /// Coefficient of determination of the log-log regression in `[0, 1]`
    /// — how power-law-like the distribution actually is. Feeds the
    /// working-set estimator's error band.
    pub r2: f64,
}

impl ZipfFit {
    /// The fit of an empty population: `α = 0`, `r2 = 0`.
    pub fn empty() -> Self {
        ZipfFit {
            alpha: 0.0,
            distinct: 0,
            total: 0,
            r2: 0.0,
        }
    }
}

/// Fit `p(rank) ∝ rank^(-α)` to per-key reference counts by least squares
/// on `(ln rank, ln count)`. The counts are sorted descending internally,
/// so caller-side ordering (and any permutation of keys) cannot change
/// the result. Zero counts are ignored; fewer than two distinct positive
/// counts yield [`ZipfFit::empty`] with `distinct`/`total` still filled
/// in. A fitted positive slope (anti-Zipf, possible on tiny inputs) is
/// clamped to `α = 0`.
pub fn fit(counts: &[u64]) -> ZipfFit {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    let distinct = sorted.len() as u64;
    if sorted.len() < 2 {
        return ZipfFit {
            distinct,
            total,
            ..ZipfFit::empty()
        };
    }
    let n = sorted.len() as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (i, &c) in sorted.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (c as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        syy += y * y;
    }
    let var_x = sxx - sx * sx / n;
    let var_y = syy - sy * sy / n;
    if var_x <= 0.0 {
        // Cannot happen with ≥ 2 ranks, but guard the division anyway.
        return ZipfFit {
            distinct,
            total,
            ..ZipfFit::empty()
        };
    }
    let cov = sxy - sx * sy / n;
    let slope = cov / var_x;
    let r2 = if var_y > 0.0 {
        ((cov * cov) / (var_x * var_y)).clamp(0.0, 1.0)
    } else {
        // All counts equal: a perfect (degenerate) α = 0 power law.
        1.0
    };
    ZipfFit {
        alpha: (-slope).max(0.0),
        distinct,
        total,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_counts(alpha: f64, keys: usize, scale: f64) -> Vec<u64> {
        (1..=keys)
            .map(|r| (scale * (r as f64).powf(-alpha)).round().max(1.0) as u64)
            .collect()
    }

    #[test]
    fn recovers_a_planted_exponent() {
        for alpha in [0.5, 0.8, 1.0, 1.3] {
            let f = fit(&zipf_counts(alpha, 500, 1e6));
            assert!(
                (f.alpha - alpha).abs() < 0.05,
                "planted {alpha}, fitted {}",
                f.alpha
            );
            assert!(f.r2 > 0.95, "{}", f.r2);
        }
    }

    #[test]
    fn scale_invariant_and_order_invariant() {
        let base = zipf_counts(0.9, 300, 1e7);
        let scaled: Vec<u64> = base.iter().map(|&c| c * 13).collect();
        let mut shuffled = base.clone();
        shuffled.reverse();
        let a = fit(&base);
        assert!((a.alpha - fit(&scaled).alpha).abs() < 1e-9);
        assert_eq!(a.alpha.to_bits(), fit(&shuffled).alpha.to_bits());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fit(&[]), ZipfFit::empty());
        let one = fit(&[42]);
        assert_eq!((one.alpha, one.distinct, one.total), (0.0, 1, 42));
        let flat = fit(&[5, 5, 5, 5]);
        assert_eq!(flat.alpha, 0.0);
        assert_eq!(flat.r2, 1.0);
        // Zero counts are ignored, not ranked.
        assert_eq!(fit(&[9, 0, 3, 0]).distinct, 2);
    }
}
