//! One-pass trace characterization: everything the estimators need,
//! extracted in a single streamed walk with O(distinct lines) memory.
//!
//! For each (optionally L1-filtered) access the characterizer updates:
//!
//! - an **exact global reuse-distance histogram** (Mattson stack via
//!   [`StackDist`]) — the fully-associative view;
//! - **per-set stack-distance profiles** at one or more reference set
//!   counts, distances capped at [`SET_WAY_CAP`] — these make LRU miss
//!   counts *exact* (not modeled) for any geometry whose set count
//!   matches a reference and whose associativity is below the cap;
//! - **per-line popularity counts** feeding the Zipf fit
//!   ([`crate::zipf`]).
//!
//! The optional L1 filter matters because the simulator's L2 only sees
//! L1 misses: running the same baseline L1 LRU model in front of the
//! characterizer reproduces the reference stream the simulated L2
//! receives, which is what lets the set-profile path predict the
//! simulator's L2 miss counts exactly at the baseline (DESIGN.md §17).
//!
//! Determinism: the walk is a pure fold over the access sequence; all
//! maps are ordered (`BTreeMap`), all state is seeded by the trace alone.

use crate::stackdist::StackDist;
use crate::zipf::{self, ZipfFit};
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::model::CacheModel;
use mlpsim_trace::record::{Access, AccessKind, Trace};
use std::collections::BTreeMap;

/// Per-set stack distances are tracked exactly up to this many ways; an
/// associativity at or above the cap falls back to the analytical
/// estimators. 64 covers every geometry the sweeps use (the baseline L2
/// is 16-way).
pub const SET_WAY_CAP: usize = 64;

/// How to characterize a trace.
#[derive(Clone, Debug)]
pub struct CharacterizeConfig {
    /// Run this LRU cache in front of the characterizer and only
    /// characterize its misses — the stream a downstream L2 would see.
    pub l1_filter: Option<Geometry>,
    /// Reference set counts for exact per-set LRU profiles. Empty
    /// disables set profiling (the estimators then always use the
    /// fully-associative histogram plus the associativity correction).
    pub set_profile_sets: Vec<u32>,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig::baseline()
    }
}

impl CharacterizeConfig {
    /// The planner's configuration: baseline L1D filter, set profile at
    /// the baseline L2's 1024 sets.
    pub fn baseline() -> Self {
        CharacterizeConfig {
            l1_filter: Some(Geometry::baseline_l1d()),
            set_profile_sets: vec![Geometry::baseline_l2().sets()],
        }
    }

    /// No filter, no set profiles: the raw reference stream's histogram
    /// and popularity only (what the characterizer proptests pin down).
    pub fn unfiltered() -> Self {
        CharacterizeConfig {
            l1_filter: None,
            set_profile_sets: Vec::new(),
        }
    }

    /// Replace the reference set counts.
    #[must_use]
    pub fn with_set_profiles(mut self, sets: &[u32]) -> Self {
        self.set_profile_sets = sets.to_vec();
        self
    }
}

/// One log2 bucket of the reuse-distance histogram: the exact mean
/// distance of the accesses that landed in the bucket, and how many did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistBucket {
    /// Mean stack distance within the bucket.
    pub mean: f64,
    /// Accesses in the bucket.
    pub count: u64,
}

/// Exact reuse-distance histogram over distinct-line stack distances.
#[derive(Clone, Debug, Default)]
pub struct ReuseHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl ReuseHistogram {
    /// Record one reuse at stack distance `d`.
    pub fn record(&mut self, d: u64) {
        *self.counts.entry(d).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total recorded reuses (excludes cold accesses, which have no
    /// distance).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact `(distance, count)` pairs in ascending distance order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Reuses with distance in `[lo, hi)`.
    pub fn mass_in(&self, lo: u64, hi: u64) -> u64 {
        self.counts.range(lo..hi).map(|(_, &c)| c).sum()
    }

    /// Collapse into ~64 log2 buckets (distance 0 alone in bucket 0),
    /// each carrying its exact within-bucket mean — the summary the
    /// estimators iterate so scoring a cell is O(buckets), not
    /// O(distinct distances).
    pub fn buckets(&self) -> Vec<HistBucket> {
        let mut sums = [0.0f64; 66];
        let mut counts = [0u64; 66];
        for (&d, &c) in &self.counts {
            let b = if d == 0 {
                0
            } else {
                64 - (d.leading_zeros() as usize)
            };
            sums[b] += d as f64 * c as f64;
            counts[b] += c;
        }
        let mut out = Vec::new();
        for b in 0..66 {
            if counts[b] > 0 {
                out.push(HistBucket {
                    mean: sums[b] / counts[b] as f64,
                    count: counts[b],
                });
            }
        }
        out
    }
}

/// Exact capped per-set stack-distance profile at one reference set
/// count: predicts LRU hit/miss counts exactly for `sets()` sets and any
/// associativity `< SET_WAY_CAP`.
#[derive(Clone, Debug)]
pub struct SetLruProfile {
    sets: u32,
    /// `dist[set * (SET_WAY_CAP + 1) + min(d, SET_WAY_CAP)]`.
    dist: Vec<u64>,
    cold: u64,
    accesses: u64,
}

impl SetLruProfile {
    fn new(sets: u32) -> Self {
        SetLruProfile {
            sets,
            dist: vec![0; (sets as usize) * (SET_WAY_CAP + 1)],
            cold: 0,
            accesses: 0,
        }
    }

    fn record(&mut self, set: usize, d: Option<u64>) {
        self.accesses += 1;
        match d {
            Some(d) => {
                let b = usize::try_from(d).unwrap_or(SET_WAY_CAP).min(SET_WAY_CAP);
                self.dist[set * (SET_WAY_CAP + 1) + b] += 1;
            }
            None => self.cold += 1,
        }
    }

    /// The reference set count this profile was collected at.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Accesses the profile covers (post-filter).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Exact LRU miss count for a `sets() × ways` cache, or `None` when
    /// `ways` reaches the tracked cap (the capped bucket can no longer
    /// split hits from misses).
    pub fn lru_misses(&self, ways: u16) -> Option<u64> {
        let w = usize::from(ways);
        if w >= SET_WAY_CAP {
            return None;
        }
        let mut hits = 0u64;
        for set in 0..self.sets as usize {
            let row = &self.dist[set * (SET_WAY_CAP + 1)..(set + 1) * (SET_WAY_CAP + 1)];
            hits += row[..w].iter().sum::<u64>();
        }
        Some(self.accesses - hits)
    }
}

/// Everything one pass extracted from a trace.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// Accesses in the raw trace.
    pub raw_accesses: u64,
    /// Accesses the characterizer saw (equals `raw_accesses` without a
    /// filter; the L1-miss stream with one).
    pub accesses: u64,
    /// Cold (first-touch) accesses among `accesses`.
    pub cold: u64,
    /// Distinct lines among `accesses`.
    pub distinct_lines: u64,
    /// Exact fully-associative reuse-distance histogram.
    pub hist: ReuseHistogram,
    /// Exact per-set LRU profiles, one per configured reference set
    /// count.
    pub set_profiles: Vec<SetLruProfile>,
    /// Fitted power-law popularity curve.
    pub zipf: ZipfFit,
    /// Whether an L1 filter ran in front of the characterizer.
    pub l1_filtered: bool,
    buckets: Vec<HistBucket>,
}

impl TraceProfile {
    /// The precomputed log2 summary of [`TraceProfile::hist`].
    pub fn buckets(&self) -> &[HistBucket] {
        &self.buckets
    }

    /// The exact per-set profile collected at `sets`, if configured.
    pub fn set_profile(&self, sets: u32) -> Option<&SetLruProfile> {
        self.set_profiles.iter().find(|p| p.sets() == sets)
    }

    /// Fraction of accesses whose stack distance falls in the *transition
    /// band* `[capacity/2, 8·capacity)` of a cache holding
    /// `capacity_lines` lines — the reuses whose hit/miss outcome is
    /// actually in play at that size. Cold misses are excluded: they miss
    /// under every policy equally. This is the planner's per-cell
    /// improvement potential (DESIGN.md §17).
    pub fn transition_mass(&self, capacity_lines: u64) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let lo = capacity_lines / 2;
        let hi = capacity_lines.saturating_mul(8);
        self.hist.mass_in(lo, hi) as f64 / self.accesses as f64
    }
}

/// The streaming characterizer: feed accesses, then [`finish`].
///
/// [`finish`]: Characterizer::finish
#[derive(Debug)]
pub struct Characterizer {
    l1: Option<CacheModel>,
    ref_sets: Vec<u32>,
    global: StackDist,
    per_set: Vec<Vec<StackDist>>,
    profiles: Vec<SetLruProfile>,
    hist: ReuseHistogram,
    popularity: BTreeMap<u64, u64>,
    raw_accesses: u64,
    accesses: u64,
    cold: u64,
    seq: u64,
}

impl Characterizer {
    /// A fresh characterizer under `cfg`.
    pub fn new(cfg: &CharacterizeConfig) -> Self {
        let l1 = cfg
            .l1_filter
            .map(|g| CacheModel::new(g, Box::new(LruEngine::new())));
        let per_set = cfg
            .set_profile_sets
            .iter()
            .map(|&s| vec![StackDist::new(); s as usize])
            .collect();
        let profiles = cfg
            .set_profile_sets
            .iter()
            .map(|&s| SetLruProfile::new(s))
            .collect();
        Characterizer {
            l1,
            ref_sets: cfg.set_profile_sets.clone(),
            global: StackDist::new(),
            per_set,
            profiles,
            hist: ReuseHistogram::default(),
            popularity: BTreeMap::new(),
            raw_accesses: 0,
            accesses: 0,
            cold: 0,
            seq: 0,
        }
    }

    /// Observe one access.
    pub fn observe(&mut self, access: &Access) {
        self.raw_accesses += 1;
        self.seq += 1;
        if let Some(l1) = &mut self.l1 {
            let write = matches!(access.kind, AccessKind::Store);
            if l1.access(LineAddr(access.line), write, self.seq).hit {
                return;
            }
        }
        self.accesses += 1;
        *self.popularity.entry(access.line).or_insert(0) += 1;
        match self.global.record(access.line) {
            Some(d) => self.hist.record(d),
            None => self.cold += 1,
        }
        for (i, &sets) in self.ref_sets.iter().enumerate() {
            let set = usize::try_from(access.line % u64::from(sets))
                .expect("set index below a u32 set count");
            let d = self.per_set[i][set].record(access.line);
            self.profiles[i].record(set, d);
        }
    }

    /// Close the pass and assemble the profile.
    pub fn finish(self) -> TraceProfile {
        let counts: Vec<u64> = self.popularity.values().copied().collect();
        let buckets = self.hist.buckets();
        TraceProfile {
            raw_accesses: self.raw_accesses,
            accesses: self.accesses,
            cold: self.cold,
            distinct_lines: self.global.distinct(),
            hist: self.hist,
            set_profiles: self.profiles,
            zipf: zipf::fit(&counts),
            l1_filtered: self.l1.is_some(),
            buckets,
        }
    }
}

/// Characterize a whole trace in one call.
pub fn profile_trace(trace: &Trace, cfg: &CharacterizeConfig) -> TraceProfile {
    let mut c = Characterizer::new(cfg);
    for access in trace.iter() {
        c.observe(access);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::lru::LruEngine;

    fn toy_trace() -> Trace {
        // Cyclic scan over 40 lines, 50 rounds.
        let mut v = Vec::new();
        for _ in 0..50 {
            for line in 0..40u64 {
                v.push(Access::load(line, 0));
            }
        }
        Trace::from_accesses(v)
    }

    #[test]
    fn unfiltered_totals_add_up() {
        let p = profile_trace(&toy_trace(), &CharacterizeConfig::unfiltered());
        assert_eq!(p.raw_accesses, 2000);
        assert_eq!(p.accesses, 2000);
        assert_eq!(p.cold, 40);
        assert_eq!(p.distinct_lines, 40);
        assert_eq!(p.hist.total() + p.cold, p.accesses);
        // Every reuse in a 40-line cycle has distance 39.
        assert_eq!(p.hist.mass_in(39, 40), 1960);
        assert_eq!(p.zipf.total, 2000);
    }

    #[test]
    fn set_profile_matches_a_real_lru_cache() {
        let cfg = CharacterizeConfig::unfiltered().with_set_profiles(&[4]);
        let p = profile_trace(&toy_trace(), &cfg);
        for ways in [1u16, 2, 8, 16] {
            let g = Geometry::from_sets(4, ways, 64);
            let mut cache = CacheModel::new(g, Box::new(LruEngine::new()));
            for (seq, a) in toy_trace().iter().enumerate() {
                cache.access(LineAddr(a.line), false, seq as u64);
            }
            let predicted = p.set_profile(4).and_then(|sp| sp.lru_misses(ways));
            assert_eq!(predicted, Some(cache.stats().misses), "ways {ways}");
        }
    }

    #[test]
    fn l1_filter_shrinks_the_characterized_stream() {
        let raw = profile_trace(&toy_trace(), &CharacterizeConfig::unfiltered());
        let filtered = profile_trace(
            &toy_trace(),
            &CharacterizeConfig {
                l1_filter: Some(Geometry::baseline_l1d()),
                set_profile_sets: Vec::new(),
            },
        );
        assert!(filtered.l1_filtered);
        assert_eq!(filtered.raw_accesses, raw.raw_accesses);
        // 40 lines fit in the 256-line L1, so after the cold pass
        // everything hits the filter.
        assert_eq!(filtered.accesses, 40);
        assert_eq!(filtered.cold, 40);
    }

    #[test]
    fn bucket_summary_conserves_mass() {
        let p = profile_trace(&toy_trace(), &CharacterizeConfig::unfiltered());
        let sum: u64 = p.buckets().iter().map(|b| b.count).sum();
        assert_eq!(sum, p.hist.total());
    }
}
