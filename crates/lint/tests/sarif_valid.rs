//! The SARIF emitter's output must be well-formed JSON with the SARIF
//! 2.1.0 skeleton — validated end-to-end on the *real* workspace
//! report, using the workspace's own JSON parser as the oracle.

use mlpsim_lint::sarif::to_sarif;
use mlpsim_lint::{lint_workspace, Finding, LintReport};
use mlpsim_telemetry::json::Json;
use std::path::Path;

fn parse(doc: &str) -> Json {
    Json::parse(doc).expect("SARIF output must be well-formed JSON")
}

fn run_of(v: &Json) -> &Json {
    let Some(Json::Arr(runs)) = v.get("runs") else {
        panic!("runs must be an array");
    };
    assert_eq!(runs.len(), 1, "exactly one run per report");
    &runs[0]
}

#[test]
fn workspace_sarif_is_valid_and_complete() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root");
    let report = lint_workspace(root);
    let v = parse(&to_sarif(&report));

    assert_eq!(v.get("version").and_then(Json::as_str), Some("2.1.0"));
    let run = run_of(&v);
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver present");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("mlpsim-lint"));
    let Some(Json::Arr(rules)) = driver.get("rules") else {
        panic!("driver.rules must be an array");
    };
    assert_eq!(rules.len(), 12, "D1–D11 plus the pragma rule");

    // Every finding surfaces as exactly one result, same order.
    let Some(Json::Arr(results)) = run.get("results") else {
        panic!("results must be an array");
    };
    assert_eq!(results.len(), report.findings.len());
    for (res, f) in results.iter().zip(&report.findings) {
        assert_eq!(
            res.get("ruleId").and_then(Json::as_str),
            Some(f.diag.rule.name())
        );
        let loc = res
            .get("locations")
            .and_then(|l| match l {
                Json::Arr(a) => a.first(),
                _ => None,
            })
            .and_then(|l| l.get("physicalLocation"))
            .expect("each result has a physical location");
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Json::as_str),
            Some(f.rel_path.as_str())
        );
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Json::as_u64),
            Some(u64::from(f.diag.line.max(1)))
        );
    }
}

#[test]
fn parse_failures_mark_the_invocation_unsuccessful() {
    use mlpsim_lint::rules::{Diagnostic, RuleId};
    let report = LintReport {
        findings: vec![Finding {
            rel_path: "crates/mem/src/dram.rs".into(),
            diag: Diagnostic {
                line: 63,
                rule: RuleId::D7,
                msg: "message with \"quotes\" and a \\ backslash".into(),
            },
        }],
        parse_errors: vec![("crates/x/src/y.rs".into(), "expected `}`".into())],
        files_checked: 2,
    };
    let v = parse(&to_sarif(&report));
    let run = run_of(&v);
    let inv = run
        .get("invocations")
        .and_then(|i| match i {
            Json::Arr(a) => a.first(),
            _ => None,
        })
        .expect("one invocation");
    assert_eq!(
        inv.get("executionSuccessful").and_then(Json::as_bool),
        Some(false)
    );
    let Some(Json::Arr(notes)) = inv.get("toolExecutionNotifications") else {
        panic!("parse errors must surface as notifications");
    };
    assert_eq!(notes.len(), 1);
    let text = notes[0]
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(Json::as_str)
        .expect("notification text");
    assert!(text.contains("crates/x/src/y.rs"));
}
