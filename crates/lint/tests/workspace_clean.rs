//! The workspace must stay free of D1–D10 findings: CI gates on the
//! binary's exit code, and this test puts the same gate in `cargo
//! test` so a violation fails fast with the offending lines inline.

use mlpsim_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root");
    let report = lint_workspace(root);
    let mut lines: Vec<String> = report
        .parse_errors
        .iter()
        .map(|(p, e)| format!("{p}: parse error: {e}"))
        .collect();
    lines.extend(
        report
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{}:{}: {}: {}",
                    f.rel_path,
                    f.diag.line,
                    f.diag.rule.name(),
                    f.diag.msg
                )
            }),
    );
    assert!(
        lines.is_empty(),
        "workspace must be lint-clean ({} files checked):\n{}",
        report.files_checked,
        lines.join("\n")
    );
}
