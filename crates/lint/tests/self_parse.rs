//! The parser's ground-truth test: every `.rs` file in this workspace's
//! lint scope must parse without error. A construct drifting outside the
//! supported subset fails here loudly, instead of silently blinding the
//! dataflow rules (which skip files they cannot parse).

use mlpsim_lint::{collect_workspace_rs_files, parser::parse_file};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn every_workspace_file_parses() {
    let root = workspace_root();
    let files = collect_workspace_rs_files(&root);
    assert!(
        files.len() > 20,
        "workspace scan found only {} files under {} — scan broken?",
        files.len(),
        root.display()
    );
    let mut failures = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        if let Err(e) = parse_file(&src) {
            failures.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} workspace files failed to parse:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
}

#[test]
fn parser_also_covers_test_and_bench_sources() {
    // The lint scope skips tests/ and benches/, but the parser should
    // still digest them — they are the richest source of syntax variety
    // (proptest closures, matches!, slice patterns). Failures here are
    // advisory for rule scope but fatal for parser health.
    let root = workspace_root();
    let mut files = Vec::new();
    for crate_dir in std::fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
    {
        for sub in ["tests", "benches"] {
            let d = crate_dir.join(sub);
            if d.is_dir() {
                for e in std::fs::read_dir(&d).expect("readable").filter_map(Result::ok) {
                    let p = e.path();
                    if p.extension().is_some_and(|x| x == "rs") {
                        files.push(p);
                    }
                }
            }
        }
    }
    files.sort();
    let mut failures = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        if let Err(e) = parse_file(&src) {
            failures.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} test/bench files failed to parse:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
}
