//! A recursive-descent parser for the Rust subset this workspace uses,
//! over [`crate::lexer`] tokens, producing [`crate::ast`] trees.
//!
//! Scope: everything the workspace's `src/` trees contain — items (fns,
//! structs, enums, traits, impls, consts, statics, modules, extern
//! blocks, item macros), full expression grammar with precedence
//! climbing, patterns (or/at/range/slice/struct), declared types with
//! generic args, `let`-`else`, closures, and macro calls (args parsed as
//! expressions when the token tree is expression-shaped, identifier bag
//! otherwise). Deliberately out of scope, because no file here needs
//! them: labeled loops/breaks, HRTBs (`for<'a>`), `async`, qualified
//! trait bounds in expression position beyond `<T as Trait>::x`.
//!
//! Error handling: hard `Err` with line and message. The workspace
//! self-parse test (`tests/self_parse.rs`) holds the parser to zero
//! errors over every `.rs` file, so a construct drifting out of the
//! subset fails CI loudly instead of silently degrading the dataflow
//! rules.

use crate::ast::{
    Arm, Attr, BinOp, Block, Expr, ExprKind, Field, FnDef, Item, ItemKind, Param, Pat, SourceFile,
    Stmt, Ty, Variant,
};
use crate::lexer::{lex, Token, TokenKind};

/// A parse failure, fatal for the file.
#[derive(Clone, Debug)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parses a whole source file.
pub fn parse_file(src: &str) -> Result<SourceFile, ParseError> {
    let lexed = lex(src);
    let mut p = Parser {
        t: &lexed.tokens,
        pos: 0,
        half_gt: false,
    };
    let items = p.parse_items(false)?;
    if p.pos < p.t.len() {
        return Err(p.err("unexpected token after last item"));
    }
    Ok(SourceFile { items })
}

type PResult<T> = Result<T, ParseError>;

/// Expression parsing restrictions, threaded down the precedence ladder.
#[derive(Clone, Copy)]
struct Restr {
    /// In `if`/`while`/`for`/`match` head position a `{` after a path is
    /// the body, not a struct literal.
    no_struct: bool,
}

const FREE: Restr = Restr { no_struct: false };

struct Parser<'a> {
    t: &'a [Token],
    pos: usize,
    /// A `>>` token half-consumed as the inner `>` of nested generics.
    half_gt: bool,
}

impl<'a> Parser<'a> {
    // ---- token cursor ---------------------------------------------------

    fn kind(&self) -> Option<&'a TokenKind> {
        self.t.get(self.pos).map(|t| &t.kind)
    }

    fn kind_at(&self, off: usize) -> Option<&'a TokenKind> {
        self.t.get(self.pos + off).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.t
            .get(self.pos)
            .or_else(|| self.t.last())
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
        self.half_gt = false;
    }

    fn save(&self) -> (usize, bool) {
        (self.pos, self.half_gt)
    }

    fn restore(&mut self, s: (usize, bool)) {
        self.pos = s.0;
        self.half_gt = s.1;
    }

    fn err(&self, msg: &str) -> ParseError {
        let found = match self.kind() {
            Some(k) => format!("{k:?}"),
            None => "end of file".to_string(),
        };
        ParseError {
            line: self.line(),
            msg: format!("{msg} (found {found})"),
        }
    }

    fn check_punct(&self, c: char) -> bool {
        !self.half_gt && matches!(self.kind(), Some(TokenKind::Punct(p)) if *p == c)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.check_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn check_op(&self, op: &str) -> bool {
        !self.half_gt && matches!(self.kind(), Some(TokenKind::Op(o)) if *o == op)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.check_op(op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn check_kw(&self, kw: &str) -> bool {
        !self.half_gt && matches!(self.kind(), Some(TokenKind::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.check_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.kind() {
            Some(TokenKind::Ident(s)) if !self.half_gt => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// One `>` in type/generics position. `>>` is split: the first call
    /// half-consumes it, the second finishes it.
    fn check_gt(&self) -> bool {
        matches!(
            self.kind(),
            Some(TokenKind::Punct('>') | TokenKind::Op(">>"))
        )
    }

    fn bump_gt(&mut self) -> PResult<()> {
        match self.kind() {
            Some(TokenKind::Punct('>')) => {
                self.bump();
                Ok(())
            }
            Some(TokenKind::Op(">>")) if !self.half_gt => {
                self.half_gt = true;
                Ok(())
            }
            Some(TokenKind::Op(">>")) => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err("expected `>`")),
        }
    }

    // ---- shared skippers ------------------------------------------------

    /// Skips a balanced delimiter run starting at the current open
    /// delimiter, collecting identifier texts seen inside.
    fn skip_balanced(&mut self, idents: &mut Vec<String>) -> PResult<()> {
        let (open, close) = match self.kind() {
            Some(TokenKind::Punct('(')) => ('(', ')'),
            Some(TokenKind::Punct('[')) => ('[', ']'),
            Some(TokenKind::Punct('{')) => ('{', '}'),
            _ => return Err(self.err("expected `(`, `[`, or `{`")),
        };
        let mut depth = 0usize;
        loop {
            match self.kind() {
                None => return Err(self.err("unterminated delimiter")),
                Some(TokenKind::Punct(p)) if *p == open => depth += 1,
                Some(TokenKind::Punct(p)) if *p == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return Ok(());
                    }
                }
                Some(TokenKind::Ident(s)) => idents.push(s.clone()),
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips `<generic params>` if present (angle-bracket balanced;
    /// `<<`/`>>` count twice; `->` in `F: Fn() -> R` bounds is inert).
    fn skip_generics(&mut self) -> PResult<()> {
        if !self.check_punct('<') {
            return Ok(());
        }
        let mut depth = 0i32;
        loop {
            match self.kind() {
                None => return Err(self.err("unterminated generics")),
                Some(TokenKind::Punct('<')) => depth += 1,
                Some(TokenKind::Op("<<")) => depth += 2,
                Some(TokenKind::Punct('>')) => depth -= 1,
                Some(TokenKind::Op(">>")) => depth -= 2,
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return Ok(());
            }
        }
    }

    /// Skips a `where` clause if present, stopping before `{` or `;` at
    /// angle depth zero.
    fn skip_where(&mut self) -> PResult<()> {
        if !self.eat_kw("where") {
            return Ok(());
        }
        let mut angle = 0i32;
        loop {
            match self.kind() {
                None => return Err(self.err("unterminated where clause")),
                Some(TokenKind::Punct('{') | TokenKind::Punct(';')) if angle <= 0 => return Ok(()),
                Some(TokenKind::Punct('<')) => angle += 1,
                Some(TokenKind::Op("<<")) => angle += 2,
                Some(TokenKind::Punct('>')) => angle -= 1,
                Some(TokenKind::Op(">>")) => angle -= 2,
                _ => {}
            }
            self.bump();
        }
    }

    /// Parses `#[…]` / `#![…]` attribute runs. Inner attributes are
    /// consumed but not returned (they gate the *enclosing* scope, which
    /// for this subset never matters to a rule).
    fn parse_attrs(&mut self) -> PResult<Vec<Attr>> {
        let mut out = Vec::new();
        while self.check_punct('#') {
            let line = self.line();
            self.bump();
            let inner = self.eat_punct('!');
            let mut idents = Vec::new();
            self.skip_balanced(&mut idents)?;
            if !inner {
                out.push(Attr { idents, line });
            }
        }
        Ok(out)
    }

    /// Parses and drops a visibility qualifier (`pub`, `pub(crate)`, …).
    fn parse_vis(&mut self) -> PResult<()> {
        if self.eat_kw("pub") && self.check_punct('(') {
            self.skip_balanced(&mut Vec::new())?;
        }
        Ok(())
    }

    // ---- items ----------------------------------------------------------

    /// Parses items until end of input (`in_block` false) or a closing
    /// `}` (left unconsumed).
    fn parse_items(&mut self, in_block: bool) -> PResult<Vec<Item>> {
        let mut items = Vec::new();
        loop {
            if self.pos >= self.t.len() || (in_block && self.check_punct('}')) {
                return Ok(items);
            }
            items.push(self.parse_item()?);
        }
    }

    fn parse_item(&mut self) -> PResult<Item> {
        let attrs = self.parse_attrs()?;
        let line = self.line();
        self.parse_vis()?;
        let kind = self.parse_item_kind()?;
        Ok(Item { attrs, kind, line })
    }

    fn parse_item_kind(&mut self) -> PResult<ItemKind> {
        match self.kind() {
            Some(TokenKind::Ident(s)) => match s.as_str() {
                "use" => {
                    // `use a::b::{c, d};` — skip to the `;` at brace depth 0.
                    self.bump();
                    let mut depth = 0i32;
                    loop {
                        match self.kind() {
                            None => return Err(self.err("unterminated use")),
                            Some(TokenKind::Punct('{')) => depth += 1,
                            Some(TokenKind::Punct('}')) => depth -= 1,
                            Some(TokenKind::Punct(';')) if depth == 0 => {
                                self.bump();
                                return Ok(ItemKind::Use);
                            }
                            _ => {}
                        }
                        self.bump();
                    }
                }
                "mod" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    if self.eat_punct(';') {
                        Ok(ItemKind::Mod { name, items: None })
                    } else {
                        self.expect_punct('{')?;
                        let items = self.parse_items(true)?;
                        self.expect_punct('}')?;
                        Ok(ItemKind::Mod {
                            name,
                            items: Some(items),
                        })
                    }
                }
                "struct" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.skip_generics()?;
                    self.skip_where()?;
                    let fields = if self.eat_punct(';') {
                        Vec::new() // unit struct
                    } else if self.check_punct('(') {
                        let f = self.parse_tuple_fields()?;
                        self.skip_where()?;
                        self.expect_punct(';')?;
                        f
                    } else {
                        self.parse_named_fields()?
                    };
                    Ok(ItemKind::Struct { name, fields })
                }
                "enum" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.skip_generics()?;
                    self.skip_where()?;
                    self.expect_punct('{')?;
                    let mut variants = Vec::new();
                    while !self.check_punct('}') {
                        self.parse_attrs()?;
                        let vname = self.expect_ident()?;
                        let fields = if self.check_punct('(') {
                            self.parse_tuple_fields()?
                        } else if self.check_punct('{') {
                            self.parse_named_fields()?
                        } else {
                            Vec::new()
                        };
                        if self.eat_punct('=') {
                            self.parse_expr(FREE)?; // discriminant
                        }
                        variants.push(Variant {
                            name: vname,
                            fields,
                        });
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct('}')?;
                    Ok(ItemKind::Enum { name, variants })
                }
                "trait" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.skip_generics()?;
                    if self.eat_punct(':') {
                        self.skip_bounds()?;
                    }
                    self.skip_where()?;
                    self.expect_punct('{')?;
                    let items = self.parse_items(true)?;
                    self.expect_punct('}')?;
                    Ok(ItemKind::Trait { name, items })
                }
                "impl" => {
                    self.bump();
                    self.skip_generics()?;
                    let first = self.parse_ty()?;
                    let (self_ty, trait_name) = if self.eat_kw("for") {
                        let target = self.parse_ty()?;
                        (
                            target.head().unwrap_or("?").to_string(),
                            Some(first.head().unwrap_or("?").to_string()),
                        )
                    } else {
                        (first.head().unwrap_or("?").to_string(), None)
                    };
                    self.skip_where()?;
                    self.expect_punct('{')?;
                    let items = self.parse_items(true)?;
                    self.expect_punct('}')?;
                    Ok(ItemKind::Impl {
                        self_ty,
                        trait_name,
                        items,
                    })
                }
                "fn" | "unsafe" | "extern" | "const" | "static" => self.parse_fn_like(),
                "type" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    // `type X = T;` or (in traits) `type X: Bound;` /
                    // `type X;` — skip the tail either way.
                    while !self.check_punct(';') {
                        if self.pos >= self.t.len() {
                            return Err(self.err("unterminated type alias"));
                        }
                        if self.check_punct('<') || self.check_op("<<") {
                            self.skip_generics()?;
                        } else {
                            self.bump();
                        }
                    }
                    self.bump();
                    Ok(ItemKind::TypeAlias { name })
                }
                "macro_rules" => {
                    self.bump();
                    self.expect_punct('!')?;
                    let name = self.expect_ident()?;
                    self.skip_balanced(&mut Vec::new())?;
                    Ok(ItemKind::MacroCall { name })
                }
                _ => {
                    // Item-position macro call: `thread_local! { … }`.
                    if matches!(self.kind_at(1), Some(TokenKind::Punct('!'))) {
                        let name = self.expect_ident()?;
                        self.bump(); // !
                        let paren = self.check_punct('(') || self.check_punct('[');
                        self.skip_balanced(&mut Vec::new())?;
                        if paren {
                            self.expect_punct(';')?;
                        }
                        Ok(ItemKind::MacroCall { name })
                    } else {
                        Err(self.err("expected item"))
                    }
                }
            },
            _ => Err(self.err("expected item")),
        }
    }

    /// `fn` items and the qualifier soup in front of them (`const fn`,
    /// `unsafe fn`, `extern "C" fn`, `unsafe impl`, `extern "C" { … }`,
    /// plain `const`/`static` items).
    fn parse_fn_like(&mut self) -> PResult<ItemKind> {
        if self.check_kw("unsafe") && matches!(self.kind_at(1), Some(TokenKind::Ident(s)) if s == "impl" || s == "trait")
        {
            self.bump(); // the impl/trait path re-enters the dispatcher
            return self.parse_item_kind();
        }
        if self.check_kw("const")
            && !matches!(self.kind_at(1), Some(TokenKind::Ident(s)) if s == "fn" || s == "unsafe" || s == "extern")
        {
            self.bump();
            let name = self.expect_ident()?;
            self.expect_punct(':')?;
            let ty = self.parse_ty()?;
            let init = if self.eat_punct('=') {
                Some(self.parse_expr(FREE)?)
            } else {
                None
            };
            self.expect_punct(';')?;
            return Ok(ItemKind::Const { name, ty, init });
        }
        if self.check_kw("static") {
            self.bump();
            self.eat_kw("mut");
            let name = self.expect_ident()?;
            self.expect_punct(':')?;
            let ty = self.parse_ty()?;
            let init = if self.eat_punct('=') {
                Some(self.parse_expr(FREE)?)
            } else {
                None
            };
            self.expect_punct(';')?;
            return Ok(ItemKind::Static { name, ty, init });
        }
        // Remaining: [const] [unsafe] [extern "C"] fn …, or extern "C" {}
        self.eat_kw("const");
        self.eat_kw("unsafe");
        if self.eat_kw("extern") {
            if matches!(self.kind(), Some(TokenKind::Str)) {
                self.bump(); // ABI string
            }
            if self.check_punct('{') {
                self.bump();
                let items = self.parse_items(true)?;
                self.expect_punct('}')?;
                return Ok(ItemKind::ExternBlock { items });
            }
            if self.eat_kw("crate") {
                while !self.eat_punct(';') {
                    if self.pos >= self.t.len() {
                        return Err(self.err("unterminated extern crate"));
                    }
                    self.bump();
                }
                return Ok(ItemKind::Use);
            }
        }
        let line = self.line();
        self.expect_kw("fn")?;
        let name = self.expect_ident()?;
        self.skip_generics()?;
        let params = self.parse_params()?;
        let ret = if self.eat_op("->") {
            Some(self.parse_ty()?)
        } else {
            None
        };
        self.skip_where()?;
        let body = if self.eat_punct(';') {
            None
        } else {
            Some(self.parse_block()?)
        };
        Ok(ItemKind::Fn(FnDef {
            name,
            params,
            ret,
            body,
            line,
        }))
    }

    fn parse_params(&mut self) -> PResult<Vec<Param>> {
        self.expect_punct('(')?;
        let mut params = Vec::new();
        while !self.check_punct(')') {
            self.parse_attrs()?;
            // Receiver forms: `self`, `mut self`, `&self`, `&mut self`,
            // `&'a self`.
            let s = self.save();
            let is_recv;
            if self.check_punct('&') {
                self.bump();
                if matches!(self.kind(), Some(TokenKind::Lifetime(_))) {
                    self.bump();
                }
                self.eat_kw("mut");
                is_recv = self.eat_kw("self");
            } else {
                let saw_mut = self.eat_kw("mut");
                is_recv = self.eat_kw("self");
                if !is_recv && saw_mut {
                    self.restore(s);
                }
            }
            if is_recv {
                params.push(Param {
                    pat: Pat::Bind {
                        name: "self".to_string(),
                        sub: None,
                    },
                    ty: Ty::SelfTy,
                });
            } else {
                if self.check_punct('&') {
                    self.restore(s);
                }
                let pat = self.parse_pat(true)?;
                let ty = if self.eat_punct(':') {
                    self.parse_ty()?
                } else {
                    Ty::Infer
                };
                params.push(Param { pat, ty });
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok(params)
    }

    fn parse_named_fields(&mut self) -> PResult<Vec<Field>> {
        self.expect_punct('{')?;
        let mut fields = Vec::new();
        while !self.check_punct('}') {
            self.parse_attrs()?;
            self.parse_vis()?;
            let line = self.line();
            let name = self.expect_ident()?;
            self.expect_punct(':')?;
            let ty = self.parse_ty()?;
            fields.push(Field { name, ty, line });
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct('}')?;
        Ok(fields)
    }

    fn parse_tuple_fields(&mut self) -> PResult<Vec<Field>> {
        self.expect_punct('(')?;
        let mut fields = Vec::new();
        let mut idx = 0u32;
        while !self.check_punct(')') {
            self.parse_attrs()?;
            self.parse_vis()?;
            let line = self.line();
            let ty = self.parse_ty()?;
            fields.push(Field {
                name: idx.to_string(),
                ty,
                line,
            });
            idx += 1;
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok(fields)
    }

    // ---- types ----------------------------------------------------------

    fn parse_ty(&mut self) -> PResult<Ty> {
        match self.kind() {
            Some(TokenKind::Punct('&')) => {
                self.bump();
                if matches!(self.kind(), Some(TokenKind::Lifetime(_))) {
                    self.bump();
                }
                self.eat_kw("mut");
                Ok(Ty::Ref(Box::new(self.parse_ty()?)))
            }
            Some(TokenKind::Op("&&")) => {
                self.bump();
                if matches!(self.kind(), Some(TokenKind::Lifetime(_))) {
                    self.bump();
                }
                self.eat_kw("mut");
                Ok(Ty::Ref(Box::new(Ty::Ref(Box::new(self.parse_ty()?)))))
            }
            Some(TokenKind::Punct('*')) => {
                // Raw pointer `*const T` / `*mut T`.
                self.bump();
                if !self.eat_kw("const") {
                    self.eat_kw("mut");
                }
                Ok(Ty::Ref(Box::new(self.parse_ty()?)))
            }
            Some(TokenKind::Punct('(')) => {
                self.bump();
                let mut tys = Vec::new();
                let mut trailing = false;
                while !self.check_punct(')') {
                    tys.push(self.parse_ty()?);
                    trailing = self.eat_punct(',');
                    if !trailing {
                        break;
                    }
                }
                self.expect_punct(')')?;
                if tys.len() == 1 && !trailing {
                    Ok(tys.pop().expect("len checked"))
                } else {
                    Ok(Ty::Tuple(tys))
                }
            }
            Some(TokenKind::Punct('[')) => {
                self.bump();
                let inner = self.parse_ty()?;
                let arr = self.eat_punct(';');
                if arr {
                    self.parse_expr(FREE)?; // length
                }
                self.expect_punct(']')?;
                Ok(if arr {
                    Ty::Array(Box::new(inner))
                } else {
                    Ty::Slice(Box::new(inner))
                })
            }
            Some(TokenKind::Punct('!')) => {
                self.bump();
                Ok(Ty::Never)
            }
            Some(TokenKind::Punct('<')) => {
                // Qualified path type `<T as Trait>::Assoc`.
                self.bump();
                self.parse_ty()?;
                if self.eat_kw("as") {
                    self.parse_ty()?;
                }
                self.bump_gt()?;
                let mut segments = Vec::new();
                while self.eat_op("::") {
                    segments.push(self.expect_ident()?);
                }
                Ok(Ty::Path {
                    segments,
                    args: Vec::new(),
                })
            }
            Some(TokenKind::Ident(s)) => match s.as_str() {
                "dyn" | "impl" => {
                    self.bump();
                    self.skip_bounds()?;
                    Ok(Ty::Opaque)
                }
                "fn" => {
                    self.bump();
                    self.skip_balanced(&mut Vec::new())?; // params
                    if self.eat_op("->") {
                        self.parse_ty()?;
                    }
                    Ok(Ty::FnPtr)
                }
                "extern" => {
                    // `extern "C" fn(…)` pointer type.
                    self.bump();
                    if matches!(self.kind(), Some(TokenKind::Str)) {
                        self.bump();
                    }
                    self.expect_kw("fn")?;
                    self.skip_balanced(&mut Vec::new())?;
                    if self.eat_op("->") {
                        self.parse_ty()?;
                    }
                    Ok(Ty::FnPtr)
                }
                "Self" => {
                    self.bump();
                    // `Self::Assoc` associated types.
                    let mut segments = vec!["Self".to_string()];
                    while self.eat_op("::") {
                        segments.push(self.expect_ident()?);
                    }
                    if segments.len() == 1 {
                        Ok(Ty::SelfTy)
                    } else {
                        Ok(Ty::Path {
                            segments,
                            args: Vec::new(),
                        })
                    }
                }
                "_" => {
                    self.bump();
                    Ok(Ty::Infer)
                }
                _ => self.parse_type_path(),
            },
            Some(TokenKind::Op("::")) => self.parse_type_path(),
            _ => Err(self.err("expected type")),
        }
    }

    /// `a::b::C<args>` — also accepts `Fn(A) -> B` sugar on a segment.
    fn parse_type_path(&mut self) -> PResult<Ty> {
        self.eat_op("::");
        let mut segments = vec![self.expect_ident()?];
        let mut args = Vec::new();
        loop {
            if self.check_punct('<') {
                args = self.parse_generic_args()?;
                if self.eat_op("::") {
                    segments.push(self.expect_ident()?);
                    continue;
                }
                break;
            }
            if self.check_punct('(') {
                // `Fn(A, B) -> C` parenthesized sugar.
                self.bump();
                while !self.check_punct(')') {
                    args.push(self.parse_ty()?);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(')')?;
                if self.eat_op("->") {
                    self.parse_ty()?;
                }
                break;
            }
            if self.eat_op("::") {
                if self.check_punct('<') {
                    continue; // turbofish in type position
                }
                segments.push(self.expect_ident()?);
            } else {
                break;
            }
        }
        Ok(Ty::Path { segments, args })
    }

    /// After a `<`: comma-separated lifetimes / types / const args /
    /// `Assoc = Ty` bindings, through the closing `>`.
    fn parse_generic_args(&mut self) -> PResult<Vec<Ty>> {
        self.expect_punct('<')?;
        let mut args = Vec::new();
        loop {
            if self.check_gt() {
                self.bump_gt()?;
                return Ok(args);
            }
            match self.kind() {
                None => return Err(self.err("unterminated generic args")),
                Some(TokenKind::Lifetime(_)) => self.bump(),
                Some(TokenKind::Num(_)) => {
                    self.bump();
                    args.push(Ty::Infer);
                }
                Some(TokenKind::Punct('{')) => {
                    self.skip_balanced(&mut Vec::new())?;
                    args.push(Ty::Infer);
                }
                Some(TokenKind::Ident(s))
                    if (s == "true" || s == "false")
                        && !matches!(self.kind_at(1), Some(TokenKind::Op("::"))) =>
                {
                    self.bump();
                    args.push(Ty::Infer);
                }
                Some(TokenKind::Ident(_))
                    if matches!(self.kind_at(1), Some(TokenKind::Punct('='))) =>
                {
                    // `Item = Ty` associated-type binding.
                    self.bump();
                    self.bump();
                    self.parse_ty()?;
                }
                _ => args.push(self.parse_ty()?),
            }
            if !self.eat_punct(',') {
                if self.check_gt() {
                    continue;
                }
                // `dyn Fn() + Send` inside args: bounds on the arg type.
                if self.check_punct('+') {
                    self.bump();
                    self.skip_bounds()?;
                    continue;
                }
                return Err(self.err("expected `,` or `>` in generic args"));
            }
        }
    }

    /// `Bound + 'a + OtherBound` — consumed and dropped.
    fn skip_bounds(&mut self) -> PResult<()> {
        loop {
            match self.kind() {
                Some(TokenKind::Lifetime(_)) => self.bump(),
                Some(TokenKind::Punct('?')) => {
                    self.bump(); // `?Sized`
                    self.parse_type_path()?;
                }
                Some(TokenKind::Ident(s)) if s == "fn" => {
                    self.bump();
                    self.skip_balanced(&mut Vec::new())?;
                    if self.eat_op("->") {
                        self.parse_ty()?;
                    }
                }
                _ => {
                    self.parse_type_path()?;
                }
            }
            if !self.eat_punct('+') {
                return Ok(());
            }
        }
    }

    // ---- patterns -------------------------------------------------------

    /// Parses a pattern; `or_allowed` permits `|` alternatives (off in
    /// closure-parameter position where `|` closes the list).
    fn parse_pat(&mut self, or_allowed: bool) -> PResult<Pat> {
        if or_allowed {
            self.eat_punct('|'); // optional leading `|`
        }
        let first = self.parse_pat_single()?;
        if !or_allowed || !self.check_punct('|') {
            return Ok(first);
        }
        let mut alts = vec![first];
        while self.eat_punct('|') {
            alts.push(self.parse_pat_single()?);
        }
        Ok(Pat::Or(alts))
    }

    fn parse_pat_single(&mut self) -> PResult<Pat> {
        match self.kind() {
            Some(TokenKind::Punct('_')) => {
                self.bump();
                Ok(Pat::Wild)
            }
            Some(TokenKind::Op("..")) => {
                self.bump();
                Ok(Pat::Rest)
            }
            Some(TokenKind::Punct('&')) => {
                self.bump();
                self.eat_kw("mut");
                Ok(Pat::Ref(Box::new(self.parse_pat_single()?)))
            }
            Some(TokenKind::Op("&&")) => {
                self.bump();
                self.eat_kw("mut");
                Ok(Pat::Ref(Box::new(Pat::Ref(Box::new(
                    self.parse_pat_single()?,
                )))))
            }
            Some(TokenKind::Punct('(')) => {
                self.bump();
                let mut elems = Vec::new();
                while !self.check_punct(')') {
                    elems.push(self.parse_pat(true)?);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(')')?;
                Ok(Pat::Tuple(elems))
            }
            Some(TokenKind::Punct('[')) => {
                self.bump();
                let mut elems = Vec::new();
                while !self.check_punct(']') {
                    elems.push(self.parse_pat(true)?);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(']')?;
                Ok(Pat::Slice(elems))
            }
            Some(TokenKind::Num(_) | TokenKind::Str) => {
                self.bump();
                self.finish_range_pat()
            }
            Some(TokenKind::Punct('-')) => {
                self.bump();
                match self.kind() {
                    Some(TokenKind::Num(_)) => {
                        self.bump();
                        self.finish_range_pat()
                    }
                    _ => Err(self.err("expected numeric literal after `-` in pattern")),
                }
            }
            Some(TokenKind::Ident(s)) => {
                let kw_mut = s == "mut";
                let kw_ref = s == "ref";
                if kw_mut || kw_ref {
                    self.bump();
                    if kw_ref {
                        self.eat_kw("mut");
                    }
                    let name = self.expect_ident()?;
                    let sub = if self.eat_punct('@') {
                        Some(Box::new(self.parse_pat_single()?))
                    } else {
                        None
                    };
                    return Ok(Pat::Bind { name, sub });
                }
                if s == "_" {
                    self.bump();
                    return Ok(Pat::Wild);
                }
                if s == "true" || s == "false" {
                    self.bump();
                    return Ok(Pat::Lit);
                }
                let path = self.parse_pat_path()?;
                if self.check_punct('(') {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.check_punct(')') {
                        elems.push(self.parse_pat(true)?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(')')?;
                    Ok(Pat::TupleStruct { path, elems })
                } else if self.check_punct('{') {
                    self.bump();
                    let mut fields = Vec::new();
                    while !self.check_punct('}') {
                        if self.eat_op("..") {
                            break;
                        }
                        let saw_ref = self.eat_kw("ref");
                        let saw_mut = self.eat_kw("mut");
                        let name = self.expect_ident()?;
                        let pat = if !saw_ref && !saw_mut && self.eat_punct(':') {
                            self.parse_pat(true)?
                        } else {
                            Pat::Bind {
                                name: name.clone(),
                                sub: None,
                            }
                        };
                        fields.push((name, pat));
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct('}')?;
                    Ok(Pat::Struct { path, fields })
                } else if self.check_op("..=") || self.check_op("..") || self.check_op("...") {
                    self.bump();
                    self.consume_range_end()?;
                    Ok(Pat::Range)
                } else if path.len() == 1 {
                    let name = path.into_iter().next().expect("len checked");
                    if self.eat_punct('@') {
                        let sub = Some(Box::new(self.parse_pat_single()?));
                        Ok(Pat::Bind { name, sub })
                    } else if name.chars().next().is_some_and(char::is_uppercase) {
                        // Unit variants / consts (`None`, `Greater`) —
                        // uppercase initial is the workspace convention.
                        Ok(Pat::Path(vec![name]))
                    } else {
                        Ok(Pat::Bind { name, sub: None })
                    }
                } else {
                    Ok(Pat::Path(path))
                }
            }
            _ => Err(self.err("expected pattern")),
        }
    }

    /// After a literal token in pattern position: `..=`/`..` makes it a
    /// range pattern.
    fn finish_range_pat(&mut self) -> PResult<Pat> {
        if self.check_op("..=") || self.check_op("..") || self.check_op("...") {
            self.bump();
            self.consume_range_end()?;
            Ok(Pat::Range)
        } else {
            Ok(Pat::Lit)
        }
    }

    /// The closing literal/path of a range pattern.
    fn consume_range_end(&mut self) -> PResult<()> {
        match self.kind() {
            Some(TokenKind::Num(_) | TokenKind::Str) => {
                self.bump();
                Ok(())
            }
            Some(TokenKind::Punct('-')) => {
                self.bump();
                self.bump();
                Ok(())
            }
            Some(TokenKind::Ident(_)) => {
                self.parse_pat_path()?;
                Ok(())
            }
            _ => Err(self.err("expected range pattern end")),
        }
    }

    fn parse_pat_path(&mut self) -> PResult<Vec<String>> {
        let mut path = vec![self.expect_ident()?];
        while self.check_op("::") {
            // Turbofish in patterns is not in the subset; `::ident` only.
            if !matches!(self.kind_at(1), Some(TokenKind::Ident(_))) {
                break;
            }
            self.bump();
            path.push(self.expect_ident()?);
        }
        Ok(path)
    }

    // ---- blocks & statements --------------------------------------------

    fn parse_block(&mut self) -> PResult<Block> {
        let line = self.line();
        self.expect_punct('{')?;
        let mut stmts = Vec::new();
        while !self.check_punct('}') {
            if self.pos >= self.t.len() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect_punct('}')?;
        Ok(Block { stmts, line })
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        if self.eat_punct(';') {
            return Ok(Stmt::Empty);
        }
        // Attributes can precede both items and (rarely) statements.
        let attrs_ahead = self.check_punct('#');
        if attrs_ahead || self.stmt_starts_item() {
            let s = self.save();
            match self.parse_item() {
                Ok(item) => return Ok(Stmt::Item(item)),
                Err(e) => {
                    if attrs_ahead {
                        // `#[cfg(…)]` on a statement: re-parse as expr
                        // after dropping the attributes.
                        self.restore(s);
                        self.parse_attrs()?;
                        if self.eat_punct(';') {
                            return Ok(Stmt::Empty);
                        }
                        if self.check_kw("let") {
                            return self.parse_let();
                        }
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        if self.check_kw("let") {
            return self.parse_let();
        }
        // A block-like expression in statement position is complete on
        // its own: `match x { … } (a, b)` is the end of the match plus a
        // new tuple statement, not a call. Parse just the block-like
        // primary, without binary/postfix continuation.
        if self.at_block_like() {
            let expr = self.parse_primary(FREE)?;
            let semi = self.eat_punct(';');
            return Ok(Stmt::Expr { expr, semi });
        }
        let expr = self.parse_expr(FREE)?;
        let semi = self.eat_punct(';');
        Ok(Stmt::Expr { expr, semi })
    }

    /// Is the cursor at a block-like expression start (one that, in
    /// statement or match-arm position, terminates without an operator
    /// continuation)?
    fn at_block_like(&self) -> bool {
        match self.kind() {
            Some(TokenKind::Punct('{')) if !self.half_gt => true,
            Some(TokenKind::Ident(s)) if !self.half_gt => match s.as_str() {
                "if" | "match" | "while" | "loop" | "for" => true,
                "unsafe" | "const" => {
                    matches!(self.kind_at(1), Some(TokenKind::Punct('{')))
                }
                _ => false,
            },
            _ => false,
        }
    }

    fn stmt_starts_item(&self) -> bool {
        let kw = match self.kind() {
            Some(TokenKind::Ident(s)) => s.as_str(),
            _ => return false,
        };
        match kw {
            "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "static" | "type"
            | "macro_rules" | "pub" => true,
            // `const` is an item unless it is a `const { … }` inline
            // const block expression.
            "const" => !matches!(self.kind_at(1), Some(TokenKind::Punct('{'))),
            "extern" => matches!(self.kind_at(1), Some(TokenKind::Str)),
            "unsafe" => {
                matches!(self.kind_at(1), Some(TokenKind::Ident(s)) if s == "fn" || s == "impl" || s == "trait" || s == "extern")
            }
            _ => false,
        }
    }

    fn parse_let(&mut self) -> PResult<Stmt> {
        let line = self.line();
        self.expect_kw("let")?;
        let pat = self.parse_pat(true)?;
        let ty = if self.eat_punct(':') {
            Some(self.parse_ty()?)
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.parse_expr(FREE)?)
        } else {
            None
        };
        let els = if self.eat_kw("else") {
            Some(self.parse_block()?)
        } else {
            None
        };
        self.expect_punct(';')?;
        Ok(Stmt::Let {
            pat,
            ty,
            init,
            els,
            line,
        })
    }

    // ---- expressions ----------------------------------------------------

    fn parse_expr(&mut self, r: Restr) -> PResult<Expr> {
        self.parse_assign(r)
    }

    fn parse_assign(&mut self, r: Restr) -> PResult<Expr> {
        let lhs = self.parse_range(r)?;
        let op = match self.kind() {
            _ if self.half_gt => None,
            Some(TokenKind::Punct('=')) => Some(None),
            Some(TokenKind::Op(o)) => match *o {
                "+=" => Some(Some(BinOp::Add)),
                "-=" => Some(Some(BinOp::Sub)),
                "*=" => Some(Some(BinOp::Mul)),
                "/=" => Some(Some(BinOp::Div)),
                "%=" => Some(Some(BinOp::Rem)),
                "<<=" => Some(Some(BinOp::Shl)),
                ">>=" => Some(Some(BinOp::Shr)),
                "&=" => Some(Some(BinOp::BitAnd)),
                "|=" => Some(Some(BinOp::BitOr)),
                "^=" => Some(Some(BinOp::BitXor)),
                _ => None,
            },
            _ => None,
        };
        match op {
            Some(op) => {
                let line = self.line();
                self.bump();
                let rhs = self.parse_assign(r)?; // right-assoc
                Ok(Expr {
                    line,
                    kind: ExprKind::Assign {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                })
            }
            None => Ok(lhs),
        }
    }

    fn parse_range(&mut self, r: Restr) -> PResult<Expr> {
        if self.check_op("..") || self.check_op("..=") {
            let line = self.line();
            self.bump();
            let hi = if self.expr_can_start(r) {
                Some(Box::new(self.parse_or(r)?))
            } else {
                None
            };
            return Ok(Expr {
                line,
                kind: ExprKind::Range { lo: None, hi },
            });
        }
        let lo = self.parse_or(r)?;
        if self.check_op("..") || self.check_op("..=") {
            let line = self.line();
            self.bump();
            let hi = if self.expr_can_start(r) {
                Some(Box::new(self.parse_or(r)?))
            } else {
                None
            };
            return Ok(Expr {
                line,
                kind: ExprKind::Range {
                    lo: Some(Box::new(lo)),
                    hi,
                },
            });
        }
        Ok(lo)
    }

    /// Can the current token begin an expression? Used only to decide
    /// whether a range has an upper bound.
    fn expr_can_start(&self, r: Restr) -> bool {
        match self.kind() {
            None => false,
            Some(TokenKind::Punct(c)) => matches!(c, '(' | '[' | '!' | '-' | '*' | '&' | '|')
                || (*c == '{' && !r.no_struct),
            Some(TokenKind::Op(o)) => matches!(*o, "::" | "&&" | "||"),
            Some(TokenKind::Ident(s)) => s != "else",
            Some(TokenKind::Num(_) | TokenKind::Str) => true,
            Some(TokenKind::Lifetime(_)) => false,
        }
    }

    fn parse_or(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_and(r)?;
        while self.check_op("||") {
            let line = self.line();
            self.bump();
            let rhs = self.parse_and(r)?;
            lhs = bin(BinOp::Or, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_cmp(r)?;
        while self.check_op("&&") {
            let line = self.line();
            self.bump();
            let rhs = self.parse_cmp(r)?;
            lhs = bin(BinOp::And, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_bitor(r)?;
        loop {
            let op = if self.check_op("==") {
                BinOp::Eq
            } else if self.check_op("!=") {
                BinOp::Ne
            } else if self.check_op("<=") {
                BinOp::Le
            } else if self.check_op(">=") {
                BinOp::Ge
            } else if self.check_punct('<') {
                BinOp::Lt
            } else if self.check_punct('>') {
                BinOp::Gt
            } else {
                return Ok(lhs);
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_bitor(r)?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn parse_bitor(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_bitxor(r)?;
        while self.check_punct('|') {
            let line = self.line();
            self.bump();
            let rhs = self.parse_bitxor(r)?;
            lhs = bin(BinOp::BitOr, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn parse_bitxor(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_bitand(r)?;
        while self.check_punct('^') {
            let line = self.line();
            self.bump();
            let rhs = self.parse_bitand(r)?;
            lhs = bin(BinOp::BitXor, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn parse_bitand(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_shift(r)?;
        while self.check_punct('&') {
            let line = self.line();
            self.bump();
            let rhs = self.parse_shift(r)?;
            lhs = bin(BinOp::BitAnd, lhs, rhs, line);
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_add(r)?;
        loop {
            let op = if self.check_op("<<") {
                BinOp::Shl
            } else if self.check_op(">>") {
                BinOp::Shr
            } else {
                return Ok(lhs);
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_add(r)?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn parse_add(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_mul(r)?;
        loop {
            let op = if self.check_punct('+') {
                BinOp::Add
            } else if self.check_punct('-') {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_mul(r)?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn parse_mul(&mut self, r: Restr) -> PResult<Expr> {
        let mut lhs = self.parse_cast(r)?;
        loop {
            let op = if self.check_punct('*') {
                BinOp::Mul
            } else if self.check_punct('/') {
                BinOp::Div
            } else if self.check_punct('%') {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_cast(r)?;
            lhs = bin(op, lhs, rhs, line);
        }
    }

    fn parse_cast(&mut self, r: Restr) -> PResult<Expr> {
        let mut e = self.parse_unary(r)?;
        while self.eat_kw("as") {
            let ty = self.parse_ty()?;
            let line = e.line;
            e = Expr {
                line,
                kind: ExprKind::Cast {
                    expr: Box::new(e),
                    ty,
                },
            };
        }
        Ok(e)
    }

    fn parse_unary(&mut self, r: Restr) -> PResult<Expr> {
        let line = self.line();
        if self.check_punct('-') || self.check_punct('!') || self.check_punct('*') {
            let op = match self.kind() {
                Some(TokenKind::Punct(c)) => *c,
                _ => unreachable!("checked above"),
            };
            self.bump();
            let inner = self.parse_unary(r)?;
            return Ok(Expr {
                line,
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(inner),
                },
            });
        }
        if self.check_punct('&') {
            self.bump();
            self.eat_kw("mut");
            let inner = self.parse_unary(r)?;
            return Ok(Expr {
                line,
                kind: ExprKind::Ref(Box::new(inner)),
            });
        }
        if self.check_op("&&") {
            // `&&x` — two reference levels lexed as one token.
            self.bump();
            self.eat_kw("mut");
            let inner = self.parse_unary(r)?;
            return Ok(Expr {
                line,
                kind: ExprKind::Ref(Box::new(Expr {
                    line,
                    kind: ExprKind::Ref(Box::new(inner)),
                })),
            });
        }
        self.parse_postfix(r)
    }

    fn parse_postfix(&mut self, r: Restr) -> PResult<Expr> {
        let mut e = self.parse_primary(r)?;
        loop {
            if self.check_punct('.') {
                let line = self.line();
                self.bump();
                match self.kind() {
                    Some(TokenKind::Ident(name)) => {
                        let name = name.clone();
                        self.bump();
                        if self.check_op("::") {
                            // `.collect::<Vec<_>>()` turbofish.
                            self.bump();
                            self.parse_generic_args()?;
                        }
                        if self.check_punct('(') {
                            let args = self.parse_call_args()?;
                            e = Expr {
                                line,
                                kind: ExprKind::MethodCall {
                                    recv: Box::new(e),
                                    name,
                                    args,
                                },
                            };
                        } else {
                            e = Expr {
                                line,
                                kind: ExprKind::Field {
                                    base: Box::new(e),
                                    name,
                                },
                            };
                        }
                    }
                    Some(TokenKind::Num(n)) => {
                        // Tuple index. `x.0.1` lexes the `0.1` as one
                        // numeric token — split it back into two fields.
                        let n = n.clone();
                        self.bump();
                        for part in n.split('.') {
                            e = Expr {
                                line,
                                kind: ExprKind::Field {
                                    base: Box::new(e),
                                    name: part.to_string(),
                                },
                            };
                        }
                    }
                    _ => return Err(self.err("expected field or method name after `.`")),
                }
            } else if self.check_punct('?') {
                let line = self.line();
                self.bump();
                e = Expr {
                    line,
                    kind: ExprKind::Try(Box::new(e)),
                };
            } else if self.check_punct('(') {
                let line = e.line;
                let args = self.parse_call_args()?;
                e = Expr {
                    line,
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                };
            } else if self.check_punct('[') {
                let line = self.line();
                self.bump();
                let index = self.parse_expr(FREE)?;
                self.expect_punct(']')?;
                e = Expr {
                    line,
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        while !self.check_punct(')') {
            args.push(self.parse_expr(FREE)?);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok(args)
    }

    fn parse_primary(&mut self, r: Restr) -> PResult<Expr> {
        let line = self.line();
        match self.kind() {
            Some(TokenKind::Num(n)) => {
                let n = n.clone();
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::Num(n),
                })
            }
            Some(TokenKind::Str) => {
                self.bump();
                Ok(Expr {
                    line,
                    kind: ExprKind::Str,
                })
            }
            Some(TokenKind::Punct('(')) => {
                self.bump();
                let mut elems = Vec::new();
                let mut trailing = false;
                while !self.check_punct(')') {
                    elems.push(self.parse_expr(FREE)?);
                    trailing = self.eat_punct(',');
                    if !trailing {
                        break;
                    }
                }
                self.expect_punct(')')?;
                if elems.len() == 1 && !trailing {
                    let inner = elems.pop().expect("len checked");
                    Ok(Expr {
                        line,
                        kind: ExprKind::Paren(Box::new(inner)),
                    })
                } else {
                    Ok(Expr {
                        line,
                        kind: ExprKind::Tuple(elems),
                    })
                }
            }
            Some(TokenKind::Punct('[')) => {
                self.bump();
                let mut elems = Vec::new();
                if !self.check_punct(']') {
                    elems.push(self.parse_expr(FREE)?);
                    if self.eat_punct(';') {
                        // `[elem; count]` repeat form.
                        elems.push(self.parse_expr(FREE)?);
                    } else {
                        while self.eat_punct(',') {
                            if self.check_punct(']') {
                                break;
                            }
                            elems.push(self.parse_expr(FREE)?);
                        }
                    }
                }
                self.expect_punct(']')?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Array(elems),
                })
            }
            Some(TokenKind::Punct('{')) => {
                let b = self.parse_block()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::BlockExpr(b),
                })
            }
            Some(TokenKind::Punct('|') | TokenKind::Op("||")) => self.parse_closure(line),
            Some(TokenKind::Punct('<')) => {
                // `<T as Trait>::method(…)` qualified call path.
                self.bump();
                let qual = self.parse_ty()?;
                let mut segments = vec![qual.head().unwrap_or("?").to_string()];
                if self.eat_kw("as") {
                    let tr = self.parse_ty()?;
                    segments = vec![tr.head().unwrap_or("?").to_string()];
                }
                self.bump_gt()?;
                while self.eat_op("::") {
                    segments.push(self.expect_ident()?);
                }
                Ok(Expr {
                    line,
                    kind: ExprKind::Path(segments),
                })
            }
            Some(TokenKind::Op("::")) => self.parse_path_or_macro_or_struct(r, line),
            Some(TokenKind::Ident(s)) => match s.as_str() {
                "true" | "false" => {
                    let v = s == "true";
                    self.bump();
                    Ok(Expr {
                        line,
                        kind: ExprKind::Bool(v),
                    })
                }
                "if" => self.parse_if(line),
                "match" => {
                    self.bump();
                    let scrut = self.parse_expr(Restr { no_struct: true })?;
                    self.expect_punct('{')?;
                    let mut arms = Vec::new();
                    while !self.check_punct('}') {
                        self.parse_attrs()?;
                        let pat = self.parse_pat(true)?;
                        let guard = if self.eat_kw("if") {
                            Some(self.parse_expr(FREE)?)
                        } else {
                            None
                        };
                        if !self.eat_op("=>") {
                            return Err(self.err("expected `=>` in match arm"));
                        }
                        // A block-like arm body ends the arm even
                        // without a comma: `(a, b) => {}` followed by
                        // the next arm's `(c, d)` must not become a
                        // call on the block.
                        let body = if self.at_block_like() {
                            self.parse_primary(FREE)?
                        } else {
                            self.parse_expr(FREE)?
                        };
                        arms.push(Arm { pat, guard, body });
                        self.eat_punct(',');
                    }
                    self.expect_punct('}')?;
                    Ok(Expr {
                        line,
                        kind: ExprKind::Match {
                            scrut: Box::new(scrut),
                            arms,
                        },
                    })
                }
                "while" => {
                    self.bump();
                    if self.eat_kw("let") {
                        let pat = self.parse_pat(true)?;
                        self.expect_punct('=')?;
                        let expr = self.parse_expr(Restr { no_struct: true })?;
                        let body = self.parse_block()?;
                        Ok(Expr {
                            line,
                            kind: ExprKind::WhileLet {
                                pat,
                                expr: Box::new(expr),
                                body,
                            },
                        })
                    } else {
                        let cond = self.parse_expr(Restr { no_struct: true })?;
                        let body = self.parse_block()?;
                        Ok(Expr {
                            line,
                            kind: ExprKind::While {
                                cond: Box::new(cond),
                                body,
                            },
                        })
                    }
                }
                "loop" => {
                    self.bump();
                    let body = self.parse_block()?;
                    Ok(Expr {
                        line,
                        kind: ExprKind::Loop { body },
                    })
                }
                "for" => {
                    self.bump();
                    let pat = self.parse_pat(true)?;
                    self.expect_kw("in")?;
                    let iter = self.parse_expr(Restr { no_struct: true })?;
                    let body = self.parse_block()?;
                    Ok(Expr {
                        line,
                        kind: ExprKind::For {
                            pat,
                            iter: Box::new(iter),
                            body,
                        },
                    })
                }
                "unsafe" => {
                    self.bump();
                    let b = self.parse_block()?;
                    Ok(Expr {
                        line,
                        kind: ExprKind::UnsafeBlock(b),
                    })
                }
                "const" => {
                    // Inline const block `const { … }`.
                    self.bump();
                    let b = self.parse_block()?;
                    Ok(Expr {
                        line,
                        kind: ExprKind::BlockExpr(b),
                    })
                }
                "return" => {
                    self.bump();
                    let val = if self.expr_can_start(FREE) {
                        Some(Box::new(self.parse_expr(r)?))
                    } else {
                        None
                    };
                    Ok(Expr {
                        line,
                        kind: ExprKind::Return(val),
                    })
                }
                "break" => {
                    self.bump();
                    let val = if self.expr_can_start(r) {
                        Some(Box::new(self.parse_expr(r)?))
                    } else {
                        None
                    };
                    Ok(Expr {
                        line,
                        kind: ExprKind::Break(val),
                    })
                }
                "continue" => {
                    self.bump();
                    Ok(Expr {
                        line,
                        kind: ExprKind::Continue,
                    })
                }
                "move" => {
                    self.bump();
                    if self.check_punct('|') || self.check_op("||") {
                        self.parse_closure(line)
                    } else {
                        Err(self.err("expected closure after `move`"))
                    }
                }
                _ => self.parse_path_or_macro_or_struct(r, line),
            },
            _ => Err(self.err("expected expression")),
        }
    }

    fn parse_if(&mut self, line: u32) -> PResult<Expr> {
        self.expect_kw("if")?;
        let is_let = self.eat_kw("let");
        let (pat, cond) = if is_let {
            let pat = self.parse_pat(true)?;
            self.expect_punct('=')?;
            (Some(pat), self.parse_expr(Restr { no_struct: true })?)
        } else {
            (None, self.parse_expr(Restr { no_struct: true })?)
        };
        let then = self.parse_block()?;
        let els = if self.eat_kw("else") {
            if self.check_kw("if") {
                let l2 = self.line();
                Some(Box::new(self.parse_if(l2)?))
            } else {
                let l2 = self.line();
                let b = self.parse_block()?;
                Some(Box::new(Expr {
                    line: l2,
                    kind: ExprKind::BlockExpr(b),
                }))
            }
        } else {
            None
        };
        Ok(match pat {
            Some(pat) => Expr {
                line,
                kind: ExprKind::IfLet {
                    pat,
                    expr: Box::new(cond),
                    then,
                    els,
                },
            },
            None => Expr {
                line,
                kind: ExprKind::If {
                    cond: Box::new(cond),
                    then,
                    els,
                },
            },
        })
    }

    fn parse_closure(&mut self, line: u32) -> PResult<Expr> {
        let mut params = Vec::new();
        if self.eat_op("||") {
            // zero-parameter closure
        } else {
            self.expect_punct('|')?;
            while !self.check_punct('|') {
                let pat = self.parse_pat(false)?;
                if self.eat_punct(':') {
                    self.parse_ty()?;
                }
                params.push(pat);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct('|')?;
        }
        let body = if self.eat_op("->") {
            self.parse_ty()?;
            let b = self.parse_block()?;
            Expr {
                line,
                kind: ExprKind::BlockExpr(b),
            }
        } else {
            self.parse_expr(FREE)?
        };
        Ok(Expr {
            line,
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        })
    }

    /// A path expression, possibly continuing into a macro call (`path!`)
    /// or struct literal (`path { … }` when permitted).
    fn parse_path_or_macro_or_struct(&mut self, r: Restr, line: u32) -> PResult<Expr> {
        self.eat_op("::");
        let mut segments = vec![self.expect_path_seg()?];
        loop {
            if self.check_op("::") {
                if matches!(self.kind_at(1), Some(TokenKind::Punct('<'))) {
                    // Turbofish `::<args>` — consumed, args dropped.
                    self.bump();
                    self.parse_generic_args()?;
                    continue;
                }
                if matches!(self.kind_at(1), Some(TokenKind::Ident(_))) {
                    self.bump();
                    segments.push(self.expect_path_seg()?);
                    continue;
                }
            }
            break;
        }
        if self.check_punct('!') && !matches!(self.kind_at(1), Some(TokenKind::Punct('='))) {
            self.bump();
            return self.parse_macro_call(segments, line);
        }
        if !r.no_struct && self.check_punct('{') && self.struct_lit_ahead() {
            self.bump();
            let mut fields = Vec::new();
            let mut base = None;
            while !self.check_punct('}') {
                if self.eat_op("..") {
                    base = Some(Box::new(self.parse_expr(FREE)?));
                    break;
                }
                let name = match self.kind() {
                    Some(TokenKind::Ident(n)) => n.clone(),
                    Some(TokenKind::Num(n)) => n.clone(),
                    _ => return Err(self.err("expected field name in struct literal")),
                };
                self.bump();
                let value = if self.eat_punct(':') {
                    self.parse_expr(FREE)?
                } else {
                    Expr {
                        line: self.line(),
                        kind: ExprKind::Path(vec![name.clone()]),
                    }
                };
                fields.push((name, value));
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct('}')?;
            return Ok(Expr {
                line,
                kind: ExprKind::StructLit {
                    path: segments,
                    fields,
                    base,
                },
            });
        }
        Ok(Expr {
            line,
            kind: ExprKind::Path(segments),
        })
    }

    /// Expression path segments include the path keywords.
    fn expect_path_seg(&mut self) -> PResult<String> {
        match self.kind() {
            Some(TokenKind::Ident(s)) if !self.half_gt => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected path segment")),
        }
    }

    /// Looks past the `{` to rule out block-starts that merely follow a
    /// path (`match x { pat => … }` arms would otherwise misparse if the
    /// caller forgot a restriction). A struct literal body starts with
    /// `}`, `ident:`, `ident,`, `ident}`, or `..`.
    fn struct_lit_ahead(&self) -> bool {
        match self.kind_at(1) {
            Some(TokenKind::Punct('}')) | Some(TokenKind::Op("..")) => true,
            Some(TokenKind::Ident(_)) | Some(TokenKind::Num(_)) => matches!(
                self.kind_at(2),
                Some(TokenKind::Punct(':') | TokenKind::Punct(',') | TokenKind::Punct('}'))
            ),
            _ => false,
        }
    }

    /// After `path!`: parse the delimited arguments. `(`/`[` trees are
    /// tried as comma-separated expressions first; on failure (or for
    /// `{` trees) fall back to a raw identifier bag.
    fn parse_macro_call(&mut self, path: Vec<String>, line: u32) -> PResult<Expr> {
        let (open, close) = match self.kind() {
            Some(TokenKind::Punct('(')) => ('(', ')'),
            Some(TokenKind::Punct('[')) => ('[', ']'),
            Some(TokenKind::Punct('{')) => ('{', '}'),
            _ => return Err(self.err("expected macro delimiter")),
        };
        if open != '{' {
            let s = self.save();
            if let Ok(args) = self.try_macro_exprs(close) {
                return Ok(Expr {
                    line,
                    kind: ExprKind::MacroCall {
                        path,
                        args,
                        raw_idents: Vec::new(),
                    },
                });
            }
            self.restore(s);
        }
        let mut raw_idents = Vec::new();
        self.skip_balanced(&mut raw_idents)?;
        Ok(Expr {
            line,
            kind: ExprKind::MacroCall {
                path,
                args: Vec::new(),
                raw_idents,
            },
        })
    }

    fn try_macro_exprs(&mut self, close: char) -> PResult<Vec<Expr>> {
        self.bump(); // open delimiter
        let mut args = Vec::new();
        while !self.check_punct(close) {
            args.push(self.parse_expr(FREE)?);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(close)?;
        Ok(args)
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr, line: u32) -> Expr {
    Expr {
        line,
        kind: ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::walk_block;

    fn parse_ok(src: &str) -> SourceFile {
        match parse_file(src) {
            Ok(f) => f,
            Err(e) => panic!("parse failed: {e}\n---\n{src}"),
        }
    }

    fn first_fn(f: &SourceFile) -> &FnDef {
        for item in &f.items {
            if let ItemKind::Fn(d) = &item.kind {
                return d;
            }
        }
        panic!("no fn item");
    }

    #[test]
    fn fn_with_params_and_body() {
        let f = parse_ok("fn add(a: u64, b: u64) -> u64 { a + b }");
        let d = first_fn(&f);
        assert_eq!(d.name, "add");
        assert_eq!(d.params.len(), 2);
        assert!(matches!(d.ret, Some(Ty::Path { .. })));
        let body = d.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn method_receiver_forms() {
        let f = parse_ok(
            "impl S { fn a(&self) {} fn b(&mut self, x: u8) {} fn c(self) {} fn d(mut self) {} }",
        );
        let ItemKind::Impl { items, self_ty, .. } = &f.items[0].kind else {
            panic!("not impl");
        };
        assert_eq!(self_ty, "S");
        assert_eq!(items.len(), 4);
        for it in items {
            let ItemKind::Fn(d) = &it.kind else {
                panic!("not fn")
            };
            assert!(matches!(d.params[0].ty, Ty::SelfTy), "{}", d.name);
        }
    }

    #[test]
    fn nested_generics_gt_split() {
        let f = parse_ok("fn f() -> Vec<Box<Option<u8>>> { Vec::new() }");
        let d = first_fn(&f);
        assert_eq!(d.ret.as_ref().and_then(Ty::head), Some("Vec"));
    }

    #[test]
    fn struct_literal_restriction_in_conditions() {
        // `S {` after `if` must be condition + block, not a struct lit.
        let f = parse_ok("fn f(s: S) -> bool { if s { true } else { false } }");
        let d = first_fn(&f);
        let Stmt::Expr { expr, .. } = &d.body.as_ref().expect("has body").stmts[0] else {
            panic!("not expr stmt");
        };
        assert!(matches!(expr.kind, ExprKind::If { .. }));
        // …while a parenthesized struct literal in a condition is fine.
        parse_ok("fn g() -> bool { if (S { a: 1 }).ok { true } else { false } }");
    }

    #[test]
    fn struct_literals_and_update_syntax() {
        let f = parse_ok("fn f() -> C { C { a: 1, b, ..Default::default() } }");
        let d = first_fn(&f);
        let Stmt::Expr { expr, .. } = &d.body.as_ref().expect("has body").stmts[0] else {
            panic!("not expr");
        };
        let ExprKind::StructLit { fields, base, .. } = &expr.kind else {
            panic!("not struct lit: {expr:?}");
        };
        assert_eq!(fields.len(), 2);
        assert!(base.is_some());
    }

    #[test]
    fn precedence_shift_binds_tighter_than_compare() {
        let f = parse_ok("fn f(a: u64, b: u64) -> bool { a << 2 < b + 1 }");
        let d = first_fn(&f);
        let Stmt::Expr { expr, .. } = &d.body.as_ref().expect("has body").stmts[0] else {
            panic!("not expr");
        };
        let ExprKind::Binary { op, lhs, rhs } = &expr.kind else {
            panic!("not binary: {expr:?}");
        };
        assert_eq!(*op, BinOp::Lt);
        assert!(matches!(
            lhs.kind,
            ExprKind::Binary { op: BinOp::Shl, .. }
        ));
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn let_else_and_if_let() {
        let f = parse_ok(
            "fn f(o: Option<u8>) -> u8 {\n                let Some(x) = o else { return 0; };\n                if let Some(y) = Some(x) { y } else { 0 }\n            }",
        );
        let d = first_fn(&f);
        let Stmt::Let { els, pat, .. } = &d.body.as_ref().expect("has body").stmts[0] else {
            panic!("not let");
        };
        assert!(els.is_some());
        assert!(matches!(pat, Pat::TupleStruct { .. }));
    }

    #[test]
    fn match_arms_guards_ranges_ors() {
        parse_ok(
            "fn f(x: u8) -> u8 { match x { 0 => 1, 1..=9 => 2, b'a' | b'b' => 3, n if n > 100 => 4, _ => 5 } }",
        );
    }

    #[test]
    fn closures_and_method_chains() {
        parse_ok(
            "fn f(v: Vec<u64>) -> Vec<u64> { v.iter().map(|x| x + 1).filter(|x| *x > 2).collect::<Vec<_>>() }",
        );
        parse_ok("fn g() { spawn(move || { work(); }); }");
        parse_ok("fn h() { let f = |a: &str| -> usize { a.len() }; f(\"x\"); }");
    }

    #[test]
    fn macros_parse_args_or_fall_back() {
        let f = parse_ok("fn f() { assert!(a <= b, \"msg {x}\"); matches!(x, Some(_)); }");
        let d = first_fn(&f);
        let mut macro_count = 0;
        walk_block(d.body.as_ref().expect("has body"), &mut |e| {
            if matches!(e.kind, ExprKind::MacroCall { .. }) {
                macro_count += 1;
            }
        });
        assert_eq!(macro_count, 2);
        // Item macros with brace bodies.
        parse_ok("thread_local! { static X: RefCell<u8> = RefCell::new(0); }");
        parse_ok("macro_rules! m { ($x:expr) => { $x + 1 }; }");
    }

    #[test]
    fn ranges_in_index_and_for() {
        parse_ok("fn f(xs: &[u8]) -> &[u8] { &xs[1..] }");
        parse_ok("fn g(n: usize) { for i in 0..n { use_it(i); } }");
        parse_ok("fn h(xs: &[u8]) { let _ = &xs[..xs.len() - 1]; }");
    }

    #[test]
    fn qualified_paths_and_turbofish() {
        parse_ok("fn f() -> u64 { <u32 as Into<u64>>::into(3u32) }");
        parse_ok("fn g() { let v = Vec::<u8>::with_capacity(4); drop(v); }");
        parse_ok("fn h(s: &str) -> u64 { s.parse::<u64>().unwrap_or(0) }");
    }

    #[test]
    fn items_enums_traits_consts_statics() {
        parse_ok(
            "pub struct P { pub a: u64, b: Vec<u8> }\n             struct T(u64, pub u8);\n             struct U;\n             pub enum E { A, B(u8), C { x: u64 }, D = 4 }\n             trait Tr: Base { const K: u8; type Out; fn req(&self) -> u8; fn def(&self) -> u8 { 0 } }\n             const N: usize = 8;\n             static mut G: u64 = 0;\n             type Alias = Vec<u8>;",
        );
    }

    #[test]
    fn extern_blocks_and_extern_fns() {
        parse_ok(
            "extern \"C\" { fn signal(sig: i32, handler: extern \"C\" fn(i32)) -> usize; }\n             extern \"C\" fn on_sig(_sig: i32) {}",
        );
    }

    #[test]
    fn patterns_slice_at_rest() {
        parse_ok("fn f(xs: &[u8]) { if let [first, rest @ ..] = xs { use2(first, rest); } }");
        parse_ok("fn g(p: (u8, u8)) { let (a, mut b) = p; b += a; }");
        parse_ok("fn h(s: S) { let S { a, b: ref c, .. } = s; }");
    }

    #[test]
    fn while_let_and_loops() {
        parse_ok("fn f(mut it: I) { while let Some(x) = it.next() { use_it(x); } }");
        parse_ok("fn g() { loop { if done() { break; } } }");
        parse_ok("fn h() -> u8 { loop { break 3; } }");
    }

    #[test]
    fn expr_line_numbers_survive() {
        let f = parse_ok("fn f(a: u64,\n b: u64) -> u64 {\n a\n +\n b\n}");
        let d = first_fn(&f);
        let Stmt::Expr { expr, .. } = &d.body.as_ref().expect("has body").stmts[0] else {
            panic!("not expr");
        };
        // The `+` sits on line 4.
        assert_eq!(expr.line, 4);
    }

    #[test]
    fn walk_finds_every_call() {
        let f = parse_ok("fn f() { a(); b.c(d()); if x() { y(); } }");
        let d = first_fn(&f);
        let mut calls = Vec::new();
        walk_block(d.body.as_ref().expect("has body"), &mut |e| match &e.kind {
            ExprKind::Call { callee, .. } => {
                if let Some(p) = callee.as_path() {
                    calls.push(p.join("::"));
                }
            }
            ExprKind::MethodCall { name, .. } => calls.push(format!(".{name}")),
            _ => {}
        });
        calls.sort();
        assert_eq!(calls, vec![".c", "a", "d", "x", "y"]);
    }

    #[test]
    fn attr_stmt_and_nested_fn_items() {
        parse_ok("fn f() { #[cfg(test)] let x = 1; fn inner() {} inner(); }");
        parse_ok("#[derive(Clone, Debug)] struct S { #[allow(dead_code)] a: u8 }");
    }

    #[test]
    fn struct_lit_lookahead_rejects_blocks() {
        // `x` then `{ y.z() }` — a path followed by an unrelated block
        // (no colon/comma after the first ident) is not a struct lit.
        let src = "fn f() { let a = x; { a.run() }; }";
        parse_ok(src);
    }

    #[test]
    fn error_reports_line() {
        let e = parse_file("fn f() {\n let = 3;\n}").expect_err("must fail");
        assert_eq!(e.line, 2);
    }
}
