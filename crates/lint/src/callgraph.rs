//! Workspace call graph over [`crate::symbols::Workspace`].
//!
//! Edges come from three resolution forms, in decreasing confidence:
//!
//! 1. **Path calls** — `free_fn(…)`, `Type::method(…)`, `Self::method(…)`:
//!    resolved against the symbol table directly (same-crate candidates
//!    preferred on name collisions).
//! 2. **Method calls with an inferred receiver type** — `self.x.run(…)`
//!    where `x`'s declared field type is known, `let s: Spec = …; s.run()`,
//!    constructor results (`Type::new()`, `Type { … }`). Smart-pointer
//!    wrappers (`Arc`, `Box`, `MutexGuard`, …) are stripped.
//! 3. **Unique-name fallback** — an unresolved `.name(…)` whose name
//!    matches exactly one workspace *method* resolves to it (covers
//!    trait-object dispatch); ambiguous names resolve to nothing.
//!
//! Per-function **panic sinks** are collected alongside: `panic!`-family
//! macros, `.unwrap()`/`.expect()` *not* resolved to a workspace method
//! (the json module defines its own `expect`, which is a call edge, not a
//! panic), and slice/array indexing. Rule D8 walks reachability from the
//! serve request handlers over these.
//!
//! **Panic isolation** — a closure handed to `thread::spawn` runs on its
//! own thread: a panic inside it unwinds that thread and surfaces as
//! `Err` from `join()` in the caller, so it cannot kill the calling
//! thread. Edges and sinks collected inside such a closure are marked
//! [`Edge::isolated`]/[`Sink::isolated`]; [`CallGraph::reach`] does not
//! traverse isolated edges and D8 skips isolated sinks. The boundary is
//! deliberately narrow (literal `thread::spawn(|…| …)` /
//! `std::thread::spawn(move || …)` call syntax): a closure built
//! elsewhere and passed by name gets no isolation credit, and anything
//! the caller does with the `join()` result — say `.unwrap()` — is
//! ordinary non-isolated code that D8 still sees.

use crate::ast::{Block, Expr, ExprKind, Pat, Stmt, Ty};
use crate::symbols::{FnId, Workspace};
use std::collections::BTreeMap;

/// One call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    pub callee: FnId,
    /// Call-site line in the *caller*'s file.
    pub line: u32,
    /// True when the call site sits inside a closure handed to
    /// `thread::spawn`: a panic past this edge unwinds the spawned
    /// thread, not the caller, so panic reachability stops here.
    pub isolated: bool,
}

/// A potential panic site inside one function.
#[derive(Clone, Debug)]
pub struct Sink {
    pub line: u32,
    /// What panics: `panic!`, `unwrap()`, `expect()`, `slice index`.
    pub what: &'static str,
    /// True when the sink sits inside a closure handed to
    /// `thread::spawn` (see [`Edge::isolated`]).
    pub isolated: bool,
}

/// The graph: `edges[f]` and `sinks[f]` are indexed by [`FnId`].
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Vec<Edge>>,
    pub sinks: Vec<Vec<Sink>>,
}

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Methods that panic on the error/none case.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Method names owned by std types, excluded from the unique-name
/// fallback: `.get(…)` on a `HashMap` must not resolve to some workspace
/// fn that happens to be named `get` (a false edge drags unrelated code
/// into D8 reachability), and `.expect(…)` on an `Option` must stay a
/// panic sink even when a workspace type defines its own `expect`.
const STD_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "lock",
    "send",
    "recv",
    "join",
    "read",
    "write",
    "flush",
    "drain",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "take",
    "replace",
    "to_string",
    "parse",
    "as_str",
    "as_bytes",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "store",
    "load",
    "fetch_add",
    "swap",
    "spawn",
    "accept",
    "shutdown",
    "write_all",
    "read_exact",
    "clear",
    "last",
    "first",
    "position",
    "find",
    "filter",
    "collect",
    "count",
    "rev",
    "clamp",
    "abs",
    "from",
    "into",
    "try_into",
    "try_from",
    "default",
    "new",
];

impl CallGraph {
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut g = CallGraph {
            edges: vec![Vec::new(); ws.fns.len()],
            sinks: vec![Vec::new(); ws.fns.len()],
        };
        for f in &ws.fns {
            if let Some(body) = &f.def.body {
                let mut env: Env = BTreeMap::new();
                for p in &f.def.params {
                    bind_pat_ty(&p.pat, Some(&p.ty), f.self_ty.as_deref(), &mut env);
                }
                let mut cx = Cx {
                    ws,
                    caller: f.id,
                    self_ty: f.self_ty.as_deref(),
                    crate_key: &f.crate_key,
                    isolated: false,
                    edges: &mut g.edges[f.id],
                    sinks: &mut g.sinks[f.id],
                };
                walk_body(body, &mut env, &mut cx);
            }
        }
        for (edges, sinks) in g.edges.iter_mut().zip(&mut g.sinks) {
            // `false < true`, so when the same call site is seen both
            // isolated and not, the non-isolated (conservative) record
            // survives the dedup.
            edges.sort_by_key(|e| (e.line, e.callee, e.isolated));
            edges.dedup_by_key(|e| (e.line, e.callee));
            sinks.sort_by_key(|s| (s.line, s.what, s.isolated));
            sinks.dedup_by_key(|s| (s.line, s.what));
        }
        g
    }

    /// BFS from `roots`; returns, for each reached fn, the predecessor
    /// `(caller, line)` that first discovered it (roots map to `None`).
    /// Isolated edges — calls inside a closure handed to `thread::spawn`
    /// — are not traversed: a panic past them unwinds the spawned thread
    /// and comes back as `Err` at `join()`, never up the caller's stack.
    pub fn reach(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<(FnId, u32)>> {
        let mut seen: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = roots.iter().copied().collect();
        for r in roots {
            seen.insert(*r, None);
        }
        while let Some(f) = queue.pop_front() {
            for e in &self.edges[f] {
                if e.isolated {
                    continue;
                }
                seen.entry(e.callee).or_insert_with(|| {
                    queue.push_back(e.callee);
                    Some((f, e.line))
                });
            }
        }
        seen
    }

    /// Renders the discovery path `root → … → target` for diagnostics.
    pub fn path_to(
        &self,
        ws: &Workspace,
        reach: &BTreeMap<FnId, Option<(FnId, u32)>>,
        target: FnId,
    ) -> String {
        let mut names = vec![ws.fns[target].qual_name()];
        let mut cur = target;
        while let Some(Some((pred, _))) = reach.get(&cur) {
            names.push(ws.fns[*pred].qual_name());
            cur = *pred;
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Local variable → type-head environment.
type Env = BTreeMap<String, String>;

struct Cx<'a> {
    ws: &'a Workspace,
    #[allow(dead_code)]
    caller: FnId,
    self_ty: Option<&'a str>,
    crate_key: &'a str,
    /// True while walking a closure handed to `thread::spawn`.
    isolated: bool,
    edges: &'a mut Vec<Edge>,
    sinks: &'a mut Vec<Sink>,
}

/// Binds a parameter/let pattern into the env. Only simple bindings get
/// a type (destructured elements would need per-element projection, which
/// no rule needs); everything else binds as unknown.
fn bind_pat_ty(pat: &Pat, ty: Option<&Ty>, self_ty: Option<&str>, env: &mut Env) {
    match pat {
        Pat::Bind { name, sub: None } => {
            let head = match ty {
                Some(Ty::SelfTy) => self_ty.map(str::to_string),
                Some(t) => t.deref_head().map(str::to_string),
                None => None,
            };
            match head {
                Some(h) => {
                    env.insert(name.clone(), h);
                }
                None => {
                    env.remove(name); // shadow any outer typed binding
                }
            }
        }
        _ => {
            // Destructured names shadow as unknown.
            let mut names = Vec::new();
            pat.bound_names(&mut names);
            for n in names {
                env.remove(&n);
            }
        }
    }
}

fn walk_body(block: &Block, env: &mut Env, cx: &mut Cx<'_>) {
    let mut scope = env.clone();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                pat, ty, init, els, ..
            } => {
                if let Some(e) = init {
                    walk(e, &mut scope, cx);
                }
                if let Some(b) = els {
                    walk_body(b, &mut scope, cx);
                }
                let inferred_owned;
                let declared_or_inferred: Option<&Ty> = match ty {
                    Some(t) => Some(t),
                    None => match init.as_ref().and_then(|e| infer_ty(e, &scope, cx)) {
                        Some(head) => {
                            inferred_owned = Ty::Path {
                                segments: vec![head],
                                args: Vec::new(),
                            };
                            Some(&inferred_owned)
                        }
                        None => None,
                    },
                };
                bind_pat_ty(pat, declared_or_inferred, cx.self_ty, &mut scope);
            }
            Stmt::Expr { expr, .. } => walk(expr, &mut scope, cx),
            Stmt::Item(_) | Stmt::Empty => {}
        }
    }
}

/// Walks one expression: records call edges and panic sinks, recursing
/// with scope-local environments for blocks.
fn walk(expr: &Expr, env: &mut Env, cx: &mut Cx<'_>) {
    match &expr.kind {
        ExprKind::Call { callee, args } => {
            let mut spawn_boundary = false;
            if let Some(path) = callee.as_path() {
                resolve_path_call(path, expr.line, cx);
                spawn_boundary = is_thread_spawn(path);
            } else {
                walk(callee, env, cx);
            }
            for a in args {
                // Only the closure literal itself is isolated: its body
                // runs on the spawned thread. Any other argument — and
                // the expressions a closure is *built from* elsewhere —
                // still evaluates on the caller's thread.
                if spawn_boundary && matches!(a.kind, ExprKind::Closure { .. }) {
                    let was = std::mem::replace(&mut cx.isolated, true);
                    walk(a, env, cx);
                    cx.isolated = was;
                } else {
                    walk(a, env, cx);
                }
            }
        }
        ExprKind::MethodCall { recv, name, args } => {
            walk(recv, env, cx);
            for a in args {
                walk(a, env, cx);
            }
            let recv_ty = infer_ty(recv, env, cx);
            let resolved = resolve_method(recv_ty.as_deref(), name, cx);
            match resolved {
                Some(callee) => cx.edges.push(Edge {
                    callee,
                    line: expr.line,
                    isolated: cx.isolated,
                }),
                None => {
                    if PANIC_METHODS.contains(&name.as_str()) {
                        let what = if name == "unwrap" {
                            "unwrap()"
                        } else {
                            "expect()"
                        };
                        cx.sinks.push(Sink {
                            line: expr.line,
                            what,
                            isolated: cx.isolated,
                        });
                    }
                }
            }
        }
        ExprKind::MacroCall {
            path,
            args,
            raw_idents: _,
        } => {
            if let Some(last) = path.last() {
                if PANIC_MACROS.contains(&last.as_str()) {
                    cx.sinks.push(Sink {
                        line: expr.line,
                        what: "panic!",
                        isolated: cx.isolated,
                    });
                }
            }
            for a in args {
                walk(a, env, cx);
            }
        }
        ExprKind::Index { base, index } => {
            walk(base, env, cx);
            walk(index, env, cx);
            // Indexing a map via `&map[key]` vs slice indexing is not
            // distinguishable without full types; both panic on missing
            // key / out of range, so both are sinks.
            cx.sinks.push(Sink {
                line: expr.line,
                what: "slice index",
                isolated: cx.isolated,
            });
        }
        ExprKind::If { cond, then, els } => {
            walk(cond, env, cx);
            walk_body(then, env, cx);
            if let Some(e) = els {
                walk(e, env, cx);
            }
        }
        ExprKind::IfLet {
            pat,
            expr: scrut,
            then,
            els,
        } => {
            walk(scrut, env, cx);
            let mut inner = env.clone();
            bind_pat_ty(pat, None, cx.self_ty, &mut inner);
            walk_body(then, &mut inner, cx);
            if let Some(e) = els {
                walk(e, env, cx);
            }
        }
        ExprKind::Match { scrut, arms } => {
            walk(scrut, env, cx);
            for arm in arms {
                let mut inner = env.clone();
                bind_pat_ty(&arm.pat, None, cx.self_ty, &mut inner);
                if let Some(g) = &arm.guard {
                    walk(g, &mut inner, cx);
                }
                walk(&arm.body, &mut inner, cx);
            }
        }
        ExprKind::While { cond, body } => {
            walk(cond, env, cx);
            walk_body(body, env, cx);
        }
        ExprKind::WhileLet {
            pat,
            expr: scrut,
            body,
        } => {
            walk(scrut, env, cx);
            let mut inner = env.clone();
            bind_pat_ty(pat, None, cx.self_ty, &mut inner);
            walk_body(body, &mut inner, cx);
        }
        ExprKind::For { pat, iter, body } => {
            walk(iter, env, cx);
            let mut inner = env.clone();
            bind_pat_ty(pat, None, cx.self_ty, &mut inner);
            walk_body(body, &mut inner, cx);
        }
        ExprKind::Loop { body } => walk_body(body, env, cx),
        ExprKind::BlockExpr(b) | ExprKind::UnsafeBlock(b) => walk_body(b, env, cx),
        ExprKind::Closure { params, body } => {
            let mut inner = env.clone();
            for p in params {
                bind_pat_ty(p, None, cx.self_ty, &mut inner);
            }
            walk(body, &mut inner, cx);
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            walk(lhs, env, cx);
            walk(rhs, env, cx);
        }
        ExprKind::Unary { expr: e, .. }
        | ExprKind::Ref(e)
        | ExprKind::Cast { expr: e, .. }
        | ExprKind::Try(e)
        | ExprKind::Paren(e) => walk(e, env, cx),
        ExprKind::Field { base, .. } => walk(base, env, cx),
        ExprKind::StructLit { fields, base, .. } => {
            for (_, e) in fields {
                walk(e, env, cx);
            }
            if let Some(b) = base {
                walk(b, env, cx);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for e in es {
                walk(e, env, cx);
            }
        }
        ExprKind::Return(e) | ExprKind::Break(e) => {
            if let Some(e) = e {
                walk(e, env, cx);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                walk(e, env, cx);
            }
            if let Some(e) = hi {
                walk(e, env, cx);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Num(_)
        | ExprKind::Str
        | ExprKind::Bool(_)
        | ExprKind::Continue => {}
    }
}

/// Resolves `a::b::f(…)` call paths to workspace fns.
fn resolve_path_call(path: &[String], line: u32, cx: &mut Cx<'_>) {
    let Some(name) = path.last() else { return };
    let candidates: Vec<FnId> = if path.len() >= 2 {
        let qual = &path[path.len() - 2];
        if qual == "Self" {
            match cx.self_ty {
                Some(t) => cx.ws.methods_of(t, name),
                None => Vec::new(),
            }
        } else if qual.chars().next().is_some_and(char::is_uppercase) {
            // `Type::assoc(…)` — enum variant constructors resolve to
            // nothing (enums define no fns under their own name here).
            cx.ws.methods_of(qual, name)
        } else {
            // `module::f(…)` — free fns by name.
            cx.ws
                .fns_named(name)
                .into_iter()
                .filter(|id| cx.ws.fns[*id].self_ty.is_none())
                .collect()
        }
    } else {
        cx.ws
            .fns_named(name)
            .into_iter()
            .filter(|id| cx.ws.fns[*id].self_ty.is_none())
            .collect()
    };
    if let Some(callee) = pick(candidates, cx) {
        cx.edges.push(Edge {
            callee,
            line,
            isolated: cx.isolated,
        });
    }
}

/// Is this call path literally `thread::spawn` / `std::thread::spawn`?
/// The workspace defines no free fn named `spawn`, so the syntactic test
/// cannot shadow a real edge.
fn is_thread_spawn(path: &[String]) -> bool {
    matches!(path, [.., qual, name] if qual == "thread" && name == "spawn")
}

/// Resolves `.name(…)` with an optional inferred receiver type.
fn resolve_method(recv_ty: Option<&str>, name: &str, cx: &Cx<'_>) -> Option<FnId> {
    if let Some(t) = recv_ty {
        let direct = pick(cx.ws.methods_of(t, name), cx);
        if direct.is_some() {
            return direct;
        }
    }
    // Unique-name fallback across workspace methods (trait-object calls).
    // Names std types own are excluded — see [`STD_METHODS`].
    if STD_METHODS.contains(&name) {
        return None;
    }
    let methods: Vec<FnId> = cx
        .ws
        .fns_named(name)
        .into_iter()
        .filter(|id| {
            let f = &cx.ws.fns[*id];
            f.self_ty.is_some()
                && f.def
                    .params
                    .first()
                    .is_some_and(|p| matches!(p.ty, Ty::SelfTy))
        })
        .collect();
    if methods.len() == 1 {
        return Some(methods[0]);
    }
    None
}

/// Picks among resolution candidates: unique wins; on collision prefer
/// the caller's crate; otherwise give up (no edge beats a wrong edge).
fn pick(mut candidates: Vec<FnId>, cx: &Cx<'_>) -> Option<FnId> {
    if candidates.len() > 1 {
        candidates.retain(|id| cx.ws.fns[*id].crate_key == cx.crate_key);
    }
    match candidates.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

/// Infers the type head of an expression from the local env + symbol
/// table. `None` = unknown.
fn infer_ty(expr: &Expr, env: &Env, cx: &Cx<'_>) -> Option<String> {
    match &expr.kind {
        ExprKind::Path(p) => match p.as_slice() {
            [one] if one == "self" => cx.self_ty.map(str::to_string),
            [one] => env.get(one).cloned(),
            _ => None,
        },
        ExprKind::Field { base, name } => {
            let base_ty = infer_ty(base, env, cx)?;
            cx.ws
                .field_ty(&base_ty, name)
                .and_then(Ty::deref_head)
                .map(str::to_string)
        }
        ExprKind::StructLit { path, .. } => path.last().cloned(),
        ExprKind::Call { callee, .. } => {
            let path = callee.as_path()?;
            let name = path.last()?;
            let candidates: Vec<FnId> = if path.len() >= 2
                && path[path.len() - 2]
                    .chars()
                    .next()
                    .is_some_and(char::is_uppercase)
            {
                cx.ws.methods_of(&path[path.len() - 2], name)
            } else {
                cx.ws
                    .fns_named(name)
                    .into_iter()
                    .filter(|id| cx.ws.fns[*id].self_ty.is_none())
                    .collect()
            };
            let id = pick(candidates, cx)?;
            let f = &cx.ws.fns[id];
            match f.def.ret.as_ref()? {
                Ty::SelfTy => f.self_ty.clone(),
                t => t.deref_head().map(str::to_string),
            }
        }
        ExprKind::MethodCall { recv, name, .. } => {
            let recv_ty = infer_ty(recv, env, cx);
            let id = resolve_method(recv_ty.as_deref(), name, cx)?;
            let f = &cx.ws.fns[id];
            match f.def.ret.as_ref()? {
                Ty::SelfTy => f.self_ty.clone(),
                t => t.deref_head().map(str::to_string),
            }
        }
        ExprKind::Cast { ty, .. } => ty.deref_head().map(str::to_string),
        ExprKind::Paren(e) | ExprKind::Ref(e) | ExprKind::Try(e) => infer_ty(e, env, cx),
        ExprKind::Unary { op: '*', expr: e } => infer_ty(e, env, cx),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputFile;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        let files: Vec<InputFile> = srcs
            .iter()
            .map(|(key, src)| InputFile {
                rel_path: format!("crates/{key}/src/lib.rs"),
                crate_key: (*key).to_string(),
                src: (*src).to_string(),
            })
            .collect();
        let (ws, errs) = Workspace::build(&files);
        assert!(errs.is_empty(), "{errs:?}");
        ws
    }

    fn fid(ws: &Workspace, name: &str) -> FnId {
        ws.fns_named(name)[0]
    }

    #[test]
    fn direct_and_method_edges() {
        let w = ws(&[(
            "serve",
            "struct S { spec: Spec }\n\
             struct Spec;\n\
             impl Spec { fn run(&self) {} }\n\
             impl S { fn go(&self) { helper(); self.spec.run(); } }\n\
             fn helper() {}",
        )]);
        let g = CallGraph::build(&w);
        let go = fid(&w, "go");
        let mut callees: Vec<String> = g.edges[go]
            .iter()
            .map(|e| w.fns[e.callee].qual_name())
            .collect();
        callees.sort();
        assert_eq!(callees, vec!["Spec::run".to_string(), "helper".into()]);
    }

    #[test]
    fn let_annotation_and_ctor_inference() {
        let w = ws(&[(
            "serve",
            "struct T;\n\
             impl T { fn new() -> T { T } fn hit(&self) {} }\n\
             fn a() { let t = T::new(); t.hit(); }\n\
             fn b(x: &T) { x.hit(); }",
        )]);
        let g = CallGraph::build(&w);
        for f in ["a", "b"] {
            let id = fid(&w, f);
            assert!(
                g.edges[id].iter().any(|e| w.fns[e.callee].name == "hit"),
                "{f} missing edge: {:?}",
                g.edges[id]
            );
        }
    }

    #[test]
    fn workspace_expect_is_edge_not_sink() {
        let w = ws(&[(
            "telemetry",
            "struct Json;\n\
             impl Json { fn expect(&mut self, b: u8) -> Result<(), ()> { Ok(()) } }\n\
             fn parse(j: &mut Json) { let _ = j.expect(1); }\n\
             fn boom(o: Option<u8>) -> u8 { o.expect(\"x\") }",
        )]);
        let g = CallGraph::build(&w);
        let parse = fid(&w, "parse");
        assert!(g.sinks[parse].is_empty(), "{:?}", g.sinks[parse]);
        assert!(g.edges[parse]
            .iter()
            .any(|e| w.fns[e.callee].name == "expect"));
        let boom = fid(&w, "boom");
        assert_eq!(g.sinks[boom].len(), 1);
        assert_eq!(g.sinks[boom][0].what, "expect()");
    }

    #[test]
    fn reachability_with_paths() {
        let w = ws(&[(
            "serve",
            "fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() { let v: Vec<u8> = Vec::new(); let _ = v[0]; }\n\
             fn unrelated() { panic!(\"x\"); }",
        )]);
        let g = CallGraph::build(&w);
        let reach = g.reach(&[fid(&w, "root")]);
        assert!(reach.contains_key(&fid(&w, "leaf")));
        assert!(!reach.contains_key(&fid(&w, "unrelated")));
        let path = g.path_to(&w, &reach, fid(&w, "leaf"));
        assert_eq!(path, "root -> mid -> leaf");
        assert_eq!(g.sinks[fid(&w, "leaf")][0].what, "slice index");
    }

    #[test]
    fn panic_macros_are_sinks() {
        let w = ws(&[("serve", "fn f(x: u8) { if x > 3 { panic!(\"no\"); } }")]);
        let g = CallGraph::build(&w);
        assert_eq!(g.sinks[fid(&w, "f")][0].what, "panic!");
    }
}
