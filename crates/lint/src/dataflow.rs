//! AST / call-graph dataflow rules D7–D10.
//!
//! These rules run over the whole workspace at once (unlike the
//! per-file token rules D1–D6): they need the symbol table in
//! [`crate::symbols`] for type-directed reasoning and the
//! [`crate::callgraph`] for interprocedural reachability.
//!
//! - **D7** — overflow-hazard arithmetic: bare `+` `-` `*` `<<` on
//!   cycle/address/timestamp-typed values in the simulation crates.
//!   Hazard typing combines declared types (`LineAddr`, `u64` fields)
//!   with a name lexicon (`*cycle*`, `*stamp*`, `*addr*`, `*_at`,
//!   `*_ns`, `now`, `arrival`, `deadline`, `tag`) and propagates
//!   through lets, field reads, and wrapping/min/max chains. Literal
//!   operands are exempt (the bound is compile-time visible); the
//!   escape is `// lint: bounded("…")`.
//! - **D8** — panic reachability: nothing transitively callable from a
//!   serve request handler (a serve fn taking a `TcpStream`) may hit a
//!   panic sink. Sinks and edges come from the call graph; findings
//!   print the discovery path.
//! - **D9** — clock taint: values derived from the audited
//!   `telemetry::prof::now_ns()` host clock must not flow into
//!   `SimResult` construction or `emit(..)` event payloads
//!   (`Event::PerfPhase` is the sanctioned carrier). Taint propagates
//!   through lets, arithmetic, field/tuple composition, and workspace
//!   call returns (a fixpoint over per-fn return summaries).
//! - **D10** — concurrency-order audit: (a) per atomic cell in the
//!   telemetry/serve crates, release-class writes must not pair with
//!   all-Relaxed loads (and vice versa); (b) no two serve-crate locks
//!   acquired in opposite nesting orders, with guard liveness tracked
//!   through let bindings, `drop(..)`, and statement temporaries.
//!
//! All four are deliberately conservative in the same direction as the
//! token rules: a false positive costs one justification pragma; a
//! false negative costs a nondeterministic sweep or a dead handler
//! thread. Analysis is flow-insensitive across loop back-edges and
//! ignores taint through `&mut` out-params — the workspace has neither
//! pattern on the audited flows.

use crate::ast::{walk_block, Block, Expr, ExprKind, Pat, Stmt, Ty};
use crate::callgraph::CallGraph;
use crate::lexer::lex;
use crate::rules::{parse_pragmas, Diagnostic, RuleId};
use crate::symbols::{FnId, Workspace};
use crate::{Finding, InputFile, LintReport};
use std::collections::{BTreeMap, BTreeSet};

/// Runs D7–D10 over the file set, appending findings (and parse errors)
/// to `report`. Pragma suppression (`lint: allow` / `lint: bounded`)
/// is applied here, with the same line-or-next coverage as D1–D6.
pub fn check_workspace(files: &[InputFile], report: &mut LintReport) {
    let (ws, parse_errors) = Workspace::build(files);
    report.parse_errors.extend(parse_errors);
    let graph = CallGraph::build(&ws);

    let mut found: Vec<Finding> = Vec::new();
    check_d7(&ws, &mut found);
    check_d8(&ws, &graph, &mut found);
    check_d9(&ws, &mut found);
    check_d10_atomics(&ws, &mut found);
    check_d10_locks(&ws, &mut found);

    // Pragma suppression: an allow on line L covers findings on L and
    // L+1 (same contract as the token rules). Malformed-pragma
    // diagnostics are already emitted by `check_file`; only the allow
    // list is consumed here.
    let mut allows: BTreeMap<&str, Vec<(u32, RuleId)>> = BTreeMap::new();
    for f in files {
        let (a, _) = parse_pragmas(&lex(&f.src).comments);
        allows.insert(f.rel_path.as_str(), a);
    }
    found.retain(|f| {
        !allows.get(f.rel_path.as_str()).is_some_and(|a| {
            a.iter()
                .any(|(l, r)| *r == f.diag.rule && (f.diag.line == *l || f.diag.line == *l + 1))
        })
    });
    report.findings.extend(found);
}

// ---------------------------------------------------------------------------
// D7 — overflow-hazard arithmetic
// ---------------------------------------------------------------------------

/// Crates whose arithmetic D7 audits (the simulation core; serve and
/// telemetry handle host-side quantities with different failure modes).
const D7_CRATES: &[&str] = &["cache", "core", "mem", "cpu"];

/// Workspace newtypes that are hazard-typed regardless of binding name.
const HAZARD_TYPES: &[&str] = &["LineAddr"];

/// The name lexicon: identifiers that denote simulated-clock or address
/// quantities. Matched case-insensitively on the binding/field name.
fn hazard_name(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.contains("cycle")
        || n.contains("stamp")
        || n.contains("addr")
        || n.ends_with("_at")
        || n.ends_with("_ns")
        || matches!(n.as_str(), "now" | "arrival" | "deadline" | "tag")
}

/// Whether a declared type + binding name is hazard-typed. Known
/// non-integer types (floats, structs) veto a lexicon match: an
/// `avg_cycles: f64` statistic cannot overflow the way a clock can.
fn hazard_ty(ty: &Ty, name: &str) -> bool {
    match ty.deref_head() {
        Some(h) if HAZARD_TYPES.contains(&h) => true,
        Some("u64" | "u32" | "usize" | "u128") | None => hazard_name(name),
        Some(_) => false,
    }
}

#[derive(Clone, Default)]
struct D7Env {
    /// Hazard-typed bindings.
    hot: BTreeSet<String>,
    /// Bindings whose declared type vetoes a name match.
    cold: BTreeSet<String>,
    /// Binding → type head, for field-type lookups.
    tys: BTreeMap<String, String>,
}

struct D7Cx<'a> {
    ws: &'a Workspace,
    self_ty: Option<&'a str>,
    rel_path: &'a str,
    out: &'a mut Vec<Finding>,
}

fn check_d7(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.fns {
        if f.in_test || !D7_CRATES.contains(&f.crate_key.as_str()) {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut env = D7Env::default();
        for p in &f.def.params {
            if let Pat::Bind { name, sub: None } = &p.pat {
                let declared = match &p.ty {
                    Ty::SelfTy => f.self_ty.clone(),
                    t => t.deref_head().map(str::to_string),
                };
                if let Some(h) = declared {
                    env.tys.insert(name.clone(), h);
                }
                if hazard_ty(&p.ty, name) {
                    env.hot.insert(name.clone());
                } else if !matches!(p.ty, Ty::Infer) {
                    env.cold.insert(name.clone());
                }
            }
        }
        let mut cx = D7Cx {
            ws,
            self_ty: f.self_ty.as_deref(),
            rel_path: &f.rel_path,
            out,
        };
        d7_block(body, &env, &mut cx);
    }
}

/// Type-head inference for D7's field lookups — a lighter cousin of the
/// call graph's, sufficient for `self.field` and annotated locals.
fn d7_infer_head(e: &Expr, env: &D7Env, cx: &D7Cx<'_>) -> Option<String> {
    match &e.kind {
        ExprKind::Path(p) => match p.as_slice() {
            [one] if one == "self" => cx.self_ty.map(str::to_string),
            [one] => env.tys.get(one).cloned(),
            _ => None,
        },
        ExprKind::Field { base, name } => {
            let b = d7_infer_head(base, env, cx)?;
            cx.ws
                .field_ty(&b, name)
                .and_then(Ty::deref_head)
                .map(str::to_string)
        }
        ExprKind::StructLit { path, .. } => path.last().cloned(),
        ExprKind::Cast { ty, .. } => ty.deref_head().map(str::to_string),
        ExprKind::Paren(i) | ExprKind::Ref(i) | ExprKind::Try(i) => d7_infer_head(i, env, cx),
        ExprKind::Unary { op: '*', expr } => d7_infer_head(expr, env, cx),
        ExprKind::Call { callee, .. } => {
            let p = callee.as_path()?;
            let last = p.last()?;
            HAZARD_TYPES.contains(&last.as_str()).then(|| last.clone())
        }
        _ => None,
    }
}

/// Whether an expression evaluates to a hazard-typed value.
fn d7_hazard(e: &Expr, env: &D7Env, cx: &D7Cx<'_>) -> bool {
    match &e.kind {
        ExprKind::Path(p) => match p.as_slice() {
            [one] => env.hot.contains(one) || (!env.cold.contains(one) && hazard_name(one)),
            // Consts/statics (`SENTINEL_ADDR`) match by name.
            _ => p.last().is_some_and(|s| hazard_name(s)),
        },
        ExprKind::Field { base, name } => {
            if let Some(bt) = d7_infer_head(base, env, cx) {
                if HAZARD_TYPES.contains(&bt.as_str()) {
                    return true; // `line.0` projects the address out of the newtype
                }
                if let Some(ft) = cx.ws.field_ty(&bt, name) {
                    return hazard_ty(ft, name);
                }
            }
            hazard_name(name)
        }
        // A bounded-op chain keeps the hazard type (its *result* is
        // still a clock), as do max/min clamps; anything else (`len`,
        // `count_ones`, …) launders it.
        ExprKind::MethodCall { recv, name, .. } => {
            (name.starts_with("wrapping_")
                || name.starts_with("checked_")
                || name.starts_with("saturating_")
                || name == "max"
                || name == "min")
                && d7_hazard(recv, env, cx)
        }
        ExprKind::Call { callee, args } => {
            let Some(p) = callee.as_path() else {
                return false;
            };
            let Some(last) = p.last() else { return false };
            if HAZARD_TYPES.contains(&last.as_str()) {
                return true; // newtype constructor: `LineAddr(x)`
            }
            if last == "from" || last == "try_from" {
                return args.iter().any(|a| d7_hazard(a, env, cx));
            }
            d7_ret_hazard(p, cx)
        }
        ExprKind::Binary { lhs, rhs, .. } => d7_hazard(lhs, env, cx) || d7_hazard(rhs, env, cx),
        ExprKind::Paren(i)
        | ExprKind::Ref(i)
        | ExprKind::Try(i)
        | ExprKind::Cast { expr: i, .. }
        | ExprKind::Unary { expr: i, .. } => d7_hazard(i, env, cx),
        _ => false,
    }
}

/// Whether an unambiguous workspace fn behind `path` returns a
/// hazard-typed value.
fn d7_ret_hazard(path: &[String], cx: &D7Cx<'_>) -> bool {
    let Some(name) = path.last() else {
        return false;
    };
    let candidates: Vec<FnId> = if path.len() >= 2
        && path[path.len() - 2]
            .chars()
            .next()
            .is_some_and(char::is_uppercase)
    {
        cx.ws.methods_of(&path[path.len() - 2], name)
    } else {
        cx.ws
            .fns_named(name)
            .into_iter()
            .filter(|id| cx.ws.fns[*id].self_ty.is_none())
            .collect()
    };
    match candidates.as_slice() {
        [one] => {
            let f = &cx.ws.fns[*one];
            f.def.ret.as_ref().is_some_and(|t| hazard_ty(t, &f.name))
        }
        _ => false,
    }
}

fn d7_op_str(op: crate::ast::BinOp) -> &'static str {
    use crate::ast::BinOp;
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Shl => "<<",
        _ => "?",
    }
}

fn d7_block(b: &Block, outer: &D7Env, cx: &mut D7Cx<'_>) {
    let mut env = outer.clone();
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let {
                pat, ty, init, els, ..
            } => {
                if let Some(e) = init {
                    d7_expr(e, &env, cx);
                }
                if let Some(eb) = els {
                    d7_block(eb, &env, cx);
                }
                let init_hazard = init.as_ref().is_some_and(|e| d7_hazard(e, &env, cx));
                match pat {
                    Pat::Bind { name, sub: None } => {
                        env.hot.remove(name);
                        env.cold.remove(name);
                        env.tys.remove(name);
                        match ty {
                            Some(t) => {
                                if let Some(h) = t.deref_head() {
                                    env.tys.insert(name.clone(), h.to_string());
                                }
                                if hazard_ty(t, name) {
                                    env.hot.insert(name.clone());
                                } else {
                                    env.cold.insert(name.clone());
                                }
                            }
                            None => {
                                if let Some(h) =
                                    init.as_ref().and_then(|e| d7_infer_head(e, &env, cx))
                                {
                                    env.tys.insert(name.clone(), h);
                                }
                                if init_hazard || hazard_name(name) {
                                    env.hot.insert(name.clone());
                                }
                            }
                        }
                    }
                    other => {
                        let mut names = Vec::new();
                        other.bound_names(&mut names);
                        for n in names {
                            env.cold.remove(&n);
                            env.tys.remove(&n);
                            // `let (start, end) = window(..)` with a
                            // hazard init taints every element.
                            if init_hazard || hazard_name(&n) {
                                env.hot.insert(n);
                            } else {
                                env.hot.remove(&n);
                            }
                        }
                    }
                }
            }
            Stmt::Expr { expr, .. } => {
                d7_expr(expr, &env, cx);
                if let ExprKind::Assign { op: None, lhs, rhs } = &expr.kind {
                    if let Some([name]) = lhs.as_path() {
                        if d7_hazard(rhs, &env, cx) {
                            env.hot.insert(name.clone());
                        }
                    }
                }
            }
            Stmt::Item(_) | Stmt::Empty => {}
        }
    }
}

/// Checks one expression tree against D7 (env is frozen within a
/// statement; nested blocks re-enter [`d7_block`] with a child scope).
fn d7_expr(e: &Expr, env: &D7Env, cx: &mut D7Cx<'_>) {
    match &e.kind {
        ExprKind::Binary { op, lhs, rhs } if op.is_overflow_hazard() => {
            if !lhs.is_literal()
                && !rhs.is_literal()
                && (d7_hazard(lhs, env, cx) || d7_hazard(rhs, env, cx))
            {
                d7_report(e.line, *op, cx);
            }
            d7_expr(lhs, env, cx);
            d7_expr(rhs, env, cx);
        }
        ExprKind::Assign {
            op: Some(op),
            lhs,
            rhs,
        } if op.is_overflow_hazard() => {
            if !rhs.is_literal() && (d7_hazard(lhs, env, cx) || d7_hazard(rhs, env, cx)) {
                d7_report(e.line, *op, cx);
            }
            d7_expr(lhs, env, cx);
            d7_expr(rhs, env, cx);
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            d7_expr(lhs, env, cx);
            d7_expr(rhs, env, cx);
        }
        ExprKind::Unary { expr: i, .. }
        | ExprKind::Ref(i)
        | ExprKind::Cast { expr: i, .. }
        | ExprKind::Try(i)
        | ExprKind::Paren(i) => d7_expr(i, env, cx),
        ExprKind::Call { callee, args } => {
            d7_expr(callee, env, cx);
            for a in args {
                d7_expr(a, env, cx);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            d7_expr(recv, env, cx);
            for a in args {
                d7_expr(a, env, cx);
            }
        }
        ExprKind::Field { base, .. } => d7_expr(base, env, cx),
        ExprKind::Index { base, index } => {
            d7_expr(base, env, cx);
            d7_expr(index, env, cx);
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                d7_expr(a, env, cx);
            }
        }
        ExprKind::StructLit { fields, base, .. } => {
            for (_, fe) in fields {
                d7_expr(fe, env, cx);
            }
            if let Some(be) = base {
                d7_expr(be, env, cx);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for i in es {
                d7_expr(i, env, cx);
            }
        }
        ExprKind::If { cond, then, els } => {
            d7_expr(cond, env, cx);
            d7_block(then, env, cx);
            if let Some(el) = els {
                d7_expr(el, env, cx);
            }
        }
        ExprKind::IfLet {
            expr: scrut,
            then,
            els,
            ..
        } => {
            d7_expr(scrut, env, cx);
            d7_block(then, env, cx);
            if let Some(el) = els {
                d7_expr(el, env, cx);
            }
        }
        ExprKind::Match { scrut, arms } => {
            d7_expr(scrut, env, cx);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    d7_expr(g, env, cx);
                }
                d7_expr(&arm.body, env, cx);
            }
        }
        ExprKind::While { cond, body } => {
            d7_expr(cond, env, cx);
            d7_block(body, env, cx);
        }
        ExprKind::WhileLet {
            expr: scrut, body, ..
        } => {
            d7_expr(scrut, env, cx);
            d7_block(body, env, cx);
        }
        ExprKind::For { iter, body, .. } => {
            d7_expr(iter, env, cx);
            d7_block(body, env, cx);
        }
        ExprKind::Loop { body } => d7_block(body, env, cx),
        ExprKind::BlockExpr(b) | ExprKind::UnsafeBlock(b) => d7_block(b, env, cx),
        ExprKind::Closure { body, .. } => d7_expr(body, env, cx),
        ExprKind::Return(i) | ExprKind::Break(i) => {
            if let Some(i) = i {
                d7_expr(i, env, cx);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(i) = lo {
                d7_expr(i, env, cx);
            }
            if let Some(i) = hi {
                d7_expr(i, env, cx);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Num(_)
        | ExprKind::Str
        | ExprKind::Bool(_)
        | ExprKind::Continue => {}
    }
}

fn d7_report(line: u32, op: crate::ast::BinOp, cx: &mut D7Cx<'_>) {
    cx.out.push(Finding {
        rel_path: cx.rel_path.to_string(),
        diag: Diagnostic {
            line,
            rule: RuleId::D7,
            msg: format!(
                "bare `{}` on a cycle/address/timestamp-typed value; spell the bound \
                 (`wrapping_*`/`saturating_*`/`checked_*`) or justify with \
                 `// lint: bounded(\"…\")`",
                d7_op_str(op)
            ),
        },
    });
}

// ---------------------------------------------------------------------------
// D8 — panic reachability from serve request handlers
// ---------------------------------------------------------------------------

fn check_d8(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Finding>) {
    let roots: Vec<FnId> = ws
        .fns
        .iter()
        .filter(|f| {
            f.crate_key == "serve"
                && !f.in_test
                && f.def
                    .params
                    .iter()
                    .any(|p| p.ty.deref_head() == Some("TcpStream"))
        })
        .map(|f| f.id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let reach = graph.reach(&roots);
    for &id in reach.keys() {
        let f = &ws.fns[id];
        if f.in_test {
            continue;
        }
        for s in &graph.sinks[id] {
            // Sinks inside a `thread::spawn` closure unwind the spawned
            // thread and surface as `Err` at `join()`; the handler
            // thread itself survives, which is all D8 guards.
            if s.isolated {
                continue;
            }
            out.push(Finding {
                rel_path: f.rel_path.clone(),
                diag: Diagnostic {
                    line: s.line,
                    rule: RuleId::D8,
                    msg: format!(
                        "`{}` in `{}` is reachable from a request handler \
                         ({}); a malformed request must get an error \
                         response, not kill the handler thread",
                        s.what,
                        f.qual_name(),
                        graph.path_to(ws, &reach, id)
                    ),
                },
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D9 — host-clock taint into simulation results/events
// ---------------------------------------------------------------------------

fn check_d9(ws: &Workspace, out: &mut Vec<Finding>) {
    // Fixpoint over per-fn return-taint summaries: does this fn return
    // a value derived from now_ns()? Each pass only flips summaries
    // false→true, so iteration count is bounded by call-chain depth.
    let mut ret = vec![false; ws.fns.len()];
    loop {
        let mut changed = false;
        for f in &ws.fns {
            if ret[f.id] || f.in_test {
                continue;
            }
            let Some(body) = &f.def.body else { continue };
            let mut scan = D9Scan {
                ws,
                ret: &ret,
                env: BTreeSet::new(),
                returns_taint: false,
                findings: None,
                rel_path: &f.rel_path,
            };
            let tail = scan.block(body);
            if scan.returns_taint || tail {
                ret[f.id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Sink pass with stable summaries.
    for f in &ws.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut scan = D9Scan {
            ws,
            ret: &ret,
            env: BTreeSet::new(),
            returns_taint: false,
            findings: Some(out),
            rel_path: &f.rel_path,
        };
        scan.block(body);
    }
}

struct D9Scan<'a, 'o> {
    ws: &'a Workspace,
    ret: &'a [bool],
    /// Tainted local bindings (flat per fn — shadowing over-taints,
    /// which errs in the safe direction).
    env: BTreeSet<String>,
    returns_taint: bool,
    findings: Option<&'o mut Vec<Finding>>,
    rel_path: &'a str,
}

impl D9Scan<'_, '_> {
    /// Scans a block in statement order; returns whether its tail value
    /// is tainted.
    fn block(&mut self, b: &Block) -> bool {
        let mut tail = false;
        for stmt in &b.stmts {
            tail = false;
            match stmt {
                Stmt::Let { pat, init, els, .. } => {
                    let t = init.as_ref().is_some_and(|e| self.expr(e));
                    if let Some(eb) = els {
                        self.block(eb);
                    }
                    if t {
                        let mut names = Vec::new();
                        pat.bound_names(&mut names);
                        self.env.extend(names);
                    }
                }
                Stmt::Expr { expr, semi } => {
                    let t = self.expr(expr);
                    if !semi {
                        tail = t;
                    }
                    if let ExprKind::Assign { lhs, rhs, .. } = &expr.kind {
                        if self.env_snapshot_tainted(rhs) {
                            if let Some([name]) = lhs.as_path() {
                                self.env.insert(name.clone());
                            }
                        }
                    }
                }
                Stmt::Item(_) | Stmt::Empty => {}
            }
        }
        tail
    }

    /// Re-evaluates taint of an already-scanned expr without emitting
    /// duplicate sink findings (used for assignment tracking).
    fn env_snapshot_tainted(&mut self, e: &Expr) -> bool {
        let saved = self.findings.take();
        let t = self.expr(e);
        self.findings = saved;
        t
    }

    /// Scans one expression; returns whether its value is tainted.
    /// Sink checks (SimResult literals, `emit(..)` args) happen here
    /// when `findings` is armed.
    fn expr(&mut self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Path(p) => match p.as_slice() {
                [one] => self.env.contains(one),
                _ => false,
            },
            ExprKind::Num(_) | ExprKind::Str | ExprKind::Bool(_) | ExprKind::Continue => false,
            ExprKind::Call { callee, args } => {
                let mut t = false;
                for a in args {
                    t |= self.expr(a);
                }
                if let Some(p) = callee.as_path() {
                    if p.last().is_some_and(|s| s == "now_ns") {
                        return true;
                    }
                    t |= self.call_ret_taint(p);
                } else {
                    t |= self.expr(callee);
                }
                t
            }
            ExprKind::MethodCall { recv, name, args } => {
                if name == "now_ns" {
                    return true;
                }
                let rt = self.expr(recv);
                let mut arg_taints = Vec::with_capacity(args.len());
                for a in args {
                    let t = self.expr(a);
                    arg_taints.push(t);
                }
                if name == "emit" {
                    for (a, &t) in args.iter().zip(&arg_taints) {
                        if t && !mentions_perf_phase(a) {
                            self.report(
                                a.line,
                                "host-clock (prof::now_ns) derived value flows into an \
                                 event payload; Event::PerfPhase is the only sanctioned \
                                 carrier of host time",
                            );
                        }
                    }
                }
                let summary = {
                    let methods: Vec<FnId> = self
                        .ws
                        .fns_named(name)
                        .into_iter()
                        .filter(|id| self.ws.fns[*id].self_ty.is_some())
                        .collect();
                    matches!(methods.as_slice(), [one] if self.ret[*one])
                };
                rt || arg_taints.into_iter().any(|t| t) || summary
            }
            ExprKind::StructLit { path, fields, base } => {
                let mut t = false;
                for (_, fe) in fields {
                    let ft = self.expr(fe);
                    if ft && path.last().is_some_and(|s| s == "SimResult") {
                        self.report(
                            fe.line,
                            "host-clock (prof::now_ns) derived value flows into \
                             SimResult construction; simulation results must be a pure \
                             function of the workload, or determinism CI diffs",
                        );
                    }
                    t |= ft;
                }
                if let Some(be) = base {
                    t |= self.expr(be);
                }
                t
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                l || r
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                false
            }
            ExprKind::Unary { expr: i, .. }
            | ExprKind::Ref(i)
            | ExprKind::Cast { expr: i, .. }
            | ExprKind::Try(i)
            | ExprKind::Paren(i) => self.expr(i),
            ExprKind::Field { base, .. } => self.expr(base),
            ExprKind::Index { base, index } => {
                let b = self.expr(base);
                let i = self.expr(index);
                b || i
            }
            ExprKind::MacroCall { args, .. } => {
                let mut t = false;
                for a in args {
                    t |= self.expr(a);
                }
                t
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                let mut t = false;
                for i in es {
                    t |= self.expr(i);
                }
                t
            }
            ExprKind::If { cond, then, els } => {
                self.expr(cond);
                let t = self.block(then);
                let e2 = els.as_ref().is_some_and(|el| self.expr(el));
                t || e2
            }
            ExprKind::IfLet {
                pat,
                expr: scrut,
                then,
                els,
            } => {
                if self.expr(scrut) {
                    let mut names = Vec::new();
                    pat.bound_names(&mut names);
                    self.env.extend(names);
                }
                let t = self.block(then);
                let e2 = els.as_ref().is_some_and(|el| self.expr(el));
                t || e2
            }
            ExprKind::Match { scrut, arms } => {
                let st = self.expr(scrut);
                let mut t = false;
                for arm in arms {
                    if st {
                        let mut names = Vec::new();
                        arm.pat.bound_names(&mut names);
                        self.env.extend(names);
                    }
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    t |= self.expr(&arm.body);
                }
                t
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
                false
            }
            ExprKind::WhileLet {
                pat,
                expr: scrut,
                body,
            } => {
                if self.expr(scrut) {
                    let mut names = Vec::new();
                    pat.bound_names(&mut names);
                    self.env.extend(names);
                }
                self.block(body);
                false
            }
            ExprKind::For { pat, iter, body } => {
                if self.expr(iter) {
                    let mut names = Vec::new();
                    pat.bound_names(&mut names);
                    self.env.extend(names);
                }
                self.block(body);
                false
            }
            ExprKind::Loop { body } => {
                self.block(body);
                false
            }
            ExprKind::BlockExpr(b) | ExprKind::UnsafeBlock(b) => self.block(b),
            ExprKind::Closure { body, .. } => self.expr(body),
            ExprKind::Return(i) => {
                if let Some(i) = i {
                    if self.expr(i) {
                        self.returns_taint = true;
                    }
                }
                false
            }
            ExprKind::Break(i) => {
                if let Some(i) = i {
                    self.expr(i);
                }
                false
            }
            ExprKind::Range { lo, hi } => {
                let l = lo.as_ref().is_some_and(|i| self.expr(i));
                let h = hi.as_ref().is_some_and(|i| self.expr(i));
                l || h
            }
        }
    }

    /// Return-taint of a workspace fn behind a call path (any matching
    /// candidate tainting is enough — conservative on name collisions).
    fn call_ret_taint(&self, path: &[String]) -> bool {
        let Some(name) = path.last() else {
            return false;
        };
        let candidates: Vec<FnId> = if path.len() >= 2
            && path[path.len() - 2]
                .chars()
                .next()
                .is_some_and(char::is_uppercase)
        {
            self.ws.methods_of(&path[path.len() - 2], name)
        } else {
            self.ws
                .fns_named(name)
                .into_iter()
                .filter(|id| self.ws.fns[*id].self_ty.is_none())
                .collect()
        };
        candidates.iter().any(|id| self.ret[*id])
    }

    fn report(&mut self, line: u32, msg: &str) {
        let rel_path = self.rel_path.to_string();
        if let Some(out) = self.findings.as_deref_mut() {
            out.push(Finding {
                rel_path,
                diag: Diagnostic {
                    line,
                    rule: RuleId::D9,
                    msg: msg.to_string(),
                },
            });
        }
    }
}

/// Whether an expression mentions `PerfPhase` anywhere (the sanctioned
/// host-time event variant).
fn mentions_perf_phase(e: &Expr) -> bool {
    let mut found = false;
    crate::ast::walk_expr(e, &mut |x| match &x.kind {
        ExprKind::Path(p) => found |= p.iter().any(|s| s == "PerfPhase"),
        ExprKind::StructLit { path, .. } => found |= path.iter().any(|s| s == "PerfPhase"),
        _ => {}
    });
    found
}

// ---------------------------------------------------------------------------
// D10a — atomic ordering-pair consistency
// ---------------------------------------------------------------------------

const D10_ATOMIC_CRATES: &[&str] = &["telemetry", "serve"];
const ATOMIC_WRITES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
];
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Default)]
struct AtomicCell {
    /// `(ordering, rel_path, line)` per site.
    writes: Vec<(String, String, u32)>,
    reads: Vec<(String, String, u32)>,
}

fn ordering_of(args: &[Expr]) -> Option<String> {
    args.iter().find_map(|a| match &a.kind {
        ExprKind::Path(p) => p
            .last()
            .filter(|s| ORDERINGS.contains(&s.as_str()))
            .cloned(),
        _ => None,
    })
}

fn check_d10_atomics(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut cells: BTreeMap<(String, String), AtomicCell> = BTreeMap::new();
    for f in &ws.fns {
        if f.in_test || !D10_ATOMIC_CRATES.contains(&f.crate_key.as_str()) {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        walk_block(body, &mut |e| {
            let ExprKind::MethodCall { recv, name, args } = &e.kind else {
                return;
            };
            let Some(ord) = ordering_of(args) else {
                return; // not an atomic op (no Ordering argument)
            };
            let Some(key) = recv.receiver_key() else {
                return;
            };
            let tail = key.rsplit('.').next().unwrap_or(&key).to_string();
            let cell = cells.entry((f.crate_key.clone(), tail)).or_default();
            let site = (ord, f.rel_path.clone(), e.line);
            if name == "load" {
                cell.reads.push(site);
            } else if ATOMIC_WRITES.contains(&name.as_str()) {
                cell.writes.push(site);
            } else if name.starts_with("compare_exchange") || name == "fetch_update" {
                // The success ordering acts as the write; the same site
                // also observes the old value, so count it as a read.
                cell.writes.push(site.clone());
                cell.reads.push(site);
            }
        });
    }
    let release_class = |o: &str| matches!(o, "Release" | "AcqRel" | "SeqCst");
    let acquire_class = |o: &str| matches!(o, "Acquire" | "AcqRel" | "SeqCst");
    for ((_, key), cell) in &cells {
        let rel_writes: Vec<_> = cell
            .writes
            .iter()
            .filter(|(o, _, _)| release_class(o))
            .collect();
        let acq_reads: Vec<_> = cell
            .reads
            .iter()
            .filter(|(o, _, _)| acquire_class(o))
            .collect();
        if !rel_writes.is_empty() && !cell.reads.is_empty() && acq_reads.is_empty() {
            let (ord, path, line) = rel_writes[0];
            let (_, rpath, rline) = &cell.reads[0];
            out.push(Finding {
                rel_path: path.clone(),
                diag: Diagnostic {
                    line: *line,
                    rule: RuleId::D10,
                    msg: format!(
                        "atomic `{key}`: {ord} write here but every load is Relaxed \
                         (e.g. {rpath}:{rline}) — the release fence orders nothing; \
                         make the pair consistent"
                    ),
                },
            });
        } else if !acq_reads.is_empty() && !cell.writes.is_empty() && rel_writes.is_empty() {
            let (ord, path, line) = acq_reads[0];
            let (_, wpath, wline) = &cell.writes[0];
            out.push(Finding {
                rel_path: path.clone(),
                diag: Diagnostic {
                    line: *line,
                    rule: RuleId::D10,
                    msg: format!(
                        "atomic `{key}`: {ord} load here but every write is Relaxed \
                         (e.g. {wpath}:{wline}) — the acquire fence orders nothing; \
                         make the pair consistent"
                    ),
                },
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D10b — lock-order cycles in serve
// ---------------------------------------------------------------------------

struct LockGuard {
    /// The let-bound guard variable, if any (`None` = statement temp).
    var: Option<String>,
    key: String,
}

struct D10bCx<'a> {
    rel_path: &'a str,
    /// `(held, acquired)` → first site.
    pairs: &'a mut BTreeMap<(String, String), (String, u32)>,
}

/// The lock identity an expression acquires, if it is a lock
/// acquisition: `x.lock()`, the serve-crate `lock(&x)` helper, and
/// `.unwrap()`/`.expect()`-wrapped forms. Identity is the last dotted
/// component of the receiver (`self.inner` → `inner`), which names the
/// field/static the Mutex lives in regardless of access path.
fn acquire_key(e: &Expr) -> Option<String> {
    fn tail(key: &str) -> String {
        key.rsplit('.').next().unwrap_or(key).to_string()
    }
    match &e.kind {
        ExprKind::MethodCall { recv, name, .. } if name == "lock" => {
            recv.receiver_key().map(|k| tail(&k))
        }
        ExprKind::MethodCall { recv, name, .. } if name == "unwrap" || name == "expect" => {
            acquire_key(recv)
        }
        ExprKind::Call { callee, args } => {
            let p = callee.as_path()?;
            if p.last()? == "lock" {
                args.first().and_then(Expr::receiver_key).map(|k| tail(&k))
            } else {
                None
            }
        }
        ExprKind::Paren(i) | ExprKind::Try(i) => acquire_key(i),
        _ => None,
    }
}

fn check_d10_locks(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut pairs: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for f in &ws.fns {
        if f.in_test || f.crate_key != "serve" {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut cx = D10bCx {
            rel_path: &f.rel_path,
            pairs: &mut pairs,
        };
        let mut live: Vec<LockGuard> = Vec::new();
        d10b_block(body, &mut live, &mut cx);
    }
    for ((a, b), (path, line)) in &pairs {
        if a == b {
            out.push(Finding {
                rel_path: path.clone(),
                diag: Diagnostic {
                    line: *line,
                    rule: RuleId::D10,
                    msg: format!(
                        "lock `{a}` acquired while a guard on the same lock is still \
                         live — this self-deadlocks on std::sync::Mutex"
                    ),
                },
            });
        } else if let Some((opath, oline)) = pairs.get(&(b.clone(), a.clone())) {
            out.push(Finding {
                rel_path: path.clone(),
                diag: Diagnostic {
                    line: *line,
                    rule: RuleId::D10,
                    msg: format!(
                        "lock order inversion: `{a}` is held while acquiring `{b}` \
                         here, but {opath}:{oline} acquires them in the opposite \
                         order — a deadlock waiting for concurrent requests"
                    ),
                },
            });
        }
    }
}

fn d10b_block(b: &Block, live: &mut Vec<LockGuard>, cx: &mut D10bCx<'_>) {
    let scope_mark = live.len();
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { pat, init, els, .. } => {
                let stmt_mark = live.len();
                if let Some(e) = init {
                    d10b_expr(e, live, cx);
                }
                if let Some(eb) = els {
                    d10b_block(eb, live, cx);
                }
                live.truncate(stmt_mark); // init temporaries die at the `;`
                if let Pat::Bind { name, sub: None } = pat {
                    if let Some(key) = init.as_ref().and_then(acquire_key) {
                        live.push(LockGuard {
                            var: Some(name.clone()),
                            key,
                        });
                    }
                }
            }
            Stmt::Expr { expr, .. } => {
                // `drop(guard)` / `std::mem::drop(guard)` releases early.
                if let ExprKind::Call { callee, args } = &expr.kind {
                    if callee
                        .as_path()
                        .is_some_and(|p| p.last().is_some_and(|s| s == "drop"))
                    {
                        if let Some([name]) = args.first().and_then(Expr::as_path) {
                            live.retain(|g| g.var.as_deref() != Some(name));
                            continue;
                        }
                    }
                }
                let stmt_mark = live.len();
                d10b_expr(expr, live, cx);
                live.truncate(stmt_mark);
            }
            Stmt::Item(_) | Stmt::Empty => {}
        }
    }
    live.truncate(scope_mark);
}

fn d10b_expr(e: &Expr, live: &mut Vec<LockGuard>, cx: &mut D10bCx<'_>) {
    if let Some(key) = acquire_key(e) {
        for g in live.iter() {
            cx.pairs
                .entry((g.key.clone(), key.clone()))
                .or_insert_with(|| (cx.rel_path.to_string(), e.line));
        }
        // Children of a matched acquisition are not re-walked: the
        // `.unwrap()`-wrapped inner `.lock()` is the same acquisition,
        // not a second one.
        live.push(LockGuard { var: None, key });
        return;
    }
    match &e.kind {
        ExprKind::Unary { expr: i, .. }
        | ExprKind::Ref(i)
        | ExprKind::Cast { expr: i, .. }
        | ExprKind::Try(i)
        | ExprKind::Paren(i) => d10b_expr(i, live, cx),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            d10b_expr(lhs, live, cx);
            d10b_expr(rhs, live, cx);
        }
        ExprKind::Call { callee, args } => {
            d10b_expr(callee, live, cx);
            for a in args {
                d10b_expr(a, live, cx);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            d10b_expr(recv, live, cx);
            for a in args {
                d10b_expr(a, live, cx);
            }
        }
        ExprKind::Field { base, .. } => d10b_expr(base, live, cx),
        ExprKind::Index { base, index } => {
            d10b_expr(base, live, cx);
            d10b_expr(index, live, cx);
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                d10b_expr(a, live, cx);
            }
        }
        ExprKind::StructLit { fields, base, .. } => {
            for (_, fe) in fields {
                d10b_expr(fe, live, cx);
            }
            if let Some(be) = base {
                d10b_expr(be, live, cx);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for i in es {
                d10b_expr(i, live, cx);
            }
        }
        ExprKind::If { cond, then, els } => {
            d10b_expr(cond, live, cx);
            d10b_block(then, live, cx);
            if let Some(el) = els {
                d10b_expr(el, live, cx);
            }
        }
        ExprKind::IfLet {
            expr: scrut,
            then,
            els,
            ..
        } => {
            d10b_expr(scrut, live, cx);
            d10b_block(then, live, cx);
            if let Some(el) = els {
                d10b_expr(el, live, cx);
            }
        }
        ExprKind::Match { scrut, arms } => {
            d10b_expr(scrut, live, cx);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    d10b_expr(g, live, cx);
                }
                d10b_expr(&arm.body, live, cx);
            }
        }
        ExprKind::While { cond, body } => {
            d10b_expr(cond, live, cx);
            d10b_block(body, live, cx);
        }
        ExprKind::WhileLet {
            expr: scrut, body, ..
        } => {
            d10b_expr(scrut, live, cx);
            d10b_block(body, live, cx);
        }
        ExprKind::For { iter, body, .. } => {
            d10b_expr(iter, live, cx);
            d10b_block(body, live, cx);
        }
        ExprKind::Loop { body } => d10b_block(body, live, cx),
        ExprKind::BlockExpr(b) | ExprKind::UnsafeBlock(b) => d10b_block(b, live, cx),
        ExprKind::Closure { body, .. } => d10b_expr(body, live, cx),
        ExprKind::Return(i) | ExprKind::Break(i) => {
            if let Some(i) = i {
                d10b_expr(i, live, cx);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(i) = lo {
                d10b_expr(i, live, cx);
            }
            if let Some(i) = hi {
                d10b_expr(i, live, cx);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Num(_)
        | ExprKind::Str
        | ExprKind::Bool(_)
        | ExprKind::Continue => {}
    }
}

// ---------------------------------------------------------------------------
// Planted-violation corpus: every rule must fire on its planted bug at
// the exact line, stay silent on the clean variant, and honor pragma
// suppression without over-suppressing.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::rules::RuleId;
    use crate::{lint_files, InputFile, LintReport};

    fn file(crate_key: &str, name: &str, src: &str) -> InputFile {
        InputFile {
            rel_path: format!("crates/{crate_key}/src/{name}"),
            crate_key: crate_key.to_string(),
            src: src.to_string(),
        }
    }

    /// Lints planted files; panics if any fail to parse (a corpus file
    /// outside the parser subset would silently test nothing).
    #[track_caller]
    fn run(files: Vec<InputFile>) -> LintReport {
        let r = lint_files(&files);
        assert!(
            r.parse_errors.is_empty(),
            "planted corpus failed to parse: {:?}",
            r.parse_errors
        );
        r
    }

    fn lines_for(r: &LintReport, rule: RuleId) -> Vec<u32> {
        r.findings
            .iter()
            .filter(|f| f.diag.rule == rule)
            .map(|f| f.diag.line)
            .collect()
    }

    fn msgs_for(r: &LintReport, rule: RuleId) -> Vec<String> {
        r.findings
            .iter()
            .filter(|f| f.diag.rule == rule)
            .map(|f| f.diag.msg.clone())
            .collect()
    }

    // ---- D7 ---------------------------------------------------------------

    #[test]
    fn d7_flags_bare_arithmetic_on_cycle_values() {
        let r = run(vec![file(
            "mem",
            "sched.rs",
            r#"pub fn drain(cur_cycle: u64, latency: u64) -> u64 {
    cur_cycle + latency
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D7), vec![2]);
    }

    #[test]
    fn d7_literal_operands_and_wrapping_forms_are_clean() {
        let r = run(vec![file(
            "mem",
            "sched.rs",
            r#"pub fn drain(cur_cycle: u64, latency: u64) -> u64 {
    let warm = cur_cycle + 1;
    warm.wrapping_add(latency)
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D7), Vec::<u32>::new());
    }

    #[test]
    fn d7_tracks_hazard_newtypes_through_lets() {
        // `base` is hazard-typed only via `let base = line.0` — the
        // LineAddr projection — not via its name.
        let r = run(vec![file(
            "cache",
            "span.rs",
            r#"pub struct LineAddr(pub u64);

pub fn span(line: LineAddr, ways: u64) -> u64 {
    let base = line.0;
    base * ways
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D7), vec![5]);
    }

    #[test]
    fn d7_is_scoped_to_simulation_crates() {
        // Identical code in `serve` handles host-side quantities; D7
        // does not apply there.
        let r = run(vec![file(
            "serve",
            "timing.rs",
            r#"pub fn drain(cur_cycle: u64, latency: u64) -> u64 {
    cur_cycle + latency
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D7), Vec::<u32>::new());
    }

    #[test]
    fn d7_bounded_pragma_suppresses_only_the_next_line() {
        let r = run(vec![file(
            "core",
            "lat.rs",
            r#"pub fn total(cur_cycle: u64, stall_cycles: u64) -> u64 {
    // lint: bounded("both counts are < 2^40 by the sweep cap")
    let a = cur_cycle + stall_cycles;
    let b = cur_cycle * stall_cycles;
    a.wrapping_add(b)
}
"#,
        )]);
        // Line 3 is covered by the pragma on line 2; line 4 is not.
        assert_eq!(lines_for(&r, RuleId::D7), vec![4]);
    }

    #[test]
    fn d7_allow_pragma_for_a_different_rule_does_not_suppress() {
        let r = run(vec![file(
            "core",
            "lat.rs",
            r#"pub fn total(cur_cycle: u64, stall_cycles: u64) -> u64 {
    // lint: allow(D9, "wrong rule on purpose")
    cur_cycle + stall_cycles
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D7), vec![3]);
    }

    // ---- D8 ---------------------------------------------------------------

    #[test]
    fn d8_flags_panics_reachable_from_request_handlers() {
        let r = run(vec![file(
            "serve",
            "handler.rs",
            r#"use std::net::TcpStream;

pub fn handle(stream: TcpStream) -> usize {
    let _ = stream;
    frame_len(None)
}

fn frame_len(spec: Option<usize>) -> usize {
    spec.expect("present")
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D8), vec![9]);
        let msgs = msgs_for(&r, RuleId::D8);
        assert!(
            msgs[0].contains("handle -> frame_len"),
            "finding should print the discovery path, got: {}",
            msgs[0]
        );
    }

    #[test]
    fn d8_ignores_panics_not_reachable_from_a_handler() {
        // No TcpStream-taking root: the same sink is not a D8 finding.
        let r = run(vec![file(
            "serve",
            "handler.rs",
            r#"pub fn handle(port: u16) -> usize {
    let _ = port;
    frame_len(None)
}

fn frame_len(spec: Option<usize>) -> usize {
    spec.expect("present")
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D8), Vec::<u32>::new());
    }

    #[test]
    fn d8_allow_pragma_suppresses_at_the_sink() {
        let r = run(vec![file(
            "serve",
            "handler.rs",
            r#"use std::net::TcpStream;

pub fn handle(stream: TcpStream) -> usize {
    let _ = stream;
    frame_len(None)
}

fn frame_len(spec: Option<usize>) -> usize {
    // lint: allow(D8, "spec is always Some: handle() fills it")
    spec.expect("present")
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D8), Vec::<u32>::new());
    }

    #[test]
    fn d8_spawned_closure_is_a_panic_isolation_boundary() {
        // The panicking work runs inside `thread::spawn(move || …)` and
        // the handler handles the `join()` Err: a panic unwinds the
        // spawned thread and becomes an error response, which is exactly
        // what D8 demands — no finding.
        let r = run(vec![file(
            "serve",
            "handler.rs",
            r#"use std::net::TcpStream;
use std::thread;

pub fn handle(stream: TcpStream) -> usize {
    let _ = stream;
    let joined = thread::spawn(move || score(None)).join();
    match joined {
        Ok(v) => v,
        Err(_) => 0,
    }
}

fn score(spec: Option<usize>) -> usize {
    spec.expect("present")
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D8), Vec::<u32>::new());
    }

    #[test]
    fn d8_unwrapped_join_is_still_a_finding() {
        // Spawning buys nothing if the handler then unwraps the join
        // result: the panic is re-raised on the handler thread. The
        // `.unwrap()` is ordinary handler code and stays a D8 sink
        // (while `score`'s own `expect` stays isolated — one finding).
        let r = run(vec![file(
            "serve",
            "handler.rs",
            r#"use std::net::TcpStream;
use std::thread;

pub fn handle(stream: TcpStream) -> usize {
    let _ = stream;
    thread::spawn(move || score(None)).join().unwrap()
}

fn score(spec: Option<usize>) -> usize {
    spec.expect("present")
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D8), vec![6]);
    }

    #[test]
    fn d8_closure_without_spawn_gets_no_isolation_credit() {
        // The same closure body run on the handler thread (an iterator
        // adapter here) is NOT isolated — the boundary is the literal
        // `thread::spawn(<closure>)` syntax, nothing looser.
        let r = run(vec![file(
            "serve",
            "handler.rs",
            r#"use std::net::TcpStream;

pub fn handle(stream: TcpStream) -> usize {
    let _ = stream;
    let sizes = vec![1usize];
    sizes.iter().map(|n| score(Some(*n))).count()
}

fn score(spec: Option<usize>) -> usize {
    spec.expect("present")
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D8), vec![10]);
    }

    // ---- D9 ---------------------------------------------------------------

    #[test]
    fn d9_flags_host_clock_flow_into_sim_results() {
        let r = run(vec![file(
            "telemetry",
            "stamp.rs",
            r#"pub struct SimResult {
    pub cycles: u64,
}

fn now_ns() -> u64 {
    0
}

pub fn snapshot() -> SimResult {
    let t0 = now_ns();
    let elapsed = now_ns() - t0;
    SimResult { cycles: elapsed }
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D9), vec![12]);
    }

    #[test]
    fn d9_taint_propagates_through_function_returns_into_emit() {
        // `stamp()` returns host time; the fixpoint must carry that
        // summary into `record`'s emit argument.
        let r = run(vec![file(
            "telemetry",
            "stamp.rs",
            r#"fn now_ns() -> u64 {
    0
}

fn stamp() -> u64 {
    now_ns()
}

pub fn record(bus: &EventBus) {
    let s = stamp();
    bus.emit(s);
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D9), vec![11]);
    }

    #[test]
    fn d9_perf_phase_events_are_exempt() {
        let r = run(vec![file(
            "telemetry",
            "stamp.rs",
            r#"fn now_ns() -> u64 {
    0
}

pub fn record(bus: &EventBus) {
    bus.emit(Event::PerfPhase { wall_ns: now_ns() });
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D9), Vec::<u32>::new());
    }

    #[test]
    fn d9_untainted_sim_results_are_clean() {
        let r = run(vec![file(
            "telemetry",
            "stamp.rs",
            r#"pub struct SimResult {
    pub cycles: u64,
}

pub fn finish(sim_cycles: u64) -> SimResult {
    SimResult { cycles: sim_cycles }
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D9), Vec::<u32>::new());
    }

    // ---- D10a -------------------------------------------------------------

    #[test]
    fn d10_flags_release_store_paired_with_relaxed_loads() {
        let r = run(vec![file(
            "telemetry",
            "flag.rs",
            r#"use std::sync::atomic::{AtomicBool, Ordering};

pub static FLAG: AtomicBool = AtomicBool::new(false);

pub fn set() {
    FLAG.store(true, Ordering::SeqCst);
}

pub fn get() -> bool {
    FLAG.load(Ordering::Relaxed)
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D10), vec![6]);
        assert!(msgs_for(&r, RuleId::D10)[0].contains("every load is Relaxed"));
    }

    #[test]
    fn d10_flags_acquire_load_paired_with_relaxed_stores() {
        let r = run(vec![file(
            "telemetry",
            "flag.rs",
            r#"use std::sync::atomic::{AtomicBool, Ordering};

pub static FLAG: AtomicBool = AtomicBool::new(false);

pub fn set() {
    FLAG.store(true, Ordering::Relaxed);
}

pub fn get() -> bool {
    FLAG.load(Ordering::Acquire)
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D10), vec![10]);
        assert!(msgs_for(&r, RuleId::D10)[0].contains("every write is Relaxed"));
    }

    #[test]
    fn d10_consistent_ordering_pairs_are_clean() {
        // Release/Acquire on one cell, all-Relaxed on another: both fine.
        let r = run(vec![file(
            "telemetry",
            "flag.rs",
            r#"use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub static READY: AtomicBool = AtomicBool::new(false);
pub static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn publish() {
    READY.store(true, Ordering::Release);
    COUNT.fetch_add(1, Ordering::Relaxed);
}

pub fn observe() -> bool {
    let n = COUNT.load(Ordering::Relaxed);
    let _ = n;
    READY.load(Ordering::Acquire)
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D10), Vec::<u32>::new());
    }

    // ---- D10b -------------------------------------------------------------

    #[test]
    fn d10_flags_lock_order_inversion() {
        let r = run(vec![file(
            "serve",
            "locks.rs",
            r#"use std::sync::Mutex;

pub struct S {
    jobs: Mutex<u32>,
    stats: Mutex<u32>,
}

impl S {
    pub fn fill(&self) {
        let j = self.jobs.lock().expect("poisoned");
        let s = self.stats.lock().expect("poisoned");
    }

    pub fn drain(&self) {
        let s = self.stats.lock().expect("poisoned");
        let j = self.jobs.lock().expect("poisoned");
    }
}
"#,
        )]);
        // Both sites of the inverted pair are reported.
        assert_eq!(lines_for(&r, RuleId::D10), vec![11, 16]);
        assert!(msgs_for(&r, RuleId::D10)[0].contains("lock order inversion"));
    }

    #[test]
    fn d10_drop_releases_the_guard() {
        // `drop(j)` ends the jobs guard, so fill() holds nothing when
        // taking stats — no (jobs, stats) pair, hence no inversion
        // against drain()'s (stats, jobs).
        let r = run(vec![file(
            "serve",
            "locks.rs",
            r#"use std::sync::Mutex;

pub struct S {
    jobs: Mutex<u32>,
    stats: Mutex<u32>,
}

impl S {
    pub fn fill(&self) {
        let j = self.jobs.lock().expect("poisoned");
        drop(j);
        let s = self.stats.lock().expect("poisoned");
    }

    pub fn drain(&self) {
        let s = self.stats.lock().expect("poisoned");
        let j = self.jobs.lock().expect("poisoned");
    }
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D10), Vec::<u32>::new());
    }

    #[test]
    fn d10_flags_self_deadlock_reacquisition() {
        let r = run(vec![file(
            "serve",
            "locks.rs",
            r#"use std::sync::Mutex;

pub struct S {
    jobs: Mutex<u32>,
}

impl S {
    pub fn twice(&self) {
        let a = self.jobs.lock().expect("poisoned");
        let b = self.jobs.lock().expect("poisoned");
    }
}
"#,
        )]);
        assert_eq!(lines_for(&r, RuleId::D10), vec![10]);
        assert!(msgs_for(&r, RuleId::D10)[0].contains("self-deadlock"));
    }
}
