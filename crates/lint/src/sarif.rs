//! SARIF 2.1.0 emission (hand-rolled JSON, dependency-free).
//!
//! One run per report: the driver carries the full D1–D11 rule
//! metadata (so code-scanning UIs can show rule help without a second
//! lookup), every finding becomes a `result` with a physical location,
//! and parse failures surface as tool-execution notifications plus
//! `executionSuccessful: false` — a file the parser cannot read is a
//! blind spot, not a clean bill.
//!
//! Output is deterministic: findings arrive pre-sorted from
//! [`crate::lint_files`] and rule metadata is a fixed table, so
//! identical reports serialize byte-identically (CI can diff artifacts
//! across runs).

use crate::rules::RuleId;
use crate::LintReport;

/// Rule metadata table. Order defines `ruleIndex`; keep every
/// [`RuleId`] variant present or findings fall back to index-less
/// results (valid SARIF, worse UX).
const RULES: &[(RuleId, &str)] = &[
    (
        RuleId::D1,
        "No iteration over HashMap/HashSet in simulation crates: per-process hash \
         randomization makes any order-dependent use nondeterministic across runs.",
    ),
    (
        RuleId::D2,
        "No SystemTime/Instant/thread_rng in simulation logic: wall-clock and ambient \
         randomness break replayability.",
    ),
    (
        RuleId::D3,
        "No bare `as` numeric casts in cost/quantization code: silent truncation must \
         be spelled as a checked or documented conversion.",
    ),
    (
        RuleId::D4,
        "No unwrap()/panic! outside tests: library code surfaces errors; expect() with \
         a proof-of-impossibility string is the sanctioned invariant form.",
    ),
    (
        RuleId::D5,
        "Every probe.emit(..) must sit under an `if` naming the ENABLED gate, or the \
         payload is built even in NoProbe builds.",
    ),
    (
        RuleId::D6,
        "A file that accepts sockets outside tests must also arm a read timeout, or \
         one stalled client hangs a server thread forever.",
    ),
    (
        RuleId::D7,
        "Bare +/-/*/<< on cycle/address/timestamp-typed values in the timing crates: \
         spell the bound (wrapping_*/saturating_*/checked_*) or justify with a \
         bounded pragma.",
    ),
    (
        RuleId::D8,
        "No function transitively reachable from a serve request handler may panic: a \
         malformed request must get an error response, not kill the handler thread.",
    ),
    (
        RuleId::D9,
        "Values derived from the prof::now_ns() host clock must not flow into \
         SimResult or simulation event payloads; Event::PerfPhase is the sanctioned \
         carrier.",
    ),
    (
        RuleId::D10,
        "Concurrency-order audit: atomic store/load Ordering pairs on one cell must \
         be consistent, and no two locks may be acquired in opposite nesting orders.",
    ),
    (
        RuleId::D11,
        "Inside crates/serve request-path code, no bare eprintln!: stderr lines must \
         go through the structured serve::log helpers so each is one parseable JSON \
         document carrying the request's trace id.",
    ),
    (
        RuleId::Pragma,
        "Malformed lint pragma: unknown rule name or missing justification string.",
    ),
];

/// Renders the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &LintReport) -> String {
    let mut s = String::with_capacity(4096 + report.findings.len() * 256);
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");

    // tool.driver with the rule table.
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"mlpsim-lint\",\n");
    s.push_str(&format!(
        "          \"version\": \"{}\",\n",
        esc(env!("CARGO_PKG_VERSION"))
    ));
    s.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }}, \
             \"defaultConfiguration\": {{ \"level\": \"error\" }} }}{}\n",
            esc(id.name()),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");

    // invocation: parse failures mean the analysis did not fully run.
    s.push_str("      \"invocations\": [\n        {\n");
    s.push_str(&format!(
        "          \"executionSuccessful\": {}",
        report.parse_errors.is_empty()
    ));
    if report.parse_errors.is_empty() {
        s.push('\n');
    } else {
        s.push_str(",\n          \"toolExecutionNotifications\": [\n");
        for (i, (path, err)) in report.parse_errors.iter().enumerate() {
            s.push_str(&format!(
                "            {{ \"level\": \"error\", \"message\": {{ \"text\": \
                 \"{}: {}\" }} }}{}\n",
                esc(path),
                esc(err),
                if i + 1 < report.parse_errors.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("          ]\n");
    }
    s.push_str("        }\n      ],\n");

    // results: one per finding, in the report's (already sorted) order.
    s.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i == 0 {
            s.push('\n');
        }
        let rule_index = RULES.iter().position(|(id, _)| *id == f.diag.rule);
        s.push_str("        {\n");
        s.push_str(&format!(
            "          \"ruleId\": \"{}\",\n",
            esc(f.diag.rule.name())
        ));
        if let Some(ix) = rule_index {
            s.push_str(&format!("          \"ruleIndex\": {ix},\n"));
        }
        s.push_str("          \"level\": \"error\",\n");
        s.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            esc(&f.diag.msg)
        ));
        s.push_str(&format!(
            "          \"locations\": [ {{ \"physicalLocation\": {{ \
             \"artifactLocation\": {{ \"uri\": \"{}\" }}, \
             \"region\": {{ \"startLine\": {} }} }} }} ]\n",
            esc(&f.rel_path),
            f.diag.line.max(1)
        ));
        s.push_str("        }");
        s.push_str(if i + 1 < report.findings.len() {
            ",\n"
        } else {
            "\n      "
        });
    }
    s.push_str("]\n");

    s.push_str("    }\n  ]\n}\n");
    s
}

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters (everything else passes through as UTF-8).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;
    use crate::Finding;

    fn sample_report() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    rel_path: "crates/mem/src/dram.rs".into(),
                    diag: Diagnostic {
                        line: 63,
                        rule: RuleId::D7,
                        msg: "bare `-` on a \"cycle\" value\twith\nescapes \\ inside".into(),
                    },
                },
                Finding {
                    rel_path: "crates/serve/src/state.rs".into(),
                    diag: Diagnostic {
                        line: 391,
                        rule: RuleId::D8,
                        msg: "`expect()` reachable from a request handler".into(),
                    },
                },
            ],
            parse_errors: vec![("crates/bad/src/lib.rs".into(), "expected `}`".into())],
            files_checked: 3,
        }
    }

    #[test]
    fn escapes_json_metacharacters() {
        assert_eq!(esc("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn every_rule_id_has_metadata() {
        // A findings rule missing from RULES would emit index-less
        // results; keep the table total.
        for rule in [
            RuleId::D1,
            RuleId::D2,
            RuleId::D3,
            RuleId::D4,
            RuleId::D5,
            RuleId::D6,
            RuleId::D7,
            RuleId::D8,
            RuleId::D9,
            RuleId::D10,
            RuleId::D11,
            RuleId::Pragma,
        ] {
            assert!(
                RULES.iter().any(|(id, _)| *id == rule),
                "no SARIF metadata for rule {}",
                rule.name()
            );
        }
    }

    #[test]
    fn sarif_carries_findings_and_parse_errors() {
        let doc = to_sarif(&sample_report());
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"D7\""));
        assert!(doc.contains("\"startLine\": 63"));
        assert!(doc.contains("\"uri\": \"crates/serve/src/state.rs\""));
        assert!(doc.contains("\"executionSuccessful\": false"));
        assert!(doc.contains("expected `}`"));
    }

    #[test]
    fn clean_report_is_successful_with_empty_results() {
        let doc = to_sarif(&LintReport::default());
        assert!(doc.contains("\"executionSuccessful\": true"));
        assert!(doc.contains("\"results\": []"));
    }

    #[test]
    fn output_is_deterministic() {
        let r = sample_report();
        assert_eq!(to_sarif(&r), to_sarif(&r));
    }
}
