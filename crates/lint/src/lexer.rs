//! A Rust lexer — tokens faithful enough to drive both the token-pattern
//! rules (D1–D6) and the recursive-descent parser behind the dataflow
//! rules (D7–D10, [`crate::parser`]).
//!
//! The stream keeps identifiers, punctuation (multi-character operators
//! joined by maximal munch), lifetimes, and literal *placeholders*
//! (numeric text is kept for the parser's const-generic and tuple-index
//! handling; string/char contents are dropped so pattern text inside docs
//! or fixtures can never trip a rule). Comments are collected separately
//! — allow/bounded pragmas live there. Full macro expansion and type
//! resolution remain deliberately out of scope; see the per-rule notes in
//! `rules.rs` and `dataflow.rs` for the accepted approximations.

/// One significant token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    pub kind: TokenKind,
}

/// Token classes. String/char literal *values* are dropped (no rule needs
/// them, and dropping them is what makes planted-violation fixtures inside
/// test strings invisible); numeric text is kept so the parser can tell a
/// tuple index from an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `as`, `unwrap`, `HashMap`, …).
    Ident(String),
    /// A lifetime (`'a`, `'static`), name without the quote.
    Lifetime(String),
    /// A single punctuation byte that is not part of a longer operator
    /// (`.`, `!`, `{`, `<`, …).
    Punct(char),
    /// A multi-character operator (`::`, `->`, `<<`, `..=`, …), joined by
    /// maximal munch.
    Op(&'static str),
    /// A numeric literal with its source text (`0x1F`, `1_000u64`, `0.5`).
    Num(String),
    /// A string, raw-string, byte-string, char, or byte-char literal;
    /// contents dropped.
    Str,
}

/// A comment (line or block) with its starting line, text included —
/// allow-pragmas live here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the significant tokens and the comments, both in source
/// order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first (maximal munch).
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "..",
];

/// Tokenizes `src`. Unterminated constructs (string, block comment) are
/// tolerated — the lexer consumes to end of input rather than erroring,
/// which is the right behavior for a best-effort style checker.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `i` past one byte, maintaining the line counter. All
    // multi-byte UTF-8 continuation bytes are simply consumed.
    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' | b' ' | b'\t' | b'\r' => bump!(),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments).
                let start_line = line;
                let mut text = String::new();
                i += 2;
                while i < b.len() && b[i] != b'\n' {
                    text.push(b[i] as char);
                    i += 1;
                }
                out.comments.push(Comment {
                    line: start_line,
                    text,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let start_line = line;
                let mut text = String::new();
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        text.push(b[i] as char);
                        bump!();
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text,
                });
            }
            b'"' => {
                let start_line = line;
                bump!();
                skip_string_body(b, &mut i, &mut line);
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                // r"…", r#"…"#, b"…", br#"…"# and friends.
                let start_line = line;
                let mut raw = false;
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    raw |= b[i] == b'r';
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if i < b.len() && b[i] == b'"' {
                    bump!();
                    if raw {
                        skip_raw_string_body(b, &mut i, &mut line, hashes);
                    } else {
                        // b"…" — a plain byte string with escape rules.
                        skip_string_body(b, &mut i, &mut line);
                    }
                }
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str,
                });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                // Byte-char literal b'x' / b'\n'. Without this case the
                // `b` lexes as an identifier and the `'x'` as a separate
                // char literal, which corrupts the parser's token stream.
                i += 1; // consume the b; the quote branch below never sees it
                skip_char_literal(b, &mut i, &mut line);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Str,
                });
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote.
                let mut j = i + 1;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') && b[j] != b'\\' {
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        // 'x' — a char literal; consume through the quote.
                        i = j + 1;
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Str,
                        });
                    } else {
                        // Lifetime: consume the quote + identifier.
                        let name = String::from_utf8_lossy(&b[i + 1..j]).into_owned();
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Lifetime(name),
                        });
                        i = j;
                    }
                } else {
                    skip_char_literal(b, &mut i, &mut line);
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Str,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                lex_number(b, &mut i);
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Num(text),
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(text),
                });
            }
            _ => {
                if let Some(op) = OPS
                    .iter()
                    .find(|op| b[i..].starts_with(op.as_bytes()))
                    .copied()
                {
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Op(op),
                    });
                    i += op.len();
                } else {
                    if c.is_ascii() {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Punct(c as char),
                        });
                    }
                    bump!();
                }
            }
        }
    }
    out
}

/// Consumes a numeric literal starting at a digit: integer/float body,
/// optional exponent, optional alphanumeric suffix. A `.` is part of the
/// number only when a digit follows — `0..10` keeps its range operator and
/// `tuple.0.method()` keeps its method call (the old token-dropping lexer
/// swallowed `0.method` whole).
fn lex_number(b: &[u8], i: &mut usize) {
    let radix_prefix = *i + 1 < b.len()
        && b[*i] == b'0'
        && matches!(b[*i + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B');
    if radix_prefix {
        *i += 2;
        while *i < b.len() && (b[*i].is_ascii_alphanumeric() || b[*i] == b'_') {
            *i += 1;
        }
        return;
    }
    while *i < b.len() && (b[*i].is_ascii_digit() || b[*i] == b'_') {
        *i += 1;
    }
    // Fractional part: only when a digit follows the dot.
    if *i + 1 < b.len() && b[*i] == b'.' && b[*i + 1].is_ascii_digit() {
        *i += 1;
        while *i < b.len() && (b[*i].is_ascii_digit() || b[*i] == b'_') {
            *i += 1;
        }
    }
    // Exponent.
    if *i < b.len() && (b[*i] == b'e' || b[*i] == b'E') {
        let mut j = *i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            *i = j;
            while *i < b.len() && (b[*i].is_ascii_digit() || b[*i] == b'_') {
                *i += 1;
            }
        }
    }
    // Type suffix (u64, f32, usize…).
    while *i < b.len() && (b[*i].is_ascii_alphanumeric() || b[*i] == b'_') {
        *i += 1;
    }
}

/// At an opening `'` of a char literal (escaped or not): consume through
/// the closing quote.
fn skip_char_literal(b: &[u8], i: &mut usize, line: &mut u32) {
    *i += 1; // opening quote
    while *i < b.len() && b[*i] != b'\'' {
        if b[*i] == b'\\' {
            *i += 1;
        }
        if *i < b.len() {
            if b[*i] == b'\n' {
                *line += 1;
            }
            *i += 1;
        }
    }
    if *i < b.len() {
        *i += 1; // closing quote
    }
}

/// After an opening `"`, consume through the closing `"` honoring `\`
/// escapes.
fn skip_string_body(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                *i += 1;
                if *i < b.len() {
                    if b[*i] == b'\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// After the opening `"` of a raw string with `hashes` `#`s, consume
/// through the matching `"##…#`. With zero hashes this is escape-free
/// (raw) termination on the first `"`.
fn skip_raw_string_body(b: &[u8], i: &mut usize, line: &mut u32, hashes: usize) {
    while *i < b.len() {
        if b[*i] == b'"' {
            let mut j = *i + 1;
            let mut seen = 0usize;
            while seen < hashes && j < b.len() && b[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                return;
            }
        }
        if b[*i] == b'\n' {
            *line += 1;
        }
        *i += 1;
    }
}

/// Is `b[i..]` the start of a raw/byte string (`r"`, `r#`, `b"`, `br"`,
/// `rb`… prefixes)? Identifiers like `result` must not match.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r###"
            // a comment mentioning unwrap()
            /* block with panic! inside */
            let x = "string with thread_rng";
            let y = r#"raw with SystemTime"#;
            let z = 'q';
            real_ident(x);
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for banned in ["unwrap", "panic", "thread_rng", "SystemTime"] {
            assert!(!ids.contains(&banned.to_string()), "{banned} leaked");
        }
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1;\n// lint: allow(D4, \"why\")\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint: allow"));
    }

    #[test]
    fn lifetimes_are_tokens_not_char_literals() {
        // If the lexer mis-lexed `'a` as an open char literal it would
        // swallow the rest of the line including `drain`.
        let lexed = lex("fn f<'a>(x: &'a mut M) { x.drain(); }");
        let ids: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"drain".to_string()));
        let lifetimes: Vec<&TokenKind> = lexed
            .tokens
            .iter()
            .map(|t| &t.kind)
            .filter(|k| matches!(k, TokenKind::Lifetime(_)))
            .collect();
        assert_eq!(
            lifetimes,
            vec![
                &TokenKind::Lifetime("a".into()),
                &TokenKind::Lifetime("a".into())
            ]
        );
    }

    #[test]
    fn static_lifetime_and_underscore_lifetime() {
        let ks = kinds("&'static str; &'_ T");
        assert!(ks.contains(&TokenKind::Lifetime("static".into())));
        assert!(ks.contains(&TokenKind::Lifetime("_".into())));
    }

    #[test]
    fn escaped_char_literals_terminate() {
        let ids = idents(r"let c = '\n'; after('\'');");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn byte_char_literals_do_not_leak_an_ident() {
        // `b'{'` must lex as one literal, not Ident("b") + char '{'.
        let ks = kinds("m(b'{', b'\\n', b'0')");
        assert!(!ks.contains(&TokenKind::Ident("b".into())), "{ks:?}");
        assert_eq!(
            ks.iter().filter(|k| **k == TokenKind::Str).count(),
            3,
            "{ks:?}"
        );
    }

    #[test]
    fn byte_char_range_patterns_lex_cleanly() {
        // The json parser's `Some(b @ b'0'..=b'9')` shape.
        let ks = kinds("b @ b'0'..=b'9'");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("b".into()),
                TokenKind::Punct('@'),
                TokenKind::Str,
                TokenKind::Op("..="),
                TokenKind::Str,
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numeric_literals_keep_text_and_split_ranges() {
        let ks = kinds("1u32 0.5f64 0x1F_u64 1_000 1e9 0..10");
        assert_eq!(
            ks,
            vec![
                TokenKind::Num("1u32".into()),
                TokenKind::Num("0.5f64".into()),
                TokenKind::Num("0x1F_u64".into()),
                TokenKind::Num("1_000".into()),
                TokenKind::Num("1e9".into()),
                TokenKind::Num("0".into()),
                TokenKind::Op(".."),
                TokenKind::Num("10".into()),
            ]
        );
    }

    #[test]
    fn tuple_index_method_calls_are_not_swallowed() {
        // Regression: the old lexer consumed `0.checked_add` as one
        // numeric literal, hiding the method call from every rule.
        let ids = idents("line.0.checked_add(d)");
        assert_eq!(
            ids,
            vec!["line".to_string(), "checked_add".into(), "d".into()]
        );
        let ks = kinds("line.0.checked_add(d)");
        assert!(ks.contains(&TokenKind::Num("0".into())), "{ks:?}");
    }

    #[test]
    fn operators_join_by_maximal_munch() {
        let ks = kinds("a::b -> c => d == e != f <= g >= h && i || j << k >> l <<= m ..= n .. o");
        let ops: Vec<&str> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Op(o) => Some(*o),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec!["::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "<<=", "..=", ".."]
        );
    }

    #[test]
    fn single_colon_and_angle_stay_punct() {
        let ks = kinds("x: Vec<u8>");
        assert!(ks.contains(&TokenKind::Punct(':')));
        assert!(ks.contains(&TokenKind::Punct('<')));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* outer /* inner */ still comment */ visible");
        assert_eq!(ids, vec!["visible".to_string()]);
    }

    #[test]
    fn raw_strings_with_hashes_and_inner_quotes() {
        // `"#` inside an `r##"…"##` string must not terminate it early.
        let src = r####"let x = r##"quote " and hash # and "# inside"##; tail(x);"####;
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["let".to_string(), "x".into(), "tail".into(), "x".into()]
        );
    }

    #[test]
    fn raw_string_spanning_lines_keeps_line_numbers() {
        let src = "let a = r#\"one\ntwo\nthree\"#;\nafter();";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("after".into()))
            .expect("after token");
        assert_eq!(after.line, 4);
    }
}
