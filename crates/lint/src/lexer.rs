//! A minimal Rust lexer — just enough structure for the workspace rules.
//!
//! The rules in [`crate::rules`] only need a token stream with comments,
//! string literals, and character literals stripped out (so that pattern
//! text inside docs or test fixtures can never trip a rule), plus the
//! comments themselves (so allow-pragmas can be recognized). Full Rust
//! grammar is deliberately out of scope: no macro expansion, no type
//! resolution. Every rule is written to be robust against that — see the
//! per-rule notes in `rules.rs` for the accepted approximations.

/// One significant token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    pub kind: TokenKind,
}

/// The token classes the rules care about. Numeric/string/char literals
/// are dropped entirely: no rule needs their value, and dropping them is
/// what makes planted-violation fixtures inside test strings invisible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `as`, `unwrap`, `HashMap`, …).
    Ident(String),
    /// A single punctuation byte (`.`, `!`, `{`, `<`, …).
    Punct(char),
}

/// A comment (line or block) with its starting line, text included —
/// allow-pragmas live here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the significant tokens and the comments, both in source
/// order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs (string, block comment) are
/// tolerated — the lexer consumes to end of input rather than erroring,
/// which is the right behavior for a best-effort style checker.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `idx` past one character, maintaining the line counter.
    // All multi-byte UTF-8 continuation bytes are simply consumed.
    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' | b' ' | b'\t' | b'\r' => bump!(),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments).
                let start_line = line;
                let mut text = String::new();
                i += 2;
                while i < b.len() && b[i] != b'\n' {
                    text.push(b[i] as char);
                    i += 1;
                }
                out.comments.push(Comment {
                    line: start_line,
                    text,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let start_line = line;
                let mut text = String::new();
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        text.push(b[i] as char);
                        bump!();
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text,
                });
            }
            b'"' => {
                bump!();
                skip_string_body(b, &mut i, &mut line);
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                // r"…", r#"…"#, b"…", br#"…"# and friends.
                let mut raw = false;
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    raw |= b[i] == b'r';
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if i < b.len() && b[i] == b'"' {
                    bump!();
                    if raw {
                        skip_raw_string_body(b, &mut i, &mut line, hashes);
                    } else {
                        // b"…" — a plain byte string with escape rules.
                        skip_string_body(b, &mut i, &mut line);
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote.
                let mut j = i + 1;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') && b[j] != b'\\' {
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        // 'x' — a char literal; consume through the quote.
                        i = j + 1;
                    } else {
                        // Lifetime: consume the quote + identifier, emit
                        // nothing (no rule needs lifetimes).
                        i = j;
                    }
                } else {
                    // Escaped or non-alphabetic char literal: '\n', '\'',
                    // '\u{…}', '0'…
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        if i < b.len() {
                            bump!();
                        }
                    }
                    if i < b.len() {
                        i += 1; // closing quote
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal (with optional suffix / float part);
                // dropped.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `0..10` — don't swallow the range operator.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(text),
                });
            }
            _ => {
                if c.is_ascii() {
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Punct(c as char),
                    });
                }
                bump!();
            }
        }
    }
    out
}

/// After an opening `"`, consume through the closing `"` honoring `\`
/// escapes.
fn skip_string_body(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                *i += 1;
                if *i < b.len() {
                    if b[*i] == b'\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// After the opening `"` of a raw string with `hashes` `#`s, consume
/// through the matching `"##…#`. With zero hashes this is escape-free
/// (raw) termination on the first `"`.
fn skip_raw_string_body(b: &[u8], i: &mut usize, line: &mut u32, hashes: usize) {
    while *i < b.len() {
        if b[*i] == b'"' {
            let mut j = *i + 1;
            let mut seen = 0usize;
            while seen < hashes && j < b.len() && b[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                return;
            }
        }
        if b[*i] == b'\n' {
            *line += 1;
        }
        *i += 1;
    }
}

/// Is `b[i..]` the start of a raw/byte string (`r"`, `r#`, `b"`, `br"`,
/// `rb`… prefixes)? Identifiers like `result` must not match.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                TokenKind::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r###"
            // a comment mentioning unwrap()
            /* block with panic! inside */
            let x = "string with thread_rng";
            let y = r#"raw with SystemTime"#;
            let z = 'q';
            real_ident(x);
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for banned in ["unwrap", "panic", "thread_rng", "SystemTime"] {
            assert!(!ids.contains(&banned.to_string()), "{banned} leaked");
        }
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1;\n// lint: allow(D4, \"why\")\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint: allow"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If the lexer mis-lexed `'a` as an open char literal it would
        // swallow the rest of the line including `drain`.
        let ids = idents("fn f<'a>(x: &'a mut M) { x.drain(); }");
        assert!(ids.contains(&"drain".to_string()));
    }

    #[test]
    fn escaped_char_literals_terminate() {
        let ids = idents(r"let c = '\n'; after('\'');");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numeric_literals_with_suffixes_vanish() {
        let ids = idents("let x = 1u32 + 0.5f64; for i in 0..10 {}");
        assert!(!ids.contains(&"u32".to_string()));
        assert!(!ids.contains(&"f64".to_string()));
        assert!(ids.contains(&"for".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* outer /* inner */ still comment */ visible");
        assert_eq!(ids, vec!["visible".to_string()]);
    }
}
