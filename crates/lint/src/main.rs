//! `mlpsim-lint` — workspace static analysis for simulator determinism
//! and cost-model soundness. Thin driver over [`mlpsim_lint`].
//!
//! ```text
//! cargo run -p mlpsim-lint                   # lint the workspace, exit 1 on findings
//! cargo run -p mlpsim-lint -- --rules        # describe the rules
//! cargo run -p mlpsim-lint -- --sarif out.sarif  # also write a SARIF 2.1.0 report
//! cargo run -p mlpsim-lint -- <root>         # lint an explicit workspace root
//! ```
//!
//! Rules D1–D6 are token-pattern rules; D7–D10 are AST/call-graph
//! dataflow rules (see `--rules` and the `rules`/`dataflow` module docs).
//! Scanned: `src/` of the root package and every `crates/*/src`, skipping
//! `tests/`, `benches/`, `vendor/`, and `target/`. Files are visited in
//! sorted order so output is deterministic (the linter holds itself to
//! its own standard).

use mlpsim_lint::{lint_workspace, sarif};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules" || a == "--help") {
        print!("{RULES_HELP}");
        return ExitCode::SUCCESS;
    }
    let mut sarif_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--sarif" {
            match it.next() {
                Some(p) => sarif_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mlpsim-lint: --sarif requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            root = Some(PathBuf::from(a));
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "mlpsim-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let report = lint_workspace(&root);
    for (path, err) in &report.parse_errors {
        println!("{path}: parse error: {err}");
    }
    for f in &report.findings {
        println!(
            "{}:{}: {}: {}",
            f.rel_path,
            f.diag.line,
            f.diag.rule.name(),
            f.diag.msg
        );
    }
    if let Some(out) = sarif_out {
        if let Err(e) = std::fs::write(&out, sarif::to_sarif(&report)) {
            eprintln!("mlpsim-lint: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "mlpsim-lint: {} files checked, {} violation{}{}",
        report.files_checked,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        if report.parse_errors.is_empty() {
            String::new()
        } else {
            format!(", {} parse error(s)", report.parse_errors.len())
        }
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest (set by
/// cargo at compile time; correct for `cargo run -p mlpsim-lint` from
/// anywhere inside the repo), falling back to the current directory.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

const RULES_HELP: &str = "\
mlpsim-lint rules (escape: `// lint: allow(D<n>, \"justification\")` on or
above the offending line; D7 additionally accepts
`// lint: bounded(\"why the arithmetic cannot overflow\")`):

  D1  no HashMap/HashSet iteration in crates cache, core, mem, exec.
      Unordered iteration feeds victim selection and sweep output, making
      results depend on the process's hash seed. Point lookups (get/entry/
      remove/contains_key) are fine; iterate a Vec/BTreeMap or sort first.

  D2  no SystemTime / Instant / thread_rng in crates cache, core, mem,
      cpu, exec, trace, telemetry. Simulated time is cycle counts;
      randomness must be a seeded generator owned by the workload spec.
      Host wall-clock reads go through the audited telemetry::prof clock
      shim, whose own Instant uses carry the allow pragma. (Experiment
      binaries may time wall-clock — they are outside this rule.)

  D3  no bare `as` numeric casts in crate core (the paper's cost model:
      Algorithm 1 accumulation, cost_q quantization, PSEL arithmetic).
      Use From/TryFrom or the documented helpers in mlpsim_core::convert.

  D4  no unwrap()/panic! outside #[cfg(test)] code, in any crate. CLI
      input and IO failures must print an error and exit nonzero;
      genuine invariants use expect(\"proof\") or assert!.

  D5  every probe.emit(..) call, in any crate, must sit under an
      `if P::ENABLED` guard (compound conditions like
      `P::ENABLED && n > 0` count). The Probe trait's const gate is
      what makes NoProbe telemetry compile to nothing; an unguarded
      emission still builds its event payload. Runtime-gated
      SinkHandle::emit is a different mechanism and exempt.

  D6  any file calling `.accept(..)` or `.incoming(..)` outside tests
      must also call `set_read_timeout` (or the serve crate's
      `arm_read_timeout` helper) outside tests. Accepted sockets are
      read by blocking server threads; without a timeout one stalled
      client parks a thread forever (slow-loris).

AST / call-graph dataflow rules (parser-backed; every workspace file
must parse — a parse error fails the run):

  D7  bare `+` `-` `*` `<<` on cycle/address/timestamp-typed values in
      crates cache, core, mem, cpu. Simulated clocks and line addresses
      are u64s that real traces push near the edges; the PR 7 prefetch
      overflow was exactly this class. Spell the bound: wrapping_*/
      saturating_*/checked_*, or justify with `lint: bounded(\"…\")`.
      Operations with a literal operand are exempt (compile-time bound).

  D8  no function transitively reachable from a serve request handler
      (a serve fn taking a TcpStream) may panic: panic!-family macros,
      unwrap()/expect() (except workspace-defined methods of the same
      name), and slice indexing all count. One malformed request must
      produce an error response, not a dead handler thread. The full
      call path is printed with each finding.

  D9  no value derived from the audited telemetry::prof::now_ns() clock
      may flow into SimResult construction or simulation event payloads
      (Event::PerfPhase, the host-time observability event, is the one
      sanctioned carrier). Taint propagates through lets, arithmetic,
      field reads, and workspace call returns. Host time in simulation
      output is what the determinism CI exists to catch.

  D10 concurrency-order audit, two parts. (a) Atomics: per telemetry/
      prof atomic cell, release-class stores (Release/AcqRel/SeqCst)
      must not pair with all-Relaxed loads, and vice versa — a
      mismatched pair is either a missing fence or a pointless one.
      (b) Locks: no two serve-crate Mutexes acquired in opposite
      nesting orders (lock-order cycle = deadlock waiting to happen).

Exit status: 0 clean, 1 findings or parse errors. Output lines are
`path:line: rule: message`, deterministic across runs. `--sarif <path>`
additionally writes a SARIF 2.1.0 report for code-scanning upload.
";
