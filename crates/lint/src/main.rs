//! `mlpsim-lint` — workspace static analysis for simulator determinism
//! and cost-model soundness.
//!
//! ```text
//! cargo run -p mlpsim-lint            # lint the workspace, exit 1 on violations
//! cargo run -p mlpsim-lint -- --rules # describe the rules
//! cargo run -p mlpsim-lint -- <root>  # lint an explicit workspace root
//! ```
//!
//! The rules (see [`rules`] for details and the pragma escape):
//!
//! - **D1** no iteration over `HashMap`/`HashSet` in `cache`/`core`/`mem`/
//!   `exec` — unordered iteration leaks nondeterminism into victim
//!   selection and sweep output.
//! - **D2** no `SystemTime`/`Instant`/`thread_rng` in simulation logic —
//!   wall-clock and ambient randomness break replayability. The
//!   `telemetry` crate is in scope too, so host-time reads flow only
//!   through the audited `telemetry::prof` clock shim.
//! - **D3** no bare `as` numeric casts in `core` cost/quantization code —
//!   conversions must be checked or documented.
//! - **D4** no `unwrap()`/`panic!` outside tests — errors must surface.
//! - **D5** every `probe.emit(..)` must sit under an `if P::ENABLED`
//!   guard — unguarded emissions build event payloads in `NoProbe`
//!   builds, breaking the zero-cost-when-off telemetry contract.
//! - **D6** a file accepting sockets must arm a read timeout on them —
//!   a blocking read with no timeout lets one stalled client hang a
//!   server thread.
//!
//! Scanned: `src/` of the root package and every `crates/*/src`, skipping
//! `tests/`, `benches/`, `vendor/`, and `target/`. Files are visited in
//! sorted order so output is deterministic (the linter holds itself to
//! its own standard).

mod lexer;
mod rules;

use rules::{check_file, FileScope};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules" || a == "--help") {
        print!("{}", RULES_HELP);
        return ExitCode::SUCCESS;
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        None => workspace_root(),
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "mlpsim-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    match std::fs::read_dir(&crates_dir) {
        Ok(entries) => {
            let mut crates: Vec<PathBuf> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crates.sort();
            for c in crates {
                collect_rs_files(&c.join("src"), &mut files);
            }
        }
        Err(e) => {
            eprintln!("mlpsim-lint: cannot read {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    }
    files.sort();

    let mut violations = 0usize;
    let mut read_errors = 0usize;
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mlpsim-lint: cannot read {}: {e}", f.display());
                read_errors += 1;
                continue;
            }
        };
        let key = crate_key(&root, f);
        let rel = f.strip_prefix(&root).unwrap_or(f);
        for d in check_file(FileScope { crate_key: &key }, &src) {
            println!("{}:{}: {}: {}", rel.display(), d.line, d.rule.name(), d.msg);
            violations += 1;
        }
    }

    eprintln!(
        "mlpsim-lint: {} files checked, {} violation{}",
        files.len(),
        violations,
        if violations == 1 { "" } else { "s" }
    );
    if violations > 0 || read_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: two levels above this crate's manifest (set by
/// cargo at compile time; correct for `cargo run -p mlpsim-lint` from
/// anywhere inside the repo), falling back to the current directory.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Directory key gating rule scope: `cache`, `core`, … for
/// `crates/<key>/…`, `mlpsim` for the root package's `src/`.
fn crate_key(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("crates") => comps
            .next()
            .map_or_else(|| "mlpsim".to_string(), |c| c.into_owned()),
        _ => "mlpsim".to_string(),
    }
}

/// Recursively collects `.rs` files, skipping test/bench/vendor trees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    const SKIP_DIRS: &[&str] = &["tests", "benches", "vendor", "target", ".git"];
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // a crate without src/ (or unreadable) is simply not linted
    };
    for e in entries.filter_map(Result::ok) {
        let p = e.path();
        if p.is_dir() {
            let name = e.file_name();
            if !SKIP_DIRS.contains(&name.to_string_lossy().as_ref()) {
                collect_rs_files(&p, out);
            }
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

const RULES_HELP: &str = "\
mlpsim-lint rules (escape: `// lint: allow(D<n>, \"justification\")` on or
above the offending line; the justification string is mandatory):

  D1  no HashMap/HashSet iteration in crates cache, core, mem, exec.
      Unordered iteration feeds victim selection and sweep output, making
      results depend on the process's hash seed. Point lookups (get/entry/
      remove/contains_key) are fine; iterate a Vec/BTreeMap or sort first.

  D2  no SystemTime / Instant / thread_rng in crates cache, core, mem,
      cpu, exec, trace, telemetry. Simulated time is cycle counts;
      randomness must be a seeded generator owned by the workload spec.
      Host wall-clock reads go through the audited telemetry::prof clock
      shim, whose own Instant uses carry the allow pragma. (Experiment
      binaries may time wall-clock — they are outside this rule.)

  D3  no bare `as` numeric casts in crate core (the paper's cost model:
      Algorithm 1 accumulation, cost_q quantization, PSEL arithmetic).
      Use From/TryFrom or the documented helpers in mlpsim_core::convert.

  D4  no unwrap()/panic! outside #[cfg(test)] code, in any crate. CLI
      input and IO failures must print an error and exit nonzero;
      genuine invariants use expect(\"proof\") or assert!.

  D5  every probe.emit(..) call, in any crate, must sit under an
      `if P::ENABLED` guard (compound conditions like
      `P::ENABLED && n > 0` count). The Probe trait's const gate is
      what makes NoProbe telemetry compile to nothing; an unguarded
      emission still builds its event payload. Runtime-gated
      SinkHandle::emit is a different mechanism and exempt.

  D6  any file calling `.accept(..)` or `.incoming(..)` outside tests
      must also call `set_read_timeout` (or the serve crate's
      `arm_read_timeout` helper) outside tests. Accepted sockets are
      read by blocking server threads; without a timeout one stalled
      client parks a thread forever (slow-loris).

Exit status: 0 clean, 1 violations (or IO errors). Output lines are
`path:line: rule: message`, deterministic across runs.
";
