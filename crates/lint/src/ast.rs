//! The abstract syntax tree produced by [`crate::parser`].
//!
//! This models the Rust subset the workspace uses, at the fidelity the
//! dataflow rules (D7–D10) need: full expression structure with source
//! lines, declared types on bindings and fields, call/method/index shapes,
//! and item structure rich enough to build a workspace symbol table and
//! call graph. It deliberately drops what no rule consumes: generic
//! parameter bounds, where clauses, lifetimes, and macro definitions.

/// One parsed source file.
#[derive(Clone, Debug, Default)]
pub struct SourceFile {
    pub items: Vec<Item>,
}

/// An attribute (`#[cfg(test)]`, `#[inline]`…), flattened to the
/// identifier tokens inside the brackets.
#[derive(Clone, Debug)]
pub struct Attr {
    pub idents: Vec<String>,
    pub line: u32,
}

impl Attr {
    /// Whether this is `#[cfg(test)]` / `#[test]` — gates rule scope.
    pub fn is_test_gate(&self) -> bool {
        match self.idents.as_slice() {
            [a] if a == "test" => true,
            _ => {
                self.idents.first().map(String::as_str) == Some("cfg")
                    && self.idents.iter().any(|s| s == "test")
            }
        }
    }
}

/// One item (top-level or nested in a module/impl/trait).
#[derive(Clone, Debug)]
pub struct Item {
    pub attrs: Vec<Attr>,
    pub kind: ItemKind,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub enum ItemKind {
    /// `use …;` / `extern crate …;` — paths dropped.
    Use,
    /// `mod name;` or `mod name { … }`.
    Mod {
        name: String,
        items: Option<Vec<Item>>,
    },
    Struct {
        name: String,
        /// Tuple-struct fields are named `"0"`, `"1"`, ….
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
    Trait {
        name: String,
        /// Default methods appear as `Fn` items (possibly bodyless).
        items: Vec<Item>,
    },
    Impl {
        /// Head identifier of the self type (`System` for `System<P>`).
        self_ty: String,
        /// Head identifier of the implemented trait, if a trait impl.
        trait_name: Option<String>,
        items: Vec<Item>,
    },
    Fn(FnDef),
    Const {
        name: String,
        ty: Ty,
        init: Option<Expr>,
    },
    Static {
        name: String,
        ty: Ty,
        init: Option<Expr>,
    },
    /// `type X = …;` — alias target dropped.
    TypeAlias { name: String },
    /// An item-position macro invocation (`thread_local! { … }`,
    /// `macro_rules! m { … }`); body skipped.
    MacroCall { name: String },
    /// `extern "C" { … }` — foreign fns/statics, bodyless.
    ExternBlock { items: Vec<Item> },
}

#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub ty: Ty,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub struct Variant {
    pub name: String,
    pub fields: Vec<Field>,
}

/// A function definition or declaration.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    /// `self` receivers appear as a param named `self` with `Ty::SelfTy`.
    pub params: Vec<Param>,
    pub ret: Option<Ty>,
    /// `None` for trait-required and extern declarations.
    pub body: Option<Block>,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub struct Param {
    pub pat: Pat,
    pub ty: Ty,
}

/// A declared type, reduced to what the rules consult.
#[derive(Clone, Debug)]
pub enum Ty {
    /// `a::b::C<args…>` — segments plus the last segment's type args.
    Path { segments: Vec<String>, args: Vec<Ty> },
    Ref(Box<Ty>),
    Tuple(Vec<Ty>),
    Slice(Box<Ty>),
    Array(Box<Ty>),
    /// `fn(..) -> ..` pointers.
    FnPtr,
    /// `dyn Trait` / `impl Trait` — bounds dropped.
    Opaque,
    /// `_`.
    Infer,
    /// `Self` and method receivers.
    SelfTy,
    /// `!`.
    Never,
}

impl Ty {
    /// The head identifier after stripping references: `&'a mut Vec<u8>`
    /// → `Vec`. `None` for non-path types.
    pub fn head(&self) -> Option<&str> {
        match self {
            Ty::Path { segments, .. } => segments.last().map(String::as_str),
            Ty::Ref(inner) => inner.head(),
            _ => None,
        }
    }

    /// Strips references and the smart-pointer/wrapper layers method
    /// resolution sees through (`Arc<T>`, `Box<T>`, `Rc<T>`,
    /// `MutexGuard<T>`), yielding the innermost path head.
    pub fn deref_head(&self) -> Option<&str> {
        match self {
            Ty::Ref(inner) => inner.deref_head(),
            Ty::Path { segments, args } => {
                let head = segments.last().map(String::as_str)?;
                if matches!(head, "Arc" | "Box" | "Rc" | "MutexGuard" | "RwLockReadGuard")
                    && args.len() == 1
                {
                    args[0].deref_head().or(Some(head))
                } else {
                    Some(head)
                }
            }
            _ => None,
        }
    }
}

/// A pattern, reduced to binding structure.
#[derive(Clone, Debug)]
pub enum Pat {
    Wild,
    /// `name`, `mut name`, `ref name`, `name @ sub`.
    Bind { name: String, sub: Option<Box<Pat>> },
    Tuple(Vec<Pat>),
    Slice(Vec<Pat>),
    /// `Path { field: pat, … }`.
    Struct { path: Vec<String>, fields: Vec<(String, Pat)> },
    /// `Path(pat, …)`.
    TupleStruct { path: Vec<String>, elems: Vec<Pat> },
    /// A plain path pattern (`None`, `Ordering::SeqCst`).
    Path(Vec<String>),
    Lit,
    Range,
    Ref(Box<Pat>),
    Or(Vec<Pat>),
    /// `..`.
    Rest,
}

impl Pat {
    /// Every identifier this pattern binds.
    pub fn bound_names(&self, out: &mut Vec<String>) {
        match self {
            Pat::Bind { name, sub } => {
                out.push(name.clone());
                if let Some(s) = sub {
                    s.bound_names(out);
                }
            }
            Pat::Tuple(ps) | Pat::Slice(ps) | Pat::Or(ps) => {
                for p in ps {
                    p.bound_names(out);
                }
            }
            Pat::Struct { fields, .. } => {
                for (_, p) in fields {
                    p.bound_names(out);
                }
            }
            Pat::TupleStruct { elems, .. } => {
                for p in elems {
                    p.bound_names(out);
                }
            }
            Pat::Ref(p) => p.bound_names(out),
            _ => {}
        }
    }
}

/// A block `{ … }`.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub enum Stmt {
    Let {
        pat: Pat,
        ty: Option<Ty>,
        init: Option<Expr>,
        /// `let … else { … }` diverging block.
        els: Option<Block>,
        line: u32,
    },
    Expr {
        expr: Expr,
        /// Whether a trailing `;` followed (tail expressions lack one).
        semi: bool,
    },
    Item(Item),
    Empty,
}

/// Binary operators the rules care about (comparisons and logic included
/// so expression structure is faithful).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

impl BinOp {
    /// The operators rule D7 audits for overflow hazards.
    pub fn is_overflow_hazard(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl)
    }
}

/// An expression with its source line.
#[derive(Clone, Debug)]
pub struct Expr {
    pub line: u32,
    pub kind: ExprKind,
}

#[derive(Clone, Debug)]
pub enum ExprKind {
    /// `a`, `a::b::c` (turbofish args dropped).
    Path(Vec<String>),
    /// Numeric literal (source text kept).
    Num(String),
    /// String/char literal.
    Str,
    /// `true` / `false`.
    Bool(bool),
    /// `-x`, `!x`, `*x`.
    Unary { op: char, expr: Box<Expr> },
    /// `&x`, `&mut x`.
    Ref(Box<Expr>),
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `a = b` (`op` None) or `a += b` (`op` Some).
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Cast { expr: Box<Expr>, ty: Ty },
    Call { callee: Box<Expr>, args: Vec<Expr> },
    MethodCall {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    Field { base: Box<Expr>, name: String },
    Index { base: Box<Expr>, index: Box<Expr> },
    /// `name!(…)` — args parsed as expressions when the token tree is
    /// expression-shaped, otherwise `raw_idents` holds the identifiers.
    MacroCall {
        path: Vec<String>,
        args: Vec<Expr>,
        raw_idents: Vec<String>,
    },
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        /// `..base` functional-update expression.
        base: Option<Box<Expr>>,
    },
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
    If {
        /// `let` in the condition becomes `IfLet`.
        cond: Box<Expr>,
        then: Block,
        /// `else` branch: a `BlockExpr` or another `If`/`IfLet`.
        els: Option<Box<Expr>>,
    },
    IfLet {
        pat: Pat,
        expr: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    Match { scrut: Box<Expr>, arms: Vec<Arm> },
    While { cond: Box<Expr>, body: Block },
    WhileLet {
        pat: Pat,
        expr: Box<Expr>,
        body: Block,
    },
    Loop { body: Block },
    For {
        pat: Pat,
        iter: Box<Expr>,
        body: Block,
    },
    BlockExpr(Block),
    /// `unsafe { … }`.
    UnsafeBlock(Block),
    Closure { params: Vec<Pat>, body: Box<Expr> },
    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    Continue,
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    /// `expr?`.
    Try(Box<Expr>),
    Paren(Box<Expr>),
}

#[derive(Clone, Debug)]
pub struct Arm {
    pub pat: Pat,
    pub guard: Option<Expr>,
    pub body: Expr,
}

impl Expr {
    /// Whether this expression is a literal (numeric/string/bool), looking
    /// through parens, references, casts, and unary minus. D7 exempts
    /// operations with a literal operand: the bound is compile-time
    /// visible, unlike the runtime-value arithmetic the rule audits.
    pub fn is_literal(&self) -> bool {
        match &self.kind {
            ExprKind::Num(_) | ExprKind::Str | ExprKind::Bool(_) => true,
            ExprKind::Paren(e) | ExprKind::Ref(e) | ExprKind::Cast { expr: e, .. } => e.is_literal(),
            ExprKind::Unary { op: '-', expr } => expr.is_literal(),
            // `u64::from(8)`-style literal lifts.
            ExprKind::Call { callee, args } => {
                args.len() == 1
                    && args[0].is_literal()
                    && matches!(&callee.kind, ExprKind::Path(p) if p.last().is_some_and(|s| s == "from"))
            }
            _ => false,
        }
    }

    /// The path segments if this is a plain path expression (through
    /// parens).
    pub fn as_path(&self) -> Option<&[String]> {
        match &self.kind {
            ExprKind::Path(p) => Some(p),
            ExprKind::Paren(e) => e.as_path(),
            _ => None,
        }
    }

    /// Renders a receiver expression as a dotted key for lock identity:
    /// `self.inner` → `"self.inner"`, `state.journal` → `"state.journal"`.
    /// Non-path shapes yield `None`.
    pub fn receiver_key(&self) -> Option<String> {
        match &self.kind {
            ExprKind::Path(p) => Some(p.join(".")),
            ExprKind::Field { base, name } => Some(format!("{}.{name}", base.receiver_key()?)),
            ExprKind::Paren(e) | ExprKind::Ref(e) => e.receiver_key(),
            ExprKind::Unary { op: '*', expr } => expr.receiver_key(),
            _ => None,
        }
    }
}

/// Walks every expression in a block, depth-first, calling `f` on each.
pub fn walk_block(block: &Block, f: &mut dyn FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = els {
                    walk_block(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, f),
            Stmt::Item(item) => {
                if let ItemKind::Fn(d) = &item.kind {
                    if let Some(b) = &d.body {
                        walk_block(b, f);
                    }
                }
            }
            Stmt::Empty => {}
        }
    }
}

/// Walks `expr` and all sub-expressions, depth-first (parents before
/// children), calling `f` on each.
pub fn walk_expr(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Unary { expr: e, .. }
        | ExprKind::Ref(e)
        | ExprKind::Cast { expr: e, .. }
        | ExprKind::Try(e)
        | ExprKind::Paren(e) => walk_expr(e, f),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field { base, .. } => walk_expr(base, f),
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::StructLit { fields, base, .. } => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
            if let Some(b) = base {
                walk_expr(b, f);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for e in es {
                walk_expr(e, f);
            }
        }
        ExprKind::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::IfLet {
            expr: e, then, els, ..
        } => {
            walk_expr(e, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrut, arms } => {
            walk_expr(scrut, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        ExprKind::WhileLet { expr: e, body, .. } => {
            walk_expr(e, f);
            walk_block(body, f);
        }
        ExprKind::Loop { body } => walk_block(body, f),
        ExprKind::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        ExprKind::BlockExpr(b) | ExprKind::UnsafeBlock(b) => walk_block(b, f),
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::Return(e) | ExprKind::Break(e) => {
            if let Some(e) = e {
                walk_expr(e, f);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                walk_expr(e, f);
            }
            if let Some(e) = hi {
                walk_expr(e, f);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Num(_)
        | ExprKind::Str
        | ExprKind::Bool(_)
        | ExprKind::Continue => {}
    }
}
