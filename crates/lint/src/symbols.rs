//! Workspace symbol table: every parsed file's items flattened into
//! indexed functions, struct layouts, and impl groupings, with the
//! test-gating and crate provenance the dataflow rules key on.

use crate::ast::{Attr, FnDef, Item, ItemKind, SourceFile, Ty};
use crate::parser::parse_file;
use crate::InputFile;

/// Index of a function in [`Workspace::fns`].
pub type FnId = usize;

/// One function definition with its provenance.
#[derive(Clone, Debug)]
pub struct FnInfo {
    pub id: FnId,
    pub crate_key: String,
    pub rel_path: String,
    pub name: String,
    /// `Some(type)` for inherent/trait-impl methods, `None` for free fns.
    pub self_ty: Option<String>,
    /// Whether the fn (or an enclosing module/impl) is `#[cfg(test)]`/
    /// `#[test]`-gated. Test code is out of scope for every dataflow rule.
    pub in_test: bool,
    pub def: FnDef,
}

impl FnInfo {
    /// `Type::name` or plain `name` — diagnostics and call paths.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A struct's declared fields (name → type head), for receiver-type
/// inference and taint-sink detection.
#[derive(Clone, Debug, Default)]
pub struct StructInfo {
    pub crate_key: String,
    /// `(field name, type)` in declaration order.
    pub fields: Vec<(String, Ty)>,
}

/// One file that parsed, with its AST retained.
#[derive(Clone, Debug)]
pub struct ParsedFile {
    pub rel_path: String,
    pub crate_key: String,
    pub ast: SourceFile,
}

/// The workspace-wide symbol table.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    pub files: Vec<ParsedFile>,
    pub fns: Vec<FnInfo>,
    /// Struct name → layout. Name collisions across crates keep the first
    /// definition (none exist in this workspace today; the rules only
    /// consult field *types*, where a collision would merely widen a
    /// heuristic).
    pub structs: std::collections::BTreeMap<String, StructInfo>,
    /// Enum names (so call resolution can tell `Variant::X` paths apart).
    pub enums: std::collections::BTreeSet<String>,
}

impl Workspace {
    /// Parses every input file and indexes its items. Parse failures are
    /// returned as `(rel_path, message)` and the file is skipped.
    pub fn build(files: &[InputFile]) -> (Workspace, Vec<(String, String)>) {
        let mut ws = Workspace::default();
        let mut errors = Vec::new();
        for f in files {
            match parse_file(&f.src) {
                Ok(ast) => {
                    ws.index_items(&ast.items, &f.crate_key, &f.rel_path, None, false);
                    ws.files.push(ParsedFile {
                        rel_path: f.rel_path.clone(),
                        crate_key: f.crate_key.clone(),
                        ast,
                    });
                }
                Err(e) => errors.push((f.rel_path.clone(), e.to_string())),
            }
        }
        (ws, errors)
    }

    /// All fns named `name` on type `self_ty` (`None` = free fns).
    pub fn methods_of(&self, self_ty: &str, name: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .filter(|f| f.self_ty.as_deref() == Some(self_ty) && f.name == name)
            .map(|f| f.id)
            .collect()
    }

    /// All fns named `name` anywhere (method or free).
    pub fn fns_named(&self, name: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .filter(|f| f.name == name)
            .map(|f| f.id)
            .collect()
    }

    /// Declared type of `ty_name.field`, if known.
    pub fn field_ty(&self, ty_name: &str, field: &str) -> Option<&Ty> {
        self.structs
            .get(ty_name)?
            .fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, t)| t)
    }

    fn index_items(
        &mut self,
        items: &[Item],
        crate_key: &str,
        rel_path: &str,
        self_ty: Option<&str>,
        in_test: bool,
    ) {
        for item in items {
            let gated = in_test || item.attrs.iter().any(Attr::is_test_gate);
            match &item.kind {
                ItemKind::Fn(def) => {
                    let id = self.fns.len();
                    self.fns.push(FnInfo {
                        id,
                        crate_key: crate_key.to_string(),
                        rel_path: rel_path.to_string(),
                        name: def.name.clone(),
                        self_ty: self_ty.map(str::to_string),
                        in_test: gated,
                        def: def.clone(),
                    });
                }
                ItemKind::Struct { name, fields } => {
                    self.structs.entry(name.clone()).or_insert_with(|| StructInfo {
                        crate_key: crate_key.to_string(),
                        fields: fields
                            .iter()
                            .map(|f| (f.name.clone(), f.ty.clone()))
                            .collect(),
                    });
                }
                ItemKind::Enum { name, .. } => {
                    self.enums.insert(name.clone());
                }
                ItemKind::Impl {
                    self_ty: ty, items, ..
                } => {
                    self.index_items(items, crate_key, rel_path, Some(ty), gated);
                }
                ItemKind::Trait { items, .. } => {
                    // Default trait methods: indexed without a self type —
                    // resolution falls back to name matching.
                    self.index_items(items, crate_key, rel_path, None, gated);
                }
                ItemKind::Mod {
                    items: Some(items), ..
                } => {
                    self.index_items(items, crate_key, rel_path, self_ty, gated);
                }
                ItemKind::ExternBlock { items } => {
                    self.index_items(items, crate_key, rel_path, None, gated);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(key: &str, src: &str) -> InputFile {
        InputFile {
            rel_path: format!("crates/{key}/src/lib.rs"),
            crate_key: key.to_string(),
            src: src.to_string(),
        }
    }

    #[test]
    fn indexes_fns_structs_and_test_gating() {
        let files = [input(
            "cache",
            "pub struct S { pub cycles: u64 }\n\
             impl S { pub fn get(&self) -> u64 { self.cycles } }\n\
             fn free() {}\n\
             #[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }",
        )];
        let (ws, errs) = Workspace::build(&files);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws.fns.len(), 4);
        let get = &ws.fns[ws.methods_of("S", "get")[0]];
        assert!(!get.in_test);
        assert_eq!(get.qual_name(), "S::get");
        let helper = &ws.fns[ws.fns_named("helper")[0]];
        assert!(helper.in_test);
        let t = &ws.fns[ws.fns_named("t")[0]];
        assert!(t.in_test);
        assert_eq!(
            ws.field_ty("S", "cycles").and_then(Ty::head),
            Some("u64")
        );
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let files = [
            input("core", "fn ok() {}"),
            input("mem", "fn broken( {"),
        ];
        let (ws, errs) = Workspace::build(&files);
        assert_eq!(ws.fns.len(), 1);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].0.contains("mem"));
    }
}
