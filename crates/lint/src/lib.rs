//! `mlpsim-lint` — workspace static analysis for simulator determinism
//! and cost-model soundness.
//!
//! Layered pipeline, all dependency-free:
//!
//! 1. [`lexer`] — tokens plus comments (pragmas live in comments).
//! 2. [`rules`] — token-pattern rules D1–D6 and the pragma machinery.
//! 3. [`parser`] / [`ast`] — a recursive-descent parser for the Rust
//!    subset this workspace uses; every workspace file must parse
//!    (enforced by `tests/self_parse.rs`).
//! 4. [`symbols`] / [`callgraph`] — workspace-wide type and function
//!    indexes over the ASTs.
//! 5. [`dataflow`] — the AST/interprocedural rules D7–D10.
//! 6. [`sarif`] — SARIF 2.1.0 emission for code-scanning upload.
//!
//! The binary (`main.rs`) is a thin driver over [`lint_workspace`].

pub mod ast;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod symbols;

use rules::{check_file, Diagnostic, FileScope};
use std::path::{Path, PathBuf};

/// One analyzed source file, as loaded from disk or planted by a test.
#[derive(Clone, Debug)]
pub struct InputFile {
    /// Path relative to the workspace root (display + crate gating).
    pub rel_path: String,
    /// Crate key gating rule scope (`cache`, `core`, …, `mlpsim`).
    pub crate_key: String,
    pub src: String,
}

/// A finding with its file attached — the unit of report output.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rel_path: String,
    pub diag: Diagnostic,
}

/// Full workspace lint results.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    /// Files that failed to parse: `(rel_path, error)`. Parse failures
    /// fail the run — the dataflow rules are blind where the parser is.
    pub parse_errors: Vec<(String, String)>,
    pub files_checked: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.parse_errors.is_empty()
    }
}

/// Lints a set of in-memory files: token rules D1–D6 and D11 per file,
/// then the AST/dataflow rules D7–D10 across the whole set. Findings are
/// sorted by (path, line, rule) so output is deterministic.
pub fn lint_files(files: &[InputFile]) -> LintReport {
    let mut report = LintReport {
        files_checked: files.len(),
        ..LintReport::default()
    };
    for f in files {
        for d in check_file(
            FileScope {
                crate_key: &f.crate_key,
                rel_path: &f.rel_path,
            },
            &f.src,
        ) {
            report.findings.push(Finding {
                rel_path: f.rel_path.clone(),
                diag: d,
            });
        }
    }
    dataflow::check_workspace(files, &mut report);
    report.findings.sort_by(|a, b| {
        (&a.rel_path, a.diag.line, a.diag.rule.name())
            .cmp(&(&b.rel_path, b.diag.line, b.diag.rule.name()))
    });
    report
        .findings
        .dedup_by(|a, b| a.rel_path == b.rel_path && a.diag.line == b.diag.line && a.diag.rule == b.diag.rule);
    report
}

/// Loads every lintable `.rs` file under `root` (the workspace root) and
/// runs [`lint_files`]. IO errors are reported as parse errors.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut files = Vec::new();
    let mut io_errors = Vec::new();
    for path in collect_workspace_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(&path) {
            Ok(src) => files.push(InputFile {
                crate_key: crate_key(root, &path),
                rel_path: rel,
                src,
            }),
            Err(e) => io_errors.push((rel, format!("cannot read: {e}"))),
        }
    }
    let mut report = lint_files(&files);
    report.parse_errors.extend(io_errors);
    report.parse_errors.sort();
    report
}

/// The scanned file set: `src/` of the root package and every
/// `crates/*/src`, skipping `tests/`, `benches/`, `vendor/`, `target/`.
/// Sorted so every consumer sees a deterministic order.
pub fn collect_workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for c in crates {
            collect_rs_files(&c.join("src"), &mut files);
        }
    }
    files.sort();
    files
}

/// Directory key gating rule scope: `cache`, `core`, … for
/// `crates/<key>/…`, `mlpsim` for the root package's `src/`.
pub fn crate_key(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("crates") => comps
            .next()
            .map_or_else(|| "mlpsim".to_string(), |c| c.into_owned()),
        _ => "mlpsim".to_string(),
    }
}

/// Recursively collects `.rs` files, skipping test/bench/vendor trees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    const SKIP_DIRS: &[&str] = &["tests", "benches", "vendor", "target", ".git"];
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // a crate without src/ (or unreadable) is simply not linted
    };
    for e in entries.filter_map(Result::ok) {
        let p = e.path();
        if p.is_dir() {
            let name = e.file_name();
            if !SKIP_DIRS.contains(&name.to_string_lossy().as_ref()) {
                collect_rs_files(&p, out);
            }
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}
