//! The workspace rules: D1–D5 plus pragma validation.
//!
//! Each rule is a pattern over the lexed token stream of one file. The
//! rules are deliberately conservative approximations — no type inference,
//! no macro expansion — tuned so that on *this* workspace they have no
//! false positives, and written so that a false negative requires actively
//! hiding the construct (which code review would catch). Escapes go
//! through an inline pragma that must carry a justification:
//!
//! ```text
//! // lint: allow(D3, "f64 mantissa covers every reachable cycle count")
//! ```
//!
//! The pragma suppresses the named rule on its own line and the line
//! directly below it.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// Identifier of one lint rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleId {
    /// No iteration over `HashMap`/`HashSet` in simulation crates:
    /// iteration order is randomized per process, so any order-dependent
    /// use (victim selection, output, accumulation over floats) makes
    /// sweep output nondeterministic.
    D1,
    /// No `SystemTime` / `Instant` / `thread_rng` in simulation logic:
    /// wall-clock and ambient randomness break replayability.
    D2,
    /// No bare `as` numeric casts in `mlpsim-core` cost/quantization code:
    /// silent truncation/rounding in the cost model must be spelled as a
    /// checked or documented conversion.
    D3,
    /// No `unwrap()` / `panic!` outside test code: library and CLI code
    /// must surface errors (`expect` with a proof-of-impossibility string
    /// is the sanctioned form for genuine invariants).
    D4,
    /// Every `probe.emit(..)` call must sit under an `if` whose condition
    /// names `ENABLED` (the `P::ENABLED` const-bool gate): an unguarded
    /// emission builds its event payload even in `NoProbe` builds, which
    /// breaks the zero-cost-when-off telemetry contract.
    D5,
    /// A file that accepts sockets (`.accept(`/`.incoming(`) outside tests
    /// must also arm a read timeout (`set_read_timeout`, or the workspace
    /// helper `arm_read_timeout`) outside tests: a blocking read on an
    /// accepted connection with no timeout lets one stalled client hang a
    /// server thread forever.
    D6,
    /// Overflow hazard: bare `+`/`-`/`*`/`<<` on cycle/address/timestamp
    /// values in the timing crates must be `wrapping_`/`saturating_`/
    /// `checked_` (or carry a `lint: bounded` pragma with a justification).
    /// AST rule — see [`crate::dataflow`].
    D7,
    /// Panic reachability: no function transitively reachable from a
    /// `serve` request handler may panic (`panic!`/`unwrap`/`expect`/
    /// slice-index). Call-graph rule — see [`crate::dataflow`].
    D8,
    /// Clock taint: values derived from `prof::now_ns()` must not flow
    /// into `SimResult` or simulation event payloads (anything the
    /// determinism CI diffs). Taint rule — see [`crate::dataflow`].
    D9,
    /// Concurrency-order audit: atomics on one telemetry cell must pair
    /// store/load `Ordering`s consistently, and `serve` must not acquire
    /// the same two locks in opposite nesting orders. See
    /// [`crate::dataflow`].
    D10,
    /// Structured logging: inside `crates/serve` request-path code, no
    /// bare `eprintln!` — every stderr line must go through the
    /// `serve::log` helpers so it is one parseable JSON document carrying
    /// the request's trace id. `log.rs` itself (the single sanctioned
    /// write site), the CLI binaries under `bin/`, the client library,
    /// and test code are exempt.
    D11,
    /// A `lint: allow` / `lint: bounded` pragma that is malformed
    /// (unknown rule or missing justification string).
    Pragma,
}

impl RuleId {
    /// Stable name used in diagnostics and pragmas.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::D8 => "D8",
            RuleId::D9 => "D9",
            RuleId::D10 => "D10",
            RuleId::D11 => "D11",
            RuleId::Pragma => "pragma",
        }
    }

    fn from_name(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            "D5" => Some(RuleId::D5),
            "D6" => Some(RuleId::D6),
            "D7" => Some(RuleId::D7),
            "D8" => Some(RuleId::D8),
            "D9" => Some(RuleId::D9),
            "D10" => Some(RuleId::D10),
            "D11" => Some(RuleId::D11),
            _ => None,
        }
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// 1-based line.
    pub line: u32,
    pub rule: RuleId,
    pub msg: String,
}

/// Which crate (by directory key: `cache`, `core`, …) a file belongs to,
/// gating rule applicability.
#[derive(Clone, Copy, Debug)]
pub struct FileScope<'a> {
    /// Directory name under `crates/` (the root package is `mlpsim`).
    pub crate_key: &'a str,
    /// Workspace-relative path — D11 uses it to exempt the serve crate's
    /// log helper, client library, and `bin/` CLIs from the
    /// structured-logging requirement.
    pub rel_path: &'a str,
}

/// Crates whose state feeds victim selection or sweep output (D1).
const D1_CRATES: &[&str] = &["cache", "core", "mem", "exec"];
/// Crates that constitute simulation logic (D2). `telemetry` is included
/// so wall-clock reads in core crates go only through the audited
/// `telemetry::prof` clock shim, whose own `Instant` uses carry allow
/// pragmas. `model` is included because the analytical estimators must be
/// as deterministic as the simulator they stand in for — a planner that
/// prunes different cells on different hosts is a reproducibility bug.
const D2_CRATES: &[&str] = &[
    "cache",
    "core",
    "mem",
    "cpu",
    "exec",
    "trace",
    "telemetry",
    "model",
];
/// Crates holding the paper's cost/quantization model (D3).
const D3_CRATES: &[&str] = &["core"];

/// Map/set iteration methods whose order is nondeterministic.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Primitive numeric targets of `as` casts, plus the workspace's own
/// numeric alias for the 3-bit quantized cost.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "CostQ",
];

/// Wall-clock / ambient-randomness identifiers banned by D2.
const D2_IDENTS: &[&str] = &["SystemTime", "Instant", "thread_rng"];

/// Runs every applicable rule on one file and returns its diagnostics,
/// pragma-suppressed and sorted by line.
pub fn check_file(scope: FileScope<'_>, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let in_test = test_mask(&lexed.tokens);
    let (allows, mut diags) = parse_pragmas(&lexed.comments);

    if D1_CRATES.contains(&scope.crate_key) {
        rule_d1(&lexed.tokens, &in_test, &mut diags);
    }
    if D2_CRATES.contains(&scope.crate_key) {
        rule_d2(&lexed.tokens, &in_test, &mut diags);
    }
    if D3_CRATES.contains(&scope.crate_key) {
        rule_d3(&lexed.tokens, &in_test, &mut diags);
    }
    rule_d4(&lexed.tokens, &in_test, &mut diags);
    let under_enabled = enabled_mask(&lexed.tokens);
    rule_d5(&lexed.tokens, &in_test, &under_enabled, &mut diags);
    rule_d6(&lexed.tokens, &in_test, &mut diags);
    if scope.crate_key == "serve" && !d11_exempt(scope.rel_path) {
        rule_d11(&lexed.tokens, &in_test, &mut diags);
    }

    // Apply pragma suppression: an allow on line L covers L and L+1.
    diags.retain(|d| {
        !allows
            .iter()
            .any(|(line, rule)| *rule == d.rule && (d.line == *line || d.line == *line + 1))
    });
    diags.sort_by_key(|d| d.line);
    diags.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    diags
}

/// For each token, whether it sits inside a `#[cfg(test)]`-gated block.
/// Detection: the exact attribute token sequence, then the next `{` opens
/// the region (a `;` first — e.g. a gated `use` — cancels it, gating only
/// that statement, which the mask approximates as not-test; no such forms
/// exist in this workspace).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    let mut pending = false;
    // Depth at which each active test region opened.
    let mut regions: Vec<i32> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_cfg_test_at(tokens, i) {
            pending = true;
        }
        match t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if pending {
                    regions.push(depth);
                    pending = false;
                }
            }
            TokenKind::Punct('}') => {
                if regions.last().is_some_and(|d| *d == depth) {
                    regions.pop();
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if pending && !attr_open(tokens, i) => {
                pending = false;
            }
            _ => {}
        }
        mask[i] = !regions.is_empty();
    }
    mask
}

/// Does the token at `i` start the sequence `# [ cfg ( test ) ]`?
fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    let expect: [&dyn Fn(&TokenKind) -> bool; 7] = [
        &|k| *k == TokenKind::Punct('#'),
        &|k| *k == TokenKind::Punct('['),
        &|k| matches!(k, TokenKind::Ident(s) if s == "cfg"),
        &|k| *k == TokenKind::Punct('('),
        &|k| matches!(k, TokenKind::Ident(s) if s == "test"),
        &|k| *k == TokenKind::Punct(')'),
        &|k| *k == TokenKind::Punct(']'),
    ];
    tokens.len() >= i + expect.len()
        && expect
            .iter()
            .zip(&tokens[i..])
            .all(|(want, tok)| want(&tok.kind))
}

/// For each token, whether it sits inside a block opened by an `if`
/// whose condition names `ENABLED` (the `P::ENABLED` telemetry gate).
/// Same brace-region machinery as [`test_mask`]: the `if` header is
/// scanned up to its `{` (a `;` cancels — no such header exists here);
/// compound conditions (`P::ENABLED && new_samples > 0`) count, because
/// the gate still short-circuits the emission.
fn enabled_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    let mut pending = false;
    let mut regions: Vec<i32> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if ident(t) == Some("if") {
            for tok in &tokens[i + 1..tokens.len().min(i + 30)] {
                match &tok.kind {
                    TokenKind::Punct('{' | ';') => break,
                    TokenKind::Ident(s) if s == "ENABLED" => {
                        pending = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        match t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if pending {
                    regions.push(depth);
                    pending = false;
                }
            }
            TokenKind::Punct('}') => {
                if regions.last().is_some_and(|d| *d == depth) {
                    regions.pop();
                }
                depth -= 1;
            }
            TokenKind::Punct(';') => pending = false,
            _ => {}
        }
        mask[i] = !regions.is_empty();
    }
    mask
}

/// Whether token `i` is still inside an attribute's `[...]` (so a `;`
/// there must not cancel a pending test region). Cheap scan backwards for
/// an unclosed `[`.
fn attr_open(tokens: &[Token], i: usize) -> bool {
    let mut depth = 0i32;
    for t in tokens[..i].iter().rev().take(64) {
        match t.kind {
            TokenKind::Punct(']') => depth += 1,
            TokenKind::Punct('[') => {
                if depth == 0 {
                    return true;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    false
}

/// Parses allow-pragmas (format in the module docs) out of comments.
/// Returns the allow list and diagnostics for malformed pragmas.
///
/// Two forms, both after the `lint:` comment marker (spelled out here
/// without the marker so the linter does not read its own docs as
/// pragmas):
/// - `allow(D<n>, "justification")` — suppresses rule D\<n\> on this
///   line and the next.
/// - `bounded("justification")` — D7's dedicated escape for arithmetic
///   whose bound is proven in the justification; recorded as an allow
///   for [`RuleId::D7`].
pub(crate) fn parse_pragmas(comments: &[Comment]) -> (Vec<(u32, RuleId)>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        if let Some(at) = c.text.find("lint: bounded(") {
            let rest = &c.text[at + "lint: bounded(".len()..];
            let ok = rest
                .split_once('"')
                .and_then(|(_, s)| s.split_once('"'))
                .map(|(just, _)| !just.trim().is_empty())
                .unwrap_or(false);
            if ok {
                allows.push((c.line, RuleId::D7));
            } else {
                diags.push(Diagnostic {
                    line: c.line,
                    rule: RuleId::Pragma,
                    msg: "malformed lint pragma: empty or missing justification string (want \
                          `lint: bounded(\"reason\")`)"
                        .to_string(),
                });
            }
            continue;
        }
        let Some(at) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint: allow(".len()..];
        let bad = |msg: &str| Diagnostic {
            line: c.line,
            rule: RuleId::Pragma,
            msg: format!("malformed lint pragma: {msg} (want `lint: allow(D<n>, \"reason\")`)"),
        };
        let Some((rule_name, after)) = rest.split_once(',') else {
            diags.push(bad("missing `, \"justification\"`"));
            continue;
        };
        let Some(rule) = RuleId::from_name(rule_name.trim()) else {
            diags.push(bad(&format!("unknown rule {:?}", rule_name.trim())));
            continue;
        };
        // Justification: a non-empty double-quoted string before `)`.
        let ok = after
            .split_once('"')
            .and_then(|(_, s)| s.split_once('"'))
            .map(|(just, _)| !just.trim().is_empty())
            .unwrap_or(false);
        if !ok {
            diags.push(bad("empty or missing justification string"));
            continue;
        }
        allows.push((c.line, rule));
    }
    (allows, diags)
}

fn ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokenKind::Ident(s) => Some(s),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct(c)
}

/// D1 — collect names bound to `HashMap`/`HashSet` (field and `let`
/// declarations), then flag order-sensitive iteration over them: the
/// unordered-iteration methods and `for … in` headers naming them.
fn rule_d1(tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let mut names: Vec<String> = Vec::new();

    // `name: … HashMap<…>` (struct fields, typed lets, fn params).
    for i in 0..tokens.len() {
        let Some(name) = ident(&tokens[i]) else {
            continue;
        };
        if name == "let" {
            // `let [mut] name … = HashMap::new()` — scan the statement.
            let mut j = i + 1;
            if j < tokens.len() && ident(&tokens[j]) == Some("mut") {
                j += 1;
            }
            let Some(bound) = ident(&tokens[j.min(tokens.len() - 1)]) else {
                continue;
            };
            let mut k = j + 1;
            let mut hit = false;
            while k < tokens.len() && k < j + 60 && !is_punct(&tokens[k], ';') {
                if matches!(ident(&tokens[k]), Some("HashMap" | "HashSet")) {
                    hit = true;
                    break;
                }
                k += 1;
            }
            if hit {
                names.push(bound.to_string());
            }
            continue;
        }
        // `name :` but not `name ::` and not `:: name :`.
        if i + 2 < tokens.len()
            && is_punct(&tokens[i + 1], ':')
            && !is_punct(&tokens[i + 2], ':')
            && (i == 0 || !is_punct(&tokens[i - 1], ':'))
        {
            let mut angle = 0i32;
            for tok in &tokens[i + 2..tokens.len().min(i + 40)] {
                match &tok.kind {
                    TokenKind::Ident(s) if s == "HashMap" || s == "HashSet" => {
                        names.push(name.to_string());
                        break;
                    }
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => angle -= 1,
                    TokenKind::Punct(',') if angle <= 0 => break,
                    TokenKind::Punct(';' | '=' | ')' | '{' | '}') => break,
                    _ => {}
                }
            }
        }
    }
    if names.is_empty() {
        return;
    }

    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let Some(name) = ident(&tokens[i]) else {
            continue;
        };
        // `name.iter()` and friends.
        if names.iter().any(|n| n == name) && i + 2 < tokens.len() && is_punct(&tokens[i + 1], '.')
        {
            if let Some(m) = ident(&tokens[i + 2]) {
                if ITER_METHODS.contains(&m) {
                    diags.push(Diagnostic {
                        line: tokens[i + 2].line,
                        rule: RuleId::D1,
                        msg: format!(
                            "iteration over unordered map/set `{name}.{m}()` — order is \
                             nondeterministic; use a Vec/BTreeMap or sort before iterating"
                        ),
                    });
                }
            }
        }
        // `for … in <header naming a map> {`. The `in` must actually be
        // found before a `{`/`;`: `impl Trait for Type` also contains a
        // `for` token, and without this check the scan window can drift
        // into unrelated statements and flag a declaration.
        if name == "for" {
            let mut j = i + 1;
            let mut found_in = false;
            while j < tokens.len().min(i + 30) {
                if ident(&tokens[j]) == Some("in") {
                    found_in = true;
                    break;
                }
                if is_punct(&tokens[j], '{') || is_punct(&tokens[j], ';') {
                    break;
                }
                j += 1;
            }
            if !found_in {
                continue;
            }
            for tok in &tokens[j..tokens.len().min(j + 30)] {
                if is_punct(tok, '{') {
                    break;
                }
                if let Some(h) = ident(tok) {
                    if names.iter().any(|n| n == h) {
                        diags.push(Diagnostic {
                            line: tok.line,
                            rule: RuleId::D1,
                            msg: format!(
                                "`for` loop over unordered map/set `{h}` — order is \
                                 nondeterministic; collect and sort first"
                            ),
                        });
                        break;
                    }
                }
            }
        }
    }
}

/// D2 — any appearance of a wall-clock or ambient-randomness identifier
/// (importing one into simulation logic is already a bug).
fn rule_d2(tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if let Some(s) = ident(t) {
            if D2_IDENTS.contains(&s) {
                diags.push(Diagnostic {
                    line: t.line,
                    rule: RuleId::D2,
                    msg: format!(
                        "`{s}` in simulation logic — wall-clock time and ambient randomness \
                         break replay determinism; thread cycle counts / seeded RNGs instead"
                    ),
                });
            }
        }
    }
}

/// D3 — `as <numeric-type>` outside tests.
fn rule_d3(tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len().saturating_sub(1) {
        if in_test[i] {
            continue;
        }
        if ident(&tokens[i]) == Some("as") {
            if let Some(ty) = ident(&tokens[i + 1]) {
                if NUMERIC_TYPES.contains(&ty) {
                    diags.push(Diagnostic {
                        line: tokens[i].line,
                        rule: RuleId::D3,
                        msg: format!(
                            "bare `as {ty}` cast in cost/quantization code — use `From`/\
                             `TryFrom` or a documented helper from `mlpsim_core::convert`"
                        ),
                    });
                }
            }
        }
    }
}

/// D4 — `.unwrap()` calls and `panic!` invocations outside tests.
fn rule_d4(tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        match ident(&tokens[i]) {
            Some("unwrap")
                if i > 0
                    && is_punct(&tokens[i - 1], '.')
                    && i + 2 < tokens.len()
                    && is_punct(&tokens[i + 1], '(')
                    && is_punct(&tokens[i + 2], ')') =>
            {
                diags.push(Diagnostic {
                    line: tokens[i].line,
                    rule: RuleId::D4,
                    msg: "`.unwrap()` outside tests — return an error, or use `expect(..)` \
                          with a proof the failure is impossible"
                        .to_string(),
                });
            }
            Some("panic") if i + 1 < tokens.len() && is_punct(&tokens[i + 1], '!') => {
                diags.push(Diagnostic {
                    line: tokens[i].line,
                    rule: RuleId::D4,
                    msg: "`panic!` outside tests — return an error instead (asserts with \
                          documented invariants use `assert!`/`debug_assert!`)"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

/// D5 — `probe.emit(..)` outside an `if …ENABLED…` region and outside
/// tests. The pattern is the token sequence `probe . emit (`, which also
/// matches `self.probe.emit(..)`; runtime-gated `sink.emit` handles are a
/// different mechanism and exempt.
fn rule_d5(
    tokens: &[Token],
    in_test: &[bool],
    under_enabled: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    for i in 2..tokens.len().saturating_sub(1) {
        if in_test[i] || under_enabled[i] {
            continue;
        }
        if ident(&tokens[i]) == Some("emit")
            && is_punct(&tokens[i - 1], '.')
            && ident(&tokens[i - 2]) == Some("probe")
            && is_punct(&tokens[i + 1], '(')
        {
            diags.push(Diagnostic {
                line: tokens[i].line,
                rule: RuleId::D5,
                msg: "`probe.emit(..)` outside an `if P::ENABLED` guard — the event payload \
                      is built even in NoProbe builds; wrap the emission in the const gate"
                    .to_string(),
            });
        }
    }
}

/// D6 — socket accepts without a read timeout anywhere in the file. The
/// pattern `.accept(` / `.incoming(` marks the accept path; the file must
/// then also name `set_read_timeout` (or the workspace wrapper
/// `arm_read_timeout`) outside tests. File granularity is the right
/// approximation here: the timeout call sits on the accepted stream a few
/// lines from the accept, or in a helper the same file defines/calls.
fn rule_d6(tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let has_timeout = tokens.iter().enumerate().any(|(i, t)| {
        !in_test[i] && matches!(ident(t), Some("set_read_timeout" | "arm_read_timeout"))
    });
    if has_timeout {
        return;
    }
    for i in 1..tokens.len().saturating_sub(1) {
        if in_test[i] {
            continue;
        }
        let Some(m) = ident(&tokens[i]) else {
            continue;
        };
        if (m == "accept" || m == "incoming")
            && is_punct(&tokens[i - 1], '.')
            && is_punct(&tokens[i + 1], '(')
        {
            diags.push(Diagnostic {
                line: tokens[i].line,
                rule: RuleId::D6,
                msg: format!(
                    "`.{m}(..)` with no read timeout in this file — a blocking read on an \
                     accepted socket can hang on a stalled client; call `set_read_timeout` \
                     (or `http::arm_read_timeout`) on every accepted stream"
                ),
            });
        }
    }
}

/// Files inside `crates/serve` that D11 does not cover: the log helper
/// is the sanctioned `eprintln!` site, the `bin/` CLIs and the client
/// library write user-facing output, not server request-path logs.
fn d11_exempt(rel_path: &str) -> bool {
    rel_path.contains("/bin/") || rel_path.ends_with("/client.rs") || rel_path.ends_with("/log.rs")
}

/// D11 — bare `eprintln!` in serve request-path code outside tests:
/// stderr lines from the server must be the structured JSON documents
/// `serve::log` emits, so they parse and carry the request's trace id.
fn rule_d11(tokens: &[Token], in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len().saturating_sub(1) {
        if in_test[i] {
            continue;
        }
        if ident(&tokens[i]) == Some("eprintln") && is_punct(&tokens[i + 1], '!') {
            diags.push(Diagnostic {
                line: tokens[i].line,
                rule: RuleId::D11,
                msg: "bare `eprintln!` in the serve request path — emit through \
                      `log::access` / `log::server_event` so the line is structured \
                      JSON carrying the trace id"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_key: &str, src: &str) -> Vec<Diagnostic> {
        check_path(crate_key, &format!("crates/{crate_key}/src/lib.rs"), src)
    }

    fn check_path(crate_key: &str, rel_path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(
            FileScope {
                crate_key,
                rel_path,
            },
            src,
        )
    }

    fn rules(diags: &[Diagnostic]) -> Vec<RuleId> {
        diags.iter().map(|d| d.rule).collect()
    }

    // ---- planted violations: each rule must catch its construct ----

    #[test]
    fn d1_catches_field_map_iteration() {
        let src = "
            struct S { pending: HashMap<u64, u32> }
            impl S {
                fn f(&self) { for (k, v) in self.pending.iter() { use_it(k, v); } }
            }
        ";
        let d = check("core", src);
        assert!(rules(&d).contains(&RuleId::D1), "{d:?}");
    }

    #[test]
    fn d1_catches_for_over_let_binding() {
        let src = "
            fn f() {
                let mut seen = HashSet::new();
                for x in &seen { use_it(x); }
            }
        ";
        assert!(rules(&check("cache", src)).contains(&RuleId::D1));
    }

    #[test]
    fn d1_catches_drain_and_retain() {
        let src = "
            struct S { credits: std::collections::HashMap<u64, u8> }
            impl S {
                fn a(&mut self) { self.credits.retain(|_, c| *c > 0); }
                fn b(&mut self) { let _ = self.credits.drain(); }
            }
        ";
        let d = check("mem", src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn d1_ignores_point_lookups_and_other_crates() {
        let src = "
            struct S { pending: HashMap<u64, u32> }
            impl S {
                fn f(&mut self, k: u64) {
                    self.pending.entry(k).or_default();
                    self.pending.remove(&k);
                    let _ = self.pending.get(&k);
                }
            }
        ";
        assert!(check("core", src).is_empty());
        // Same iteration, but in a crate outside D1's scope.
        let iter = "
            struct S { pending: HashMap<u64, u32> }
            impl S { fn f(&self) { for x in self.pending.keys() { use_it(x); } } }
        ";
        assert!(check("analysis", iter).is_empty());
    }

    #[test]
    fn d1_ignores_impl_trait_for() {
        // `impl Default for …` contains a `for` token; the for-loop scan
        // must not drift past it into a field declaration naming a map.
        let src = "
            struct E { credits: HashMap<u64, u8> }
            impl Default for E {
                fn default() -> E {
                    E { credits: HashMap::new() }
                }
            }
        ";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn d1_ignores_vec_iteration() {
        let src = "
            struct S { ways: Vec<u8>, pending: HashMap<u64, u32> }
            impl S { fn f(&self) { for w in self.ways.iter() { use_it(w); } } }
        ";
        assert!(check("cache", src).is_empty());
    }

    #[test]
    fn d2_catches_wall_clock_and_rng() {
        for planted in [
            "use std::time::Instant; fn f() { let t = Instant::now(); }",
            "fn f() { let t = std::time::SystemTime::now(); }",
            "fn f() { let r = rand::thread_rng(); }",
        ] {
            let d = check("cpu", planted);
            assert!(rules(&d).contains(&RuleId::D2), "{planted}");
        }
        // Experiments may time things.
        assert!(check("experiments", "fn f() { let t = Instant::now(); }").is_empty());
    }

    #[test]
    fn d2_covers_the_model_crate() {
        // The analytical estimators stand in for the simulator; a wall
        // clock or ambient RNG there makes planner decisions irreproducible.
        for planted in [
            "use std::time::Instant; fn f() { let t = Instant::now(); }",
            "fn f() { let r = rand::thread_rng(); }",
        ] {
            assert!(
                rules(&check("model", planted)).contains(&RuleId::D2),
                "{planted}"
            );
        }
    }

    #[test]
    fn d2_covers_telemetry_except_through_the_pragma() {
        // The telemetry crate is inside D2's scope: a bare wall-clock
        // read there is flagged like in any simulation crate...
        let planted = "use std::time::Instant; fn f() { let t = Instant::now(); }";
        assert!(rules(&check("telemetry", planted)).contains(&RuleId::D2));
        // ...and the prof clock shim's audited sites pass only because
        // they carry the allow pragma.
        let shimmed = "
            // lint: allow(D2, \"prof clock shim: the audited wall-clock import\")
            use std::time::Instant;
            fn now_ns() -> u64 {
                // lint: allow(D2, \"prof clock shim: the one sanctioned Instant::now\")
                let t = Instant::now();
                0
            }
        ";
        assert!(check("telemetry", shimmed).is_empty());
    }

    #[test]
    fn d3_catches_bare_numeric_casts_in_core_only() {
        let src = "fn f(x: u64) -> f64 { x as f64 }";
        assert!(rules(&check("core", src)).contains(&RuleId::D3));
        assert!(check("cache", src).is_empty());
        // Non-numeric casts are fine.
        assert!(check("core", "fn f(x: &T) { let _ = x as &dyn Trait; }").is_empty());
    }

    #[test]
    fn d4_catches_unwrap_and_panic() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules(&check("trace", src)).contains(&RuleId::D4));
        let src = "fn f() { panic!(\"boom\"); }";
        assert!(rules(&check("telemetry", src)).contains(&RuleId::D4));
        // expect/unwrap_or are sanctioned.
        let ok = "fn f(x: Option<u8>) -> u8 { x.expect(\"proof\").min(x.unwrap_or(1)) }";
        assert!(check("trace", ok).is_empty());
    }

    #[test]
    fn d5_catches_unguarded_probe_emit() {
        let src = "
            impl<P: Probe> System<P> {
                fn f(&mut self) { self.probe.emit(Event::Stall { cycle: 1, len: 2 }); }
            }
        ";
        let d = check("cpu", src);
        assert_eq!(rules(&d), vec![RuleId::D5], "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn d5_accepts_guarded_emissions() {
        let src = "
            impl<P: Probe> System<P> {
                fn plain(&mut self) {
                    if P::ENABLED {
                        self.probe.emit(Event::Stall { cycle: 1, len: 2 });
                    }
                }
                fn compound(&mut self, fresh: usize) {
                    if P::ENABLED && fresh > 0 {
                        for _ in 0..fresh { self.probe.emit(Event::Stall { cycle: 1, len: 2 }); }
                    }
                }
            }
        ";
        assert!(check("cpu", src).is_empty());
    }

    #[test]
    fn d5_flags_emission_after_the_guard_closes() {
        let src = "
            fn f(&mut self) {
                if P::ENABLED { self.probe.emit(a()); }
                self.probe.emit(b());
            }
        ";
        let d = check("cpu", src);
        assert_eq!(rules(&d), vec![RuleId::D5], "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn d5_ignores_sink_handles_and_tests() {
        // SinkHandle::emit is runtime-gated — not this rule's target.
        let src = "fn f(&mut self) { self.sink.emit(ev()); }";
        assert!(check("core", src).is_empty());
        let test_src = "
            #[cfg(test)]
            mod tests {
                fn t() { probe.emit(ev()); }
            }
        ";
        assert!(check("cpu", test_src).is_empty());
    }

    #[test]
    fn d5_pragma_escape_works() {
        let src = "
            fn f(&mut self) {
                // lint: allow(D5, \"bench harness measures the unguarded path\")
                self.probe.emit(ev());
            }
        ";
        assert!(check("cpu", src).is_empty());
    }

    #[test]
    fn d6_catches_accept_without_read_timeout() {
        let src = "
            fn serve(listener: &TcpListener) {
                loop {
                    let (stream, _) = match listener.accept() {
                        Ok(pair) => pair,
                        Err(_) => continue,
                    };
                    handle(stream);
                }
            }
        ";
        let d = check("serve", src);
        assert_eq!(rules(&d), vec![RuleId::D6], "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn d6_catches_incoming_iterator_too() {
        let src = "
            fn serve(listener: TcpListener) {
                for stream in listener.incoming() { handle(stream); }
            }
        ";
        assert!(rules(&check("serve", src)).contains(&RuleId::D6));
    }

    #[test]
    fn d6_accepts_files_that_arm_a_timeout() {
        let direct = "
            fn serve(listener: &TcpListener) {
                let (stream, _) = listener.accept().expect(\"accept\");
                stream.set_read_timeout(Some(TIMEOUT)).expect(\"sockopt\");
                handle(stream);
            }
        ";
        assert!(check("serve", direct).is_empty());
        let via_helper = "
            fn serve(listener: &TcpListener) {
                let (stream, _) = listener.accept().expect(\"accept\");
                if http::arm_read_timeout(&stream, 5_000).is_err() { return; }
                handle(stream);
            }
        ";
        assert!(check("serve", via_helper).is_empty());
    }

    #[test]
    fn d6_ignores_test_code_and_non_socket_accepts() {
        let test_src = "
            #[cfg(test)]
            mod tests {
                fn t() { let (s, _) = listener.accept().unwrap(); use_it(s); }
            }
        ";
        assert!(check("serve", test_src).is_empty());
        // A method *named* accept that is not called on a receiver is not
        // the accept loop (e.g. visitor pattern `accept(&mut v)`).
        assert!(check("core", "fn f(v: &mut V) { accept(v); }").is_empty());
    }

    #[test]
    fn d6_pragma_escape_works() {
        let src = "
            fn serve(listener: &TcpListener) {
                // lint: allow(D6, \"stdin-driven oneshot; peer is the test harness\")
                let (stream, _) = listener.accept().expect(\"accept\");
                handle(stream);
            }
        ";
        assert!(check("serve", src).is_empty());
    }

    #[test]
    fn d11_catches_bare_eprintln_in_serve() {
        let src = "
            fn handle(id: u64) {
                eprintln!(\"job {id} failed\");
            }
        ";
        let d = check_path("serve", "crates/serve/src/server.rs", src);
        assert_eq!(rules(&d), vec![RuleId::D11], "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn d11_accepts_structured_logging() {
        let src = "
            fn handle(id: u64) {
                log::server_event(None, \"job_failed\", &format!(\"job {id}\"));
            }
        ";
        assert!(check_path("serve", "crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn d11_exempts_log_helper_bins_client_and_tests() {
        let src = "fn f() { eprintln!(\"usage: ...\"); }";
        assert!(check_path("serve", "crates/serve/src/log.rs", src).is_empty());
        assert!(check_path("serve", "crates/serve/src/bin/client.rs", src).is_empty());
        assert!(check_path("serve", "crates/serve/src/client.rs", src).is_empty());
        // Other crates' stderr writes are not this rule's business.
        assert!(check_path("experiments", "crates/experiments/src/cli.rs", src).is_empty());
        // Test code inside serve may print freely.
        let test_src = "
            #[cfg(test)]
            mod tests {
                fn t() { eprintln!(\"debugging a test\"); }
            }
        ";
        assert!(check_path("serve", "crates/serve/src/state.rs", test_src).is_empty());
    }

    #[test]
    fn d11_pragma_escape_works() {
        let src = "
            fn f() {
                // lint: allow(D11, \"panic hook runs after the logger is torn down\")
                eprintln!(\"last gasp\");
            }
        ";
        assert!(check_path("serve", "crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
            fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let x: Option<u8> = None;
                    x.unwrap();
                    panic!(\"fine in tests\");
                    let t = Instant::now();
                    let m: HashMap<u8, u8> = HashMap::new();
                    for y in m.keys() { let _ = y as u64; }
                }
            }
        ";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_checked_again() {
        let src = "
            #[cfg(test)]
            mod tests { fn t() { x.unwrap(); } }
            fn lib(x: Option<u8>) -> u8 { x.unwrap() }
        ";
        let d = check("mem", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::D4);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn doc_comments_and_strings_never_trip_rules() {
        let src = "
            /// Example: `x.unwrap()` then `panic!`, `Instant::now()`.
            fn f() { let s = \"x.unwrap() panic! Instant thread_rng\"; use_it(s); }
        ";
        assert!(check("core", src).is_empty());
    }

    // ---- pragmas ----

    #[test]
    fn pragma_suppresses_next_line_only() {
        let src = "
            fn f(x: Option<u8>) -> u8 {
                // lint: allow(D4, \"demo justification\")
                x.unwrap()
            }
            fn g(x: Option<u8>) -> u8 { x.unwrap() }
        ";
        let d = check("cpu", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn pragma_on_same_line_works() {
        let src = "fn f(x: u64) -> f64 { x as f64 } // lint: allow(D3, \"mantissa proof\")";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn pragma_requires_justification() {
        for bad in [
            "fn f() {} // lint: allow(D4)",
            "fn f() {} // lint: allow(D4, \"\")",
            "fn f() {} // lint: allow(D99, \"no such rule\")",
        ] {
            let d = check("core", bad);
            assert_eq!(rules(&d), vec![RuleId::Pragma], "{bad}");
        }
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "
            // lint: allow(D1, \"wrong rule\")
            fn f(x: Option<u8>) -> u8 { x.unwrap() }
        ";
        assert!(rules(&check("exec", src)).contains(&RuleId::D4));
    }
}
