//! The tag array: per-set, per-way metadata plus recency bookkeeping.

use crate::addr::{Geometry, LineAddr};
use crate::meta::{CostQ, WayMeta};
use crate::set::SetView;

/// A tag store: the full array of [`WayMeta`] for a cache, with helpers to
/// probe, touch (hit), and fill (replace) blocks.
///
/// The tag store is shared by real caches ([`CacheModel`]) and the
/// data-less auxiliary tag directories ([`Atd`]) that the paper's hybrid
/// replacement mechanisms use ("data lines are not required to estimate the
/// performance of replacement policies", §6).
///
/// [`CacheModel`]: crate::model::CacheModel
/// [`Atd`]: crate::atd::Atd
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::{Geometry, LineAddr};
/// use mlpsim_cache::tagstore::TagStore;
///
/// let mut tags = TagStore::new(Geometry::from_sets(4, 2, 64));
/// tags.fill(LineAddr(5), 0, false, 3);
/// assert_eq!(tags.probe(LineAddr(5)), Some(0));
/// assert_eq!(tags.cost_q_of(LineAddr(5)), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct TagStore {
    geometry: Geometry,
    ways: Vec<WayMeta>,
    /// Monotonic stamp source for recency/fill ordering.
    next_stamp: u64,
}

impl TagStore {
    /// Creates an empty (all-invalid) tag store for the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        let n = geometry.lines() as usize;
        TagStore {
            geometry,
            ways: vec![WayMeta::invalid(); n],
            next_stamp: 1,
        }
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    #[inline]
    fn base(&self, set_index: u32) -> usize {
        set_index as usize * usize::from(self.geometry.ways())
    }

    /// Slice of ways for one set.
    #[inline]
    pub fn set_ways(&self, set_index: u32) -> &[WayMeta] {
        let b = self.base(set_index);
        &self.ways[b..b + usize::from(self.geometry.ways())]
    }

    #[inline]
    fn set_ways_mut(&mut self, set_index: u32) -> &mut [WayMeta] {
        let b = self.base(set_index);
        let w = usize::from(self.geometry.ways());
        &mut self.ways[b..b + w]
    }

    /// Read-only view of one set, suitable for handing to a replacement
    /// engine.
    pub fn view(&self, set_index: u32) -> SetView<'_> {
        SetView::new(self.set_ways(set_index), set_index, self.geometry)
    }

    /// Looks up a line; returns the way it resides in, if present.
    pub fn probe(&self, line: LineAddr) -> Option<usize> {
        let set = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        self.set_ways(set)
            .iter()
            .position(|w| w.valid && w.tag == tag)
    }

    /// Whether the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Marks a resident way as most-recently-used (hit handling).
    pub fn touch(&mut self, line: LineAddr, way: usize) {
        let stamp = self.take_stamp();
        let set = self.geometry.set_index(line);
        let w = &mut self.set_ways_mut(set)[way];
        debug_assert!(w.valid, "touching an invalid way");
        w.lru_stamp = stamp;
        self.check_set_invariants(set);
    }

    /// Fills `line` into `way` of its set, returning the evicted block (if
    /// the way held a valid one). The filled block becomes MRU.
    pub fn fill(
        &mut self,
        line: LineAddr,
        way: usize,
        dirty: bool,
        cost_q: CostQ,
    ) -> Option<Evicted> {
        let stamp = self.take_stamp();
        let set = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let geometry = self.geometry;
        let w = &mut self.set_ways_mut(set)[way];
        let evicted = w.valid.then(|| Evicted {
            line: geometry.line_from_parts(w.tag, set),
            dirty: w.dirty,
            cost_q: w.cost_q,
        });
        *w = WayMeta {
            valid: true,
            tag,
            lru_stamp: stamp,
            fill_stamp: stamp,
            cost_q,
            dirty,
        };
        self.check_set_invariants(set);
        evicted
    }

    /// Invalidates a resident line, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let way = self.probe(line)?;
        let set = self.geometry.set_index(line);
        let w = &mut self.set_ways_mut(set)[way];
        let evicted = Evicted {
            line,
            dirty: w.dirty,
            cost_q: w.cost_q,
        };
        *w = WayMeta::invalid();
        Some(evicted)
    }

    /// Updates the stored `cost_q` of a resident line (done when the miss
    /// that fetched it is finally serviced and its MLP-based cost is known).
    /// Returns `false` if the line is no longer resident.
    pub fn set_cost_q(&mut self, line: LineAddr, cost_q: CostQ) -> bool {
        match self.probe(line) {
            Some(way) => {
                let set = self.geometry.set_index(line);
                self.set_ways_mut(set)[way].cost_q = cost_q;
                self.check_set_invariants(set);
                true
            }
            None => false,
        }
    }

    /// The stored `cost_q` of a resident line, if present.
    pub fn cost_q_of(&self, line: LineAddr) -> Option<CostQ> {
        self.probe(line).map(|way| {
            let set = self.geometry.set_index(line);
            self.set_ways(set)[way].cost_q
        })
    }

    /// Sets the dirty bit of a resident line. Returns `false` if absent.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.probe(line) {
            Some(way) => {
                let set = self.geometry.set_index(line);
                self.set_ways_mut(set)[way].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Number of valid blocks currently resident.
    pub fn resident_count(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Iterator over all resident line addresses.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let g = self.geometry;
        let ways = usize::from(g.ways());
        self.ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid)
            .map(move |(i, w)| {
                let set = (i / ways) as u32;
                g.line_from_parts(w.tag, set)
            })
    }

    #[inline]
    fn take_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Model check (under the `invariants` feature) after any mutation of
    /// one set: every valid way has a distinct recency stamp drawn from the
    /// stamps already issued, no two valid ways hold the same tag, and every
    /// `cost_q` fits the 3-bit field of Fig. 3b.
    #[cfg(feature = "invariants")]
    fn check_set_invariants(&self, set_index: u32) {
        let ways = self.set_ways(set_index);
        for (i, w) in ways.iter().enumerate() {
            if !w.valid {
                continue;
            }
            crate::invariant!(
                w.lru_stamp < self.next_stamp && w.fill_stamp < self.next_stamp,
                "stamps must come from the monotonic source"
            );
            crate::invariant!(
                w.cost_q <= crate::meta::COST_Q_MAX,
                "cost_q is a 3-bit field"
            );
            for other in &ways[i + 1..] {
                crate::invariant!(
                    !other.valid || other.tag != w.tag,
                    "a tag may be resident in at most one way of a set"
                );
                crate::invariant!(
                    !other.valid || other.lru_stamp != w.lru_stamp,
                    "recency stamps are unique, so ranks form a permutation"
                );
            }
        }
    }

    #[cfg(not(feature = "invariants"))]
    #[inline]
    fn check_set_invariants(&self, _set_index: u32) {}
}

/// Record of a block evicted (or invalidated) from a tag store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether the block was dirty (needs a writeback).
    pub dirty: bool,
    /// The quantized cost that was stored with it.
    pub cost_q: CostQ,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TagStore {
        TagStore::new(Geometry::from_sets(4, 2, 64))
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut t = store();
        let line = LineAddr(5);
        assert_eq!(t.probe(line), None);
        assert_eq!(t.fill(line, 0, false, 3), None);
        assert_eq!(t.probe(line), Some(0));
        assert_eq!(t.cost_q_of(line), Some(3));
        assert_eq!(t.resident_count(), 1);
    }

    #[test]
    fn fill_evicts_previous_occupant() {
        let mut t = store();
        let a = LineAddr(1); // set 1
        let b = LineAddr(9); // set 1 as well (9 % 4 == 1)
        t.fill(a, 0, true, 2);
        let ev = t.fill(b, 0, false, 0).expect("must evict a");
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert_eq!(ev.cost_q, 2);
        assert!(t.contains(b));
        assert!(!t.contains(a));
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut t = store();
        let a = LineAddr(0);
        let b = LineAddr(4); // same set 0
        t.fill(a, 0, false, 0);
        t.fill(b, 1, false, 0);
        // b is MRU now; touching a should flip the order.
        t.touch(a, 0);
        let view = t.view(0);
        assert_eq!(view.lru_way(), Some(1));
        assert_eq!(view.recency_ranks(), vec![1, 0]);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut t = store();
        let a = LineAddr(2);
        t.fill(a, 1, true, 5);
        let ev = t.invalidate(a).unwrap();
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert!(!t.contains(a));
        assert_eq!(t.invalidate(a), None);
    }

    #[test]
    fn set_cost_q_updates_resident_only() {
        let mut t = store();
        let a = LineAddr(3);
        assert!(!t.set_cost_q(a, 7));
        t.fill(a, 0, false, 0);
        assert!(t.set_cost_q(a, 7));
        assert_eq!(t.cost_q_of(a), Some(7));
    }

    #[test]
    fn resident_lines_round_trip() {
        let mut t = store();
        let lines = [LineAddr(0), LineAddr(1), LineAddr(6), LineAddr(11)];
        for (i, &l) in lines.iter().enumerate() {
            let set = t.geometry().set_index(l);
            let way = t.view(set).first_invalid().unwrap();
            t.fill(l, way, false, i as u8);
        }
        let mut resident: Vec<_> = t.resident_lines().collect();
        resident.sort();
        let mut expect = lines.to_vec();
        expect.sort();
        assert_eq!(resident, expect);
    }

    #[test]
    fn mark_dirty_sets_bit() {
        let mut t = store();
        let a = LineAddr(7);
        t.fill(a, 0, false, 0);
        assert!(t.mark_dirty(a));
        let ev = t.invalidate(a).unwrap();
        assert!(ev.dirty);
        assert!(!t.mark_dirty(a));
    }
}
