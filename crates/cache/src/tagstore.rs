//! The tag array: per-set, per-way metadata plus recency bookkeeping.

use crate::addr::{Geometry, LineAddr};
use crate::meta::CostQ;
use crate::set::SetView;

/// A tag store: the full per-way metadata array of a cache, with helpers to
/// probe, touch (hit), and fill (replace) blocks.
///
/// The tag store is shared by real caches ([`CacheModel`]) and the
/// data-less auxiliary tag directories ([`Atd`]) that the paper's hybrid
/// replacement mechanisms use ("data lines are not required to estimate the
/// performance of replacement policies", §6).
///
/// Metadata is laid out struct-of-arrays: one contiguous column per field
/// (`valid`, `tag`, `lru_stamp`, …), each indexed by
/// `set * assoc + way`. The hot operations — `probe`'s tag-match scan and
/// the recency scans behind victim selection — each read exactly one field
/// across a set's ways, so a columnar layout turns them into short
/// contiguous loads instead of strided walks over 40-byte records.
///
/// [`CacheModel`]: crate::model::CacheModel
/// [`Atd`]: crate::atd::Atd
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::{Geometry, LineAddr};
/// use mlpsim_cache::tagstore::TagStore;
///
/// let mut tags = TagStore::new(Geometry::from_sets(4, 2, 64));
/// tags.fill(LineAddr(5), 0, false, 3);
/// assert_eq!(tags.probe(LineAddr(5)), Some(0));
/// assert_eq!(tags.cost_q_of(LineAddr(5)), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct TagStore {
    geometry: Geometry,
    valid: Vec<bool>,
    tag: Vec<u64>,
    lru_stamp: Vec<u64>,
    fill_stamp: Vec<u64>,
    cost_q: Vec<CostQ>,
    dirty: Vec<bool>,
    /// Monotonic stamp source for recency/fill ordering.
    next_stamp: u64,
}

impl TagStore {
    /// Creates an empty (all-invalid) tag store for the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        let n = geometry.lines() as usize;
        TagStore {
            geometry,
            valid: vec![false; n],
            tag: vec![0; n],
            lru_stamp: vec![0; n],
            fill_stamp: vec![0; n],
            cost_q: vec![0; n],
            dirty: vec![false; n],
            next_stamp: 1,
        }
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Column range covering set `set_index`.
    #[inline]
    fn range(&self, set_index: u32) -> std::ops::Range<usize> {
        let w = usize::from(self.geometry.ways());
        let b = set_index as usize * w;
        b..b + w
    }

    /// Read-only view of one set, suitable for handing to a replacement
    /// engine.
    pub fn view(&self, set_index: u32) -> SetView<'_> {
        let r = self.range(set_index);
        SetView::new(
            &self.valid[r.clone()],
            &self.tag[r.clone()],
            &self.lru_stamp[r.clone()],
            &self.fill_stamp[r.clone()],
            &self.cost_q[r],
            set_index,
            self.geometry,
        )
    }

    /// Looks up a line; returns the way it resides in, if present.
    pub fn probe(&self, line: LineAddr) -> Option<usize> {
        let set = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let r = self.range(set);
        self.valid[r.clone()]
            .iter()
            .zip(&self.tag[r])
            .position(|(&v, &t)| v && t == tag)
    }

    /// Whether the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Marks a resident way as most-recently-used (hit handling).
    pub fn touch(&mut self, line: LineAddr, way: usize) {
        let stamp = self.take_stamp();
        let set = self.geometry.set_index(line);
        let i = self.range(set).start + way;
        debug_assert!(self.valid[i], "touching an invalid way");
        self.lru_stamp[i] = stamp;
        self.check_set_invariants(set);
    }

    /// Fills `line` into `way` of its set, returning the evicted block (if
    /// the way held a valid one). The filled block becomes MRU.
    pub fn fill(
        &mut self,
        line: LineAddr,
        way: usize,
        dirty: bool,
        cost_q: CostQ,
    ) -> Option<Evicted> {
        let stamp = self.take_stamp();
        let set = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let i = self.range(set).start + way;
        let evicted = self.valid[i].then(|| Evicted {
            line: self.geometry.line_from_parts(self.tag[i], set),
            dirty: self.dirty[i],
            cost_q: self.cost_q[i],
        });
        self.valid[i] = true;
        self.tag[i] = tag;
        self.lru_stamp[i] = stamp;
        self.fill_stamp[i] = stamp;
        self.cost_q[i] = cost_q;
        self.dirty[i] = dirty;
        self.check_set_invariants(set);
        evicted
    }

    /// Invalidates a resident line, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let way = self.probe(line)?;
        let set = self.geometry.set_index(line);
        let i = self.range(set).start + way;
        let evicted = Evicted {
            line,
            dirty: self.dirty[i],
            cost_q: self.cost_q[i],
        };
        self.valid[i] = false;
        self.tag[i] = 0;
        self.lru_stamp[i] = 0;
        self.fill_stamp[i] = 0;
        self.cost_q[i] = 0;
        self.dirty[i] = false;
        Some(evicted)
    }

    /// Updates the stored `cost_q` of a resident line (done when the miss
    /// that fetched it is finally serviced and its MLP-based cost is known).
    /// Returns `false` if the line is no longer resident.
    pub fn set_cost_q(&mut self, line: LineAddr, cost_q: CostQ) -> bool {
        match self.probe(line) {
            Some(way) => {
                let set = self.geometry.set_index(line);
                let i = self.range(set).start + way;
                self.cost_q[i] = cost_q;
                self.check_set_invariants(set);
                true
            }
            None => false,
        }
    }

    /// The stored `cost_q` of a resident line, if present.
    pub fn cost_q_of(&self, line: LineAddr) -> Option<CostQ> {
        self.probe(line).map(|way| {
            let set = self.geometry.set_index(line);
            self.cost_q[self.range(set).start + way]
        })
    }

    /// Sets the dirty bit of a resident line. Returns `false` if absent.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.probe(line) {
            Some(way) => {
                let set = self.geometry.set_index(line);
                let i = self.range(set).start + way;
                self.dirty[i] = true;
                true
            }
            None => false,
        }
    }

    /// Number of valid blocks currently resident.
    pub fn resident_count(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Iterator over all resident line addresses.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let g = self.geometry;
        let ways = usize::from(g.ways());
        self.valid
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(move |(i, _)| {
                let set = (i / ways) as u32;
                g.line_from_parts(self.tag[i], set)
            })
    }

    #[inline]
    fn take_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Model check (under the `invariants` feature) after any mutation of
    /// one set: every valid way has a distinct recency stamp drawn from the
    /// stamps already issued, no two valid ways hold the same tag, and every
    /// `cost_q` fits the 3-bit field of Fig. 3b.
    #[cfg(feature = "invariants")]
    fn check_set_invariants(&self, set_index: u32) {
        let r = self.range(set_index);
        for i in r.clone() {
            if !self.valid[i] {
                continue;
            }
            crate::invariant!(
                self.lru_stamp[i] < self.next_stamp && self.fill_stamp[i] < self.next_stamp,
                "stamps must come from the monotonic source"
            );
            crate::invariant!(
                self.cost_q[i] <= crate::meta::COST_Q_MAX,
                "cost_q is a 3-bit field"
            );
            for j in i + 1..r.end {
                crate::invariant!(
                    !self.valid[j] || self.tag[j] != self.tag[i],
                    "a tag may be resident in at most one way of a set"
                );
                crate::invariant!(
                    !self.valid[j] || self.lru_stamp[j] != self.lru_stamp[i],
                    "recency stamps are unique, so ranks form a permutation"
                );
            }
        }
    }

    #[cfg(not(feature = "invariants"))]
    #[inline]
    fn check_set_invariants(&self, _set_index: u32) {}
}

/// Record of a block evicted (or invalidated) from a tag store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether the block was dirty (needs a writeback).
    pub dirty: bool,
    /// The quantized cost that was stored with it.
    pub cost_q: CostQ,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TagStore {
        TagStore::new(Geometry::from_sets(4, 2, 64))
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut t = store();
        let line = LineAddr(5);
        assert_eq!(t.probe(line), None);
        assert_eq!(t.fill(line, 0, false, 3), None);
        assert_eq!(t.probe(line), Some(0));
        assert_eq!(t.cost_q_of(line), Some(3));
        assert_eq!(t.resident_count(), 1);
    }

    #[test]
    fn fill_evicts_previous_occupant() {
        let mut t = store();
        let a = LineAddr(1); // set 1
        let b = LineAddr(9); // set 1 as well (9 % 4 == 1)
        t.fill(a, 0, true, 2);
        let ev = t.fill(b, 0, false, 0).expect("must evict a");
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert_eq!(ev.cost_q, 2);
        assert!(t.contains(b));
        assert!(!t.contains(a));
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut t = store();
        let a = LineAddr(0);
        let b = LineAddr(4); // same set 0
        t.fill(a, 0, false, 0);
        t.fill(b, 1, false, 0);
        // b is MRU now; touching a should flip the order.
        t.touch(a, 0);
        let view = t.view(0);
        assert_eq!(view.lru_way(), Some(1));
        assert_eq!(view.recency_ranks(), vec![1, 0]);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut t = store();
        let a = LineAddr(2);
        t.fill(a, 1, true, 5);
        let ev = t.invalidate(a).unwrap();
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert!(!t.contains(a));
        assert_eq!(t.invalidate(a), None);
    }

    #[test]
    fn set_cost_q_updates_resident_only() {
        let mut t = store();
        let a = LineAddr(3);
        assert!(!t.set_cost_q(a, 7));
        t.fill(a, 0, false, 0);
        assert!(t.set_cost_q(a, 7));
        assert_eq!(t.cost_q_of(a), Some(7));
    }

    #[test]
    fn resident_lines_round_trip() {
        let mut t = store();
        let lines = [LineAddr(0), LineAddr(1), LineAddr(6), LineAddr(11)];
        for (i, &l) in lines.iter().enumerate() {
            let set = t.geometry().set_index(l);
            let way = t.view(set).first_invalid().unwrap();
            t.fill(l, way, false, i as u8);
        }
        let mut resident: Vec<_> = t.resident_lines().collect();
        resident.sort();
        let mut expect = lines.to_vec();
        expect.sort();
        assert_eq!(resident, expect);
    }

    #[test]
    fn mark_dirty_sets_bit() {
        let mut t = store();
        let a = LineAddr(7);
        t.fill(a, 0, false, 0);
        assert!(t.mark_dirty(a));
        let ev = t.invalidate(a).unwrap();
        assert!(ev.dirty);
        assert!(!t.mark_dirty(a));
    }

    #[test]
    fn view_exposes_columns_consistently() {
        let mut t = store();
        t.fill(LineAddr(0), 0, false, 2);
        t.fill(LineAddr(4), 1, true, 6);
        let v = t.view(0);
        assert!(v.valid(0) && v.valid(1));
        assert_eq!(v.cost_q(0), 2);
        assert_eq!(v.cost_q(1), 6);
        assert_eq!(v.line_of(0), Some(LineAddr(0)));
        assert_eq!(v.line_of(1), Some(LineAddr(4)));
        assert!(v.lru_stamp(0) < v.lru_stamp(1), "fill order sets recency");
        assert_eq!(v.fill_stamp(0), v.lru_stamp(0));
    }
}
