//! The replacement-engine interface.
//!
//! A [`ReplacementEngine`] is the software analogue of the paper's
//! Cost-Aware Replacement Engine (CARE, Fig. 3a): a block that, given the
//! architectural state of a set, names the victim way. Engines also receive
//! notification hooks so stateful policies (Belady's OPT, the hybrid
//! SBAR/CBS schemes in `mlpsim-core`) can track the access stream.

use crate::addr::LineAddr;
use crate::meta::CostQ;
use crate::set::SetView;
use mlpsim_telemetry::SinkHandle;

/// Context handed to an engine when a victim must be chosen.
#[derive(Clone, Copy, Debug)]
pub struct VictimCtx<'a> {
    /// The set the incoming block maps to.
    pub set: SetView<'a>,
    /// The line address being filled.
    pub incoming: LineAddr,
    /// Monotonic access sequence number (the how-many-th access this is).
    pub seq: u64,
}

/// A victim-selection policy over a set-associative cache.
///
/// The [`CacheModel`](crate::model::CacheModel) guarantees that
/// [`victim`](ReplacementEngine::victim) is only called when the set is
/// completely full of valid ways; invalid ways are always filled first.
///
/// Implementations must be deterministic given their own state (policies
/// with randomness own a seeded RNG) so simulations are reproducible.
pub trait ReplacementEngine {
    /// Chooses the way to evict from a full set.
    ///
    /// The returned way index must be `< ctx.set.assoc()`.
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize;

    /// Notifies the engine of every access *after* the hit/miss outcome is
    /// known but *before* the tag store is updated.
    ///
    /// `hit` is the outcome in the main tag directory and
    /// `resident_cost_q` is the `cost_q` stored for `line` in the main tag
    /// directory if it is resident there (used by the paper's hybrid
    /// schemes, footnote 6). The default does nothing.
    fn on_access(&mut self, line: LineAddr, seq: u64, hit: bool, resident_cost_q: Option<CostQ>) {
        let _ = (line, seq, hit, resident_cost_q);
    }

    /// Notifies the engine that a previously missing `line` has been
    /// serviced by the memory system with quantized MLP-based cost
    /// `cost_q`. Hybrid engines use this to settle pending policy-selector
    /// updates. The default does nothing.
    fn on_serviced(&mut self, line: LineAddr, cost_q: CostQ) {
        let _ = (line, cost_q);
    }

    /// Periodic epoch hook: the simulator calls this at a fixed retired-
    /// instruction interval (the paper re-draws `rand-dynamic` leader sets
    /// every 25 M instructions). The default does nothing.
    fn on_epoch(&mut self) {}

    /// One-line internal-state description for diagnostics (PSEL values,
    /// adaptation counters); `None` for stateless policies.
    fn debug_state(&self) -> Option<String> {
        None
    }

    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The policy that actually governs victim selection in `set_index`
    /// right now. Uniform policies return [`ReplacementEngine::name`]
    /// (the default); set-dueling engines distinguish leader sets from
    /// followers and report the PSEL-selected component ("lin", "lru",
    /// "lin-leader", ...). The stall-attribution ledger tags every
    /// charged cycle with this, so attributed stall can be split
    /// LIN-vs-LRU per set.
    fn policy_for_set(&self, set_index: u32) -> &'static str {
        let _ = set_index;
        self.name()
    }

    /// Hands the engine a telemetry sink. Engines with internal adaptive
    /// state (PSEL counters, leader sets) emit `psel_update`/`psel_flip`/
    /// `leader_divergence` events through it; stateless policies ignore
    /// it, which is the default.
    fn attach_sink(&mut self, sink: SinkHandle) {
        let _ = sink;
    }
}

impl ReplacementEngine for Box<dyn ReplacementEngine> {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        (**self).victim(ctx)
    }

    fn on_access(&mut self, line: LineAddr, seq: u64, hit: bool, resident_cost_q: Option<CostQ>) {
        (**self).on_access(line, seq, hit, resident_cost_q);
    }

    fn on_serviced(&mut self, line: LineAddr, cost_q: CostQ) {
        (**self).on_serviced(line, cost_q);
    }

    fn on_epoch(&mut self) {
        (**self).on_epoch();
    }

    fn debug_state(&self) -> Option<String> {
        (**self).debug_state()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn policy_for_set(&self, set_index: u32) -> &'static str {
        (**self).policy_for_set(set_index)
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        (**self).attach_sink(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Geometry;
    use crate::meta::WayMeta;

    struct AlwaysZero;
    impl ReplacementEngine for AlwaysZero {
        fn victim(&mut self, _ctx: &VictimCtx<'_>) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "zero"
        }
    }

    #[test]
    fn boxed_engine_delegates() {
        let mut engine: Box<dyn ReplacementEngine> = Box::new(AlwaysZero);
        let g = Geometry::from_sets(2, 2, 64);
        let ways = [
            WayMeta {
                valid: true,
                ..WayMeta::invalid()
            },
            WayMeta {
                valid: true,
                ..WayMeta::invalid()
            },
        ];
        let set = crate::set::OwnedSet::from_ways(&ways, 0, g);
        let view = set.view();
        let ctx = VictimCtx {
            set: view,
            incoming: LineAddr(9),
            seq: 1,
        };
        assert_eq!(engine.victim(&ctx), 0);
        assert_eq!(engine.name(), "zero");
        engine.on_access(LineAddr(9), 1, false, None);
        engine.on_serviced(LineAddr(9), 3);
    }

    #[test]
    fn policy_for_set_defaults_to_name_through_the_box() {
        let engine: Box<dyn ReplacementEngine> = Box::new(AlwaysZero);
        assert_eq!(engine.policy_for_set(0), "zero");
        assert_eq!(engine.policy_for_set(1023), "zero");
    }
}
