//! Belady's OPT: the offline, future-knowing replacement policy.
//!
//! The paper uses Belady's OPT in its Figure-1 argument to show that even
//! the miss-count-optimal policy can incur *twice* the long-latency stalls
//! of a simple MLP-aware policy. OPT needs the future access stream, so
//! this engine is constructed from a complete trace of line addresses.

use crate::addr::LineAddr;
use crate::meta::CostQ;
use crate::policy::{ReplacementEngine, VictimCtx};
use std::collections::{HashMap, VecDeque};

/// Belady's OPT replacement: evicts the resident block whose next use is
/// farthest in the future (or never).
///
/// Construct it with [`BeladyEngine::from_accesses`] over the *exact* access
/// stream that will be simulated; the engine consumes its future knowledge
/// through the [`on_access`](ReplacementEngine::on_access) hook, so the
/// driving cache must pass sequence numbers 0, 1, 2, … matching the trace
/// positions.
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::LineAddr;
/// use mlpsim_cache::belady::BeladyEngine;
/// let trace = vec![LineAddr(0), LineAddr(1), LineAddr(0)];
/// let opt = BeladyEngine::from_accesses(trace.iter().copied());
/// assert_eq!(opt.remaining_uses(LineAddr(0)), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BeladyEngine {
    /// For each line, the ascending positions at which it will be accessed.
    future: HashMap<LineAddr, VecDeque<u64>>,
}

impl BeladyEngine {
    /// Builds the oracle from the full future access stream; position `i`
    /// of the iterator corresponds to access sequence number `i`.
    pub fn from_accesses<I>(accesses: I) -> Self
    where
        I: IntoIterator<Item = LineAddr>,
    {
        let mut future: HashMap<LineAddr, VecDeque<u64>> = HashMap::new();
        for (i, line) in accesses.into_iter().enumerate() {
            future.entry(line).or_default().push_back(i as u64);
        }
        BeladyEngine { future }
    }

    /// Number of not-yet-consumed future uses recorded for `line` (mainly
    /// for tests and diagnostics).
    pub fn remaining_uses(&self, line: LineAddr) -> usize {
        self.future.get(&line).map_or(0, VecDeque::len)
    }

    /// Next use of `line` strictly after sequence number `seq`, or `None`.
    fn next_use_after(&self, line: LineAddr, seq: u64) -> Option<u64> {
        self.future
            .get(&line)
            .and_then(|q| q.iter().copied().find(|&p| p > seq))
    }
}

impl ReplacementEngine for BeladyEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        // Farthest next use wins; "never used again" beats everything.
        let mut best_way = None;
        let mut best_key = 0u64; // next-use position; u64::MAX means never
        for way in ctx.set.valid_ways() {
            let line = ctx.set.line_of(way).expect("valid way has a line");
            let key = self.next_use_after(line, ctx.seq).unwrap_or(u64::MAX);
            if best_way.is_none() || key > best_key {
                best_way = Some(way);
                best_key = key;
            }
        }
        best_way.expect("victim() is only invoked on full sets")
    }

    fn on_access(&mut self, line: LineAddr, seq: u64, _hit: bool, _cost: Option<CostQ>) {
        // Consume this access from the future table so next_use_after stays
        // cheap and honest even if the driver probes positions out of order.
        if let Some(q) = self.future.get_mut(&line) {
            while let Some(&front) = q.front() {
                if front <= seq {
                    q.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "belady-opt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Geometry;
    use crate::lru::LruEngine;
    use crate::model::CacheModel;

    /// Drives a cache over a trace, passing positions as sequence numbers.
    fn run(trace: &[LineAddr], model: &mut CacheModel) -> u64 {
        for (i, &line) in trace.iter().enumerate() {
            model.access(line, false, i as u64);
        }
        model.stats().misses
    }

    #[test]
    fn opt_never_misses_more_than_lru() {
        // A strided + reuse pattern where OPT clearly beats LRU.
        let mut trace = Vec::new();
        for rep in 0..8u64 {
            for i in 0..6u64 {
                trace.push(LineAddr(i * 4)); // all map to set 0 of a 4-set cache
            }
            trace.push(LineAddr(rep)); // noise
        }
        let g = Geometry::from_sets(4, 4, 64);
        let mut opt = CacheModel::new(
            g,
            Box::new(BeladyEngine::from_accesses(trace.iter().copied())),
        );
        let mut lru = CacheModel::new(g, Box::new(LruEngine::new()));
        let opt_misses = run(&trace, &mut opt);
        let lru_misses = run(&trace, &mut lru);
        assert!(
            opt_misses <= lru_misses,
            "OPT ({opt_misses}) must not exceed LRU ({lru_misses})"
        );
        assert!(
            opt_misses < lru_misses,
            "this trace is built to separate them"
        );
    }

    #[test]
    fn opt_keeps_soon_reused_block() {
        // 3 lines in a 2-way set: 0 1 2 0 1  — OPT evicts 1 when 2 arrives
        // only if 1 is used later than 0... here next uses after seq=2 are
        // 0@3, 1@4, so OPT evicts 1 (farther).
        let trace = [
            LineAddr(0),
            LineAddr(4),
            LineAddr(8),
            LineAddr(0),
            LineAddr(4),
        ];
        let g = Geometry::from_sets(4, 2, 64);
        let mut c = CacheModel::new(
            g,
            Box::new(BeladyEngine::from_accesses(trace.iter().copied())),
        );
        for (i, &line) in trace.iter().enumerate() {
            let res = c.access(line, false, i as u64);
            if i == 2 {
                assert_eq!(res.evicted.unwrap().line, LineAddr(4));
            }
        }
        // misses: 0, 4, 8, then 0 hits, 4 misses again
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn never_reused_block_is_first_victim() {
        let trace = [
            LineAddr(0),
            LineAddr(4),
            LineAddr(8),
            LineAddr(0),
            LineAddr(8),
        ];
        let g = Geometry::from_sets(4, 2, 64);
        let mut c = CacheModel::new(
            g,
            Box::new(BeladyEngine::from_accesses(trace.iter().copied())),
        );
        for (i, &line) in trace.iter().enumerate() {
            let res = c.access(line, false, i as u64);
            if i == 2 {
                // line 4 is never used again — it must be the victim.
                assert_eq!(res.evicted.unwrap().line, LineAddr(4));
            }
        }
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn remaining_uses_counts_trace_occurrences() {
        let trace = vec![LineAddr(3), LineAddr(3), LineAddr(5)];
        let opt = BeladyEngine::from_accesses(trace);
        assert_eq!(opt.remaining_uses(LineAddr(3)), 2);
        assert_eq!(opt.remaining_uses(LineAddr(5)), 1);
        assert_eq!(opt.remaining_uses(LineAddr(9)), 0);
    }
}
