//! The LRU replacement engine — the paper's baseline policy.

use crate::policy::{ReplacementEngine, VictimCtx};

/// Least-recently-used replacement: evicts the valid way with the smallest
/// recency stamp.
///
/// In the paper's notation (§5.1, Eq. 1): `Victim_LRU = argmin_i { R(i) }`.
/// Note that LRU is the special case of the LIN policy with λ = 0; the
/// `mlpsim-core` test suite asserts that equivalence.
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::{Geometry, LineAddr};
/// use mlpsim_cache::lru::LruEngine;
/// use mlpsim_cache::model::CacheModel;
///
/// let mut c = CacheModel::new(Geometry::from_sets(1, 2, 64), Box::new(LruEngine::new()));
/// c.access(LineAddr(0), false, 0);
/// c.access(LineAddr(1), false, 1);
/// c.access(LineAddr(0), false, 2); // 0 is now MRU
/// let res = c.access(LineAddr(2), false, 3); // evicts 1, the LRU block
/// assert_eq!(res.evicted.unwrap().line, LineAddr(1));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct LruEngine;

impl LruEngine {
    /// Creates an LRU engine.
    pub fn new() -> Self {
        LruEngine
    }
}

impl ReplacementEngine for LruEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        ctx.set
            .lru_way()
            .expect("victim() is only invoked on full sets")
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Geometry, LineAddr};
    use crate::model::CacheModel;

    #[test]
    fn evicts_least_recently_used() {
        let g = Geometry::from_sets(1, 4, 64);
        let mut c = CacheModel::new(g, Box::new(LruEngine::new()));
        for i in 0..4 {
            c.access(LineAddr(i), false, i);
        }
        // Touch 0 and 2 so 1 is LRU.
        c.access(LineAddr(0), false, 4);
        c.access(LineAddr(2), false, 5);
        let res = c.access(LineAddr(10), false, 6);
        assert!(!res.hit);
        assert_eq!(res.evicted.unwrap().line, LineAddr(1));
    }

    #[test]
    fn hit_sequence_has_no_evictions() {
        let g = Geometry::from_sets(2, 2, 64);
        let mut c = CacheModel::new(g, Box::new(LruEngine::new()));
        c.access(LineAddr(0), false, 0);
        c.access(LineAddr(1), false, 1);
        for seq in 2..10 {
            let line = LineAddr(seq % 2);
            let res = c.access(line, false, seq);
            assert!(res.hit);
            assert!(res.evicted.is_none());
        }
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 8);
    }

    #[test]
    fn lru_over_full_set_cycles() {
        // Cyclic access to assoc+1 distinct lines in one set under LRU
        // misses every time (the classic LRU pathology the paper exploits).
        let g = Geometry::from_sets(1, 4, 64);
        let mut c = CacheModel::new(g, Box::new(LruEngine::new()));
        let mut seq = 0;
        for _ in 0..5 {
            for i in 0..5u64 {
                let res = c.access(LineAddr(i), false, seq);
                seq += 1;
                assert!(
                    !res.hit,
                    "cyclic working set of assoc+1 never hits under LRU"
                );
            }
        }
    }
}
