//! A cache model: tag store + replacement engine + statistics.

use crate::addr::{Geometry, LineAddr};
use crate::meta::CostQ;
use crate::policy::{ReplacementEngine, VictimCtx};
use crate::tagstore::{Evicted, TagStore};

use mlpsim_telemetry::{Event, SinkHandle};
use serde::{Deserialize, Serialize};

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// The way the line resides in after the access.
    pub way: usize,
    /// Block evicted to make room (misses into full sets only).
    pub evicted: Option<Evicted>,
}

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that found every way valid and had to evict.
    pub evictions: u64,
    /// Evictions of dirty blocks (writebacks generated).
    pub writebacks: u64,
    /// Misses that filled an invalid way — these are, by definition,
    /// *compulsory or capacity-fresh* fills; together with
    /// `first_touch_misses` they support the Table-3 compulsory-miss
    /// accounting.
    pub cold_fills: u64,
    /// Lines inserted by a prefetcher (not counted as hits or misses).
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with a pluggable replacement engine.
///
/// `CacheModel` updates tags *at access time* (standard trace-driven cache
/// simulation); the timing of miss service is owned by the MSHR/memory
/// models in `mlpsim-mem`, which call back into
/// [`CacheModel::record_serviced_cost`] once a miss's MLP-based cost is
/// known (paper §5: the cost is stored in the tag-store entry when the miss
/// gets serviced).
pub struct CacheModel {
    tags: TagStore,
    engine: Box<dyn ReplacementEngine>,
    stats: CacheStats,
    /// Lines touched at least once, for compulsory-miss accounting. Kept as
    /// a sorted bitmap-free count via the tag of first fill; we only need
    /// the *count*, so we track it with a HashSet.
    seen: std::collections::HashSet<LineAddr>,
    first_touch_misses: u64,
    /// Telemetry sink (disabled unless attached) and the cache-level tag
    /// stamped on emitted events (1 = L1, 2 = L2).
    sink: SinkHandle,
    level: u8,
}

impl CacheModel {
    /// Creates a cache with the given geometry and replacement engine.
    pub fn new(geometry: Geometry, engine: Box<dyn ReplacementEngine>) -> Self {
        CacheModel {
            tags: TagStore::new(geometry),
            engine,
            stats: CacheStats::default(),
            seen: std::collections::HashSet::new(),
            first_touch_misses: 0,
            sink: SinkHandle::disabled(),
            level: 0,
        }
    }

    /// Streams `cache_hit`/`cache_miss`/`cache_victim` events into `sink`,
    /// stamped with `level`, and hands the engine a clone for its own
    /// `psel_*`/`leader_divergence` events.
    pub fn set_sink(&mut self, sink: SinkHandle, level: u8) {
        self.engine.attach_sink(sink.clone());
        self.sink = sink;
        self.level = level;
    }

    /// The cache geometry.
    pub fn geometry(&self) -> Geometry {
        self.tags.geometry()
    }

    /// The replacement engine's name.
    pub fn policy_name(&self) -> &'static str {
        self.engine.name()
    }

    /// The policy governing victim selection in `set_index` right now
    /// (see [`ReplacementEngine::policy_for_set`]); distinguishes leader
    /// from PSEL-following sets in the dueling engines.
    pub fn policy_for_set(&self, set_index: u32) -> &'static str {
        self.engine.policy_for_set(set_index)
    }

    /// Immutable view of the tag store (for diagnostics and hybrid engines
    /// built *around* a `CacheModel`).
    pub fn tags(&self) -> &TagStore {
        &self.tags
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of misses to lines never seen before (compulsory misses in
    /// the simulated window).
    pub fn compulsory_misses(&self) -> u64 {
        self.first_touch_misses
    }

    /// Resets statistics (not contents), e.g. after cache warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.first_touch_misses = 0;
    }

    /// Performs one access.
    ///
    /// * `write` marks the line dirty (write-allocate, writeback).
    /// * `seq` is a monotonically increasing access sequence number; it is
    ///   forwarded to the engine (Belady's OPT keys its oracle on it).
    pub fn access(&mut self, line: LineAddr, write: bool, seq: u64) -> AccessResult {
        mlpsim_telemetry::prof_scope!(Tagstore);
        match self.tags.probe(line) {
            Some(way) => {
                let cost = self.tags.cost_q_of(line);
                self.engine.on_access(line, seq, true, cost);
                self.tags.touch(line, way);
                if write {
                    self.tags.mark_dirty(line);
                }
                self.stats.hits += 1;
                self.sink.emit_with(|| Event::CacheHit {
                    level: self.level,
                    set: u64::from(self.tags.geometry().set_index(line)),
                    line: line.0,
                    seq,
                });
                AccessResult {
                    hit: true,
                    way,
                    evicted: None,
                }
            }
            None => {
                self.engine.on_access(line, seq, false, None);
                self.stats.misses += 1;
                if self.seen.insert(line) {
                    self.first_touch_misses += 1;
                }
                let set_index = self.tags.geometry().set_index(line);
                self.sink.emit_with(|| Event::CacheMiss {
                    level: self.level,
                    set: u64::from(set_index),
                    line: line.0,
                    seq,
                });
                // Rank of the victim way within the set's recency stack,
                // computed only when a sink is listening: recency_ranks()
                // walks the whole set, which would tax the uninstrumented
                // miss path.
                let mut victim_rank: Option<u8> = None;
                let way = match self.tags.view(set_index).first_invalid() {
                    Some(way) => {
                        self.stats.cold_fills += 1;
                        way
                    }
                    None => {
                        self.stats.evictions += 1;
                        let ctx = VictimCtx {
                            set: self.tags.view(set_index),
                            incoming: line,
                            seq,
                        };
                        let way = self.engine.victim(&ctx);
                        assert!(
                            way < usize::from(self.tags.geometry().ways()),
                            "engine returned out-of-range way"
                        );
                        if self.sink.enabled() {
                            victim_rank = Some(self.tags.view(set_index).recency_ranks()[way]);
                        }
                        way
                    }
                };
                let evicted = self.tags.fill(line, way, write, 0);
                if let Some(ev) = evicted {
                    if ev.dirty {
                        self.stats.writebacks += 1;
                    }
                    if let Some(rank) = victim_rank {
                        self.sink.emit(Event::CacheVictim {
                            level: self.level,
                            set: u64::from(set_index),
                            way: way as u64,
                            rank: u64::from(rank),
                            cost_q: ev.cost_q,
                            line: ev.line.0,
                            dirty: ev.dirty,
                            seq,
                        });
                    }
                }
                AccessResult {
                    hit: false,
                    way,
                    evicted,
                }
            }
        }
    }

    /// Inserts a prefetched line without touching hit/miss statistics
    /// (prefetches are not demand accesses). The line lands at MRU with
    /// `cost_q` 0; if the set is full the engine chooses the victim as
    /// usual. Returns the evicted block, if any; no-op when the line is
    /// already resident.
    pub fn insert_prefetched(&mut self, line: LineAddr, seq: u64) -> Option<Evicted> {
        if self.tags.contains(line) {
            return None;
        }
        let set_index = self.tags.geometry().set_index(line);
        let way = match self.tags.view(set_index).first_invalid() {
            Some(way) => way,
            None => {
                let ctx = VictimCtx {
                    set: self.tags.view(set_index),
                    incoming: line,
                    seq,
                };
                self.engine.victim(&ctx)
            }
        };
        self.stats.prefetch_fills += 1;
        let evicted = self.tags.fill(line, way, false, 0);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.stats.writebacks += 1;
            }
        }
        evicted
    }

    /// Records the quantized MLP-based cost of a serviced miss into the
    /// tag-store entry for `line` (if still resident) and notifies the
    /// engine. Returns whether the line was still resident.
    pub fn record_serviced_cost(&mut self, line: LineAddr, cost_q: CostQ) -> bool {
        self.engine.on_serviced(line, cost_q);
        self.tags.set_cost_q(line, cost_q)
    }

    /// Forwards the periodic epoch hook to the replacement engine (used by
    /// `rand-dynamic` leader-set reselection).
    pub fn on_epoch(&mut self) {
        self.engine.on_epoch();
    }

    /// The engine's one-line diagnostic state, if it has one.
    pub fn engine_debug_state(&self) -> Option<String> {
        self.engine.debug_state()
    }

    /// The stored `cost_q` for a resident line.
    pub fn cost_q_of(&self, line: LineAddr) -> Option<CostQ> {
        self.tags.cost_q_of(line)
    }

    /// Whether a line is currently resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.tags.contains(line)
    }
}

impl std::fmt::Debug for CacheModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheModel")
            .field("geometry", &self.tags.geometry())
            .field("policy", &self.engine.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruEngine;

    fn small() -> CacheModel {
        CacheModel::new(Geometry::from_sets(2, 2, 64), Box::new(LruEngine::new()))
    }

    #[test]
    fn miss_then_hit_updates_stats() {
        let mut c = small();
        assert!(!c.access(LineAddr(0), false, 0).hit);
        assert!(c.access(LineAddr(0), false, 1).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().cold_fills, 1);
        assert_eq!(c.compulsory_misses(), 1);
    }

    #[test]
    fn write_makes_block_dirty_and_evicts_writeback() {
        let mut c = small();
        c.access(LineAddr(0), true, 0); // set 0, dirty
        c.access(LineAddr(2), false, 1); // set 0
        let res = c.access(LineAddr(4), false, 2); // set 0, evict LRU = line 0
        let ev = res.evicted.unwrap();
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn serviced_cost_lands_in_tag_store() {
        let mut c = small();
        c.access(LineAddr(1), false, 0);
        assert!(c.record_serviced_cost(LineAddr(1), 6));
        assert_eq!(c.cost_q_of(LineAddr(1)), Some(6));
        assert!(!c.record_serviced_cost(LineAddr(99), 6));
    }

    #[test]
    fn compulsory_misses_count_unique_lines() {
        let mut c = small();
        // 0,2,4 all map to set 0 of the 2-way cache: line 0 is evicted and
        // re-missed, which must NOT count as compulsory again.
        for (i, l) in [0u64, 2, 4, 0, 2, 4, 0].iter().enumerate() {
            c.access(LineAddr(*l), false, i as u64);
        }
        assert_eq!(c.compulsory_misses(), 3);
        assert!(c.stats().misses > 3);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(LineAddr(0), false, 0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(
            c.access(LineAddr(0), false, 1).hit,
            "contents survive reset"
        );
    }

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
