//! Per-way tag-store metadata.

use serde::{Deserialize, Serialize};

/// The quantized MLP-based cost stored alongside each tag (paper Fig. 3b).
///
/// The paper quantizes `mlp-cost` into 3 bits (values 0–7); we store it in a
/// `u8` and let the quantizer in `mlpsim-core` guarantee the 0–7 range.
pub type CostQ = u8;

/// Maximum representable quantized cost: the paper's quantizer produces a
/// 3-bit value, so 7.
pub const COST_Q_MAX: CostQ = 7;

/// Metadata for one way of one cache set.
///
/// Replacement engines see these through a [`SetView`](crate::set::SetView)
/// and must base their victim choice only on this architectural state — the
/// tag, the recency stamp (from which the LRU-stack position `R(i)` is
/// derived), the fill order, and the stored quantized cost `cost_q(i)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct WayMeta {
    /// Whether this way holds a valid block.
    pub valid: bool,
    /// Tag of the resident block (meaningless when `!valid`).
    pub tag: u64,
    /// Monotonic stamp of the last touch; higher = more recently used.
    /// The LRU-stack position `R(i)` is the rank of this stamp within the
    /// set's valid ways (0 = LRU … assoc-1 = MRU).
    pub lru_stamp: u64,
    /// Monotonic stamp of when the block was filled (for FIFO and lifetime
    /// statistics).
    pub fill_stamp: u64,
    /// Quantized MLP-based cost of the miss that most recently brought this
    /// block into the cache (paper §5: "When a miss gets serviced, the
    /// mlp-cost of the miss is stored in the tag-store entry").
    pub cost_q: CostQ,
    /// Dirty bit: the block must be written back on eviction.
    pub dirty: bool,
}

impl WayMeta {
    /// An empty (invalid) way.
    pub fn invalid() -> Self {
        WayMeta::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_way_is_not_valid() {
        let w = WayMeta::invalid();
        assert!(!w.valid);
        assert!(!w.dirty);
        assert_eq!(w.cost_q, 0);
    }

    #[test]
    fn cost_q_max_is_three_bits() {
        assert_eq!(COST_Q_MAX, 0b111);
    }
}
