//! Seeded random replacement (a policy-free baseline).

use crate::policy::{ReplacementEngine, VictimCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random replacement: evicts a uniformly random valid way.
///
/// The RNG is owned and explicitly seeded so simulations remain
/// reproducible. Not evaluated in the paper, but useful as a control: a
/// replacement-policy improvement that does not beat `random` is noise.
#[derive(Clone, Debug)]
pub struct RandomEngine {
    rng: SmallRng,
}

impl RandomEngine {
    /// Creates a random engine from an explicit seed.
    pub fn new(seed: u64) -> Self {
        RandomEngine {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementEngine for RandomEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        let assoc = ctx.set.assoc();
        debug_assert!(
            ctx.set.valid_count() == assoc,
            "victim() requires a full set"
        );
        self.rng.random_range(0..assoc)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Geometry, LineAddr};
    use crate::model::CacheModel;

    #[test]
    fn same_seed_same_victims() {
        let run = |seed: u64| -> Vec<LineAddr> {
            let g = Geometry::from_sets(1, 4, 64);
            let mut c = CacheModel::new(g, Box::new(RandomEngine::new(seed)));
            let mut evictions = Vec::new();
            for i in 0..64u64 {
                if let Some(ev) = c.access(LineAddr(i), false, i).evicted {
                    evictions.push(ev.line);
                }
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should diverge on 60 evictions"
        );
    }

    #[test]
    fn victims_cover_all_ways_eventually() {
        let g = Geometry::from_sets(1, 4, 64);
        let mut c = CacheModel::new(g, Box::new(RandomEngine::new(3)));
        let mut seen = [false; 4];
        let mut resident: Vec<LineAddr> = Vec::new();
        for i in 0..4u64 {
            c.access(LineAddr(i), false, i);
            resident.push(LineAddr(i));
        }
        for i in 4..200u64 {
            let res = c.access(LineAddr(i), false, i);
            let ev = res.evicted.unwrap().line;
            let way = resident.iter().position(|&l| l == ev).unwrap();
            seen[way] = true;
            resident[way] = LineAddr(i);
        }
        assert!(
            seen.iter().all(|&s| s),
            "200 random evictions should touch every way"
        );
    }
}
