//! Auxiliary tag directories (ATDs).
//!
//! The paper's hybrid mechanisms (CBS, SBAR — §6) estimate how an
//! *alternative* replacement policy would have performed by running a
//! tag-only shadow directory on the same access stream: "note that data
//! lines are not required to estimate the performance of replacement
//! policies". An [`Atd`] is exactly that: a [`TagStore`] plus an engine,
//! with no data array and no dirty-bit semantics.

use crate::addr::{Geometry, LineAddr};
use crate::meta::CostQ;
use crate::policy::{ReplacementEngine, VictimCtx};
use crate::tagstore::TagStore;

/// Outcome of an ATD access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtdOutcome {
    /// Whether the shadow directory hit.
    pub hit: bool,
}

/// A data-less shadow tag directory running its own replacement policy.
///
/// For sampling-based schemes (SBAR), callers simply refrain from accessing
/// sets that are not leader sets; the hardware-overhead model in
/// `mlpsim-core` accounts for only the leader sets' storage.
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::{Geometry, LineAddr};
/// use mlpsim_cache::atd::Atd;
/// use mlpsim_cache::lru::LruEngine;
///
/// let mut atd = Atd::new(Geometry::from_sets(4, 2, 64), Box::new(LruEngine::new()));
/// assert!(!atd.access(LineAddr(0), 0, 0).hit);
/// assert!(atd.access(LineAddr(0), 1, 0).hit);
/// ```
pub struct Atd {
    tags: TagStore,
    engine: Box<dyn ReplacementEngine>,
    hits: u64,
    misses: u64,
}

impl Atd {
    /// Creates an ATD with the given geometry and policy.
    pub fn new(geometry: Geometry, engine: Box<dyn ReplacementEngine>) -> Self {
        Atd {
            tags: TagStore::new(geometry),
            engine,
            hits: 0,
            misses: 0,
        }
    }

    /// The shadow directory's policy name.
    pub fn policy_name(&self) -> &'static str {
        self.engine.name()
    }

    /// ATD hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// ATD misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether `line` is resident in the shadow directory.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.tags.contains(line)
    }

    /// Replays one access into the shadow directory.
    ///
    /// `fill_cost_q` is the quantized cost to store with the block if this
    /// access misses and fills (hybrid engines pass the MTD's stored cost
    /// per the paper's footnote 6, or patch it later via
    /// [`Atd::set_cost_q`] when the real service cost arrives).
    pub fn access(&mut self, line: LineAddr, seq: u64, fill_cost_q: CostQ) -> AtdOutcome {
        match self.tags.probe(line) {
            Some(way) => {
                let cost = self.tags.cost_q_of(line);
                self.engine.on_access(line, seq, true, cost);
                self.tags.touch(line, way);
                self.hits += 1;
                AtdOutcome { hit: true }
            }
            None => {
                self.engine.on_access(line, seq, false, None);
                self.misses += 1;
                let set_index = self.tags.geometry().set_index(line);
                let way = match self.tags.view(set_index).first_invalid() {
                    Some(way) => way,
                    None => {
                        let ctx = VictimCtx {
                            set: self.tags.view(set_index),
                            incoming: line,
                            seq,
                        };
                        self.engine.victim(&ctx)
                    }
                };
                self.tags.fill(line, way, false, fill_cost_q);
                AtdOutcome { hit: false }
            }
        }
    }

    /// Updates the stored cost of a resident shadow block (used when the
    /// real MLP-based cost of a serviced miss becomes known).
    pub fn set_cost_q(&mut self, line: LineAddr, cost_q: CostQ) -> bool {
        self.engine.on_serviced(line, cost_q);
        self.tags.set_cost_q(line, cost_q)
    }
}

impl std::fmt::Debug for Atd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Atd")
            .field("geometry", &self.tags.geometry())
            .field("policy", &self.engine.name())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruEngine;

    #[test]
    fn shadow_directory_tracks_stream() {
        let g = Geometry::from_sets(2, 2, 64);
        let mut atd = Atd::new(g, Box::new(LruEngine::new()));
        assert!(!atd.access(LineAddr(0), 0, 0).hit);
        assert!(atd.access(LineAddr(0), 1, 0).hit);
        assert_eq!(atd.hits(), 1);
        assert_eq!(atd.misses(), 1);
    }

    #[test]
    fn atd_diverges_from_differently_policied_twin() {
        // FIFO vs LRU diverge on: fill 0,1 — touch 0 — fill 2.
        use crate::fifo::FifoEngine;
        let g = Geometry::from_sets(1, 2, 64);
        let mut lru = Atd::new(g, Box::new(LruEngine::new()));
        let mut fifo = Atd::new(g, Box::new(FifoEngine::new()));
        let stream = [0u64, 1, 0, 2, 0];
        for (i, &l) in stream.iter().enumerate() {
            lru.access(LineAddr(l), i as u64, 0);
            fifo.access(LineAddr(l), i as u64, 0);
        }
        // After fill 2: LRU evicted 1 (keeps 0); FIFO evicted 0.
        // Final access to 0 hits in LRU, misses in FIFO.
        assert_eq!(lru.misses(), 3);
        assert_eq!(fifo.misses(), 4);
    }

    #[test]
    fn cost_q_patching_updates_resident_block() {
        let g = Geometry::from_sets(2, 2, 64);
        let mut atd = Atd::new(g, Box::new(LruEngine::new()));
        atd.access(LineAddr(5), 0, 0);
        assert!(atd.set_cost_q(LineAddr(5), 4));
        assert!(!atd.set_cost_q(LineAddr(6), 4));
    }
}
