//! First-in-first-out replacement (a non-recency baseline).

use crate::policy::{ReplacementEngine, VictimCtx};

/// FIFO replacement: evicts the valid way that was filled earliest,
/// regardless of how recently it was touched.
///
/// Not evaluated in the paper, but included as an extra baseline for the
/// replacement framework (and to exercise the `fill_stamp` metadata).
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoEngine;

impl FifoEngine {
    /// Creates a FIFO engine.
    pub fn new() -> Self {
        FifoEngine
    }
}

impl ReplacementEngine for FifoEngine {
    fn victim(&mut self, ctx: &VictimCtx<'_>) -> usize {
        ctx.set
            .oldest_fill_way()
            .expect("victim() is only invoked on full sets")
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Geometry, LineAddr};
    use crate::model::CacheModel;

    #[test]
    fn evicts_in_fill_order_despite_touches() {
        let g = Geometry::from_sets(1, 3, 64);
        let mut c = CacheModel::new(g, Box::new(FifoEngine::new()));
        c.access(LineAddr(0), false, 0);
        c.access(LineAddr(1), false, 1);
        c.access(LineAddr(2), false, 2);
        // Touch 0 repeatedly; FIFO must still evict it first.
        c.access(LineAddr(0), false, 3);
        c.access(LineAddr(0), false, 4);
        let res = c.access(LineAddr(9), false, 5);
        assert_eq!(res.evicted.unwrap().line, LineAddr(0));
        let res = c.access(LineAddr(12), false, 6);
        assert_eq!(res.evicted.unwrap().line, LineAddr(1));
    }
}
