//! Line-address and cache-geometry arithmetic.
//!
//! Every address handled by the simulator is a [`LineAddr`]: a byte address
//! with the line offset already stripped. The paper's caches all use 64-byte
//! lines, but the arithmetic here is generic over the line size.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cache-line address: the byte address divided by the line size.
///
/// Two byte addresses that fall in the same cache line map to the same
/// `LineAddr`, which is how "multiple concurrent misses to the same cache
/// block are treated as a single miss" (paper §1, footnote 1) falls out of
/// the model naturally.
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::LineAddr;
/// let a = LineAddr::from_byte_addr(0x1040, 64);
/// let b = LineAddr::from_byte_addr(0x1070, 64);
/// assert_eq!(a, b); // same 64-byte line
/// assert_eq!(a.byte_addr(64), 0x1040);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Converts a raw byte address into a line address.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    #[inline]
    pub fn from_byte_addr(addr: u64, line_bytes: u32) -> Self {
        assert!(line_bytes > 0, "line size must be non-zero");
        LineAddr(addr / u64::from(line_bytes))
    }

    /// Returns the byte address of the first byte in this line.
    ///
    /// Addresses are modular in the 64-bit physical space, so the
    /// expansion back to bytes wraps rather than panics on a
    /// pathological synthetic line number.
    #[inline]
    pub fn byte_addr(self, line_bytes: u32) -> u64 {
        self.0.wrapping_mul(u64::from(line_bytes))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

/// Error returned when a [`Geometry`] is requested with invalid parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeometryError {
    /// Capacity, associativity, or line size was zero.
    ZeroParameter,
    /// Capacity is not divisible by `ways * line_bytes`.
    NotDivisible,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroParameter => write!(f, "geometry parameter was zero"),
            GeometryError::NotDivisible => {
                write!(f, "capacity is not divisible by ways * line_bytes")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// The shape of a set-associative cache: number of sets, associativity, and
/// line size.
///
/// The paper's baseline L2 is 1 MB, 16-way, 64-byte lines → 1024 sets
/// (Table 2), available as [`Geometry::baseline_l2`].
///
/// # Example
///
/// ```
/// use mlpsim_cache::addr::Geometry;
/// let l2 = Geometry::baseline_l2();
/// assert_eq!(l2.sets(), 1024);
/// assert_eq!(l2.ways(), 16);
/// assert_eq!(l2.capacity_bytes(), 1 << 20);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Geometry {
    sets: u32,
    ways: u16,
    line_bytes: u32,
}

impl Geometry {
    /// Creates a geometry from total capacity in bytes, associativity, and
    /// line size.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is zero or the capacity is
    /// not an exact multiple of `ways * line_bytes`.
    pub fn new(capacity_bytes: u64, ways: u16, line_bytes: u32) -> Result<Self, GeometryError> {
        if capacity_bytes == 0 || ways == 0 || line_bytes == 0 {
            return Err(GeometryError::ZeroParameter);
        }
        let set_bytes = u64::from(ways) * u64::from(line_bytes);
        if !capacity_bytes.is_multiple_of(set_bytes) {
            return Err(GeometryError::NotDivisible);
        }
        let sets = capacity_bytes / set_bytes;
        Ok(Geometry {
            sets: u32::try_from(sets).expect("set count fits in u32"),
            ways,
            line_bytes,
        })
    }

    /// Creates a geometry directly from a set count, associativity, and line
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn from_sets(sets: u32, ways: u16, line_bytes: u32) -> Self {
        assert!(
            sets > 0 && ways > 0 && line_bytes > 0,
            "geometry parameters must be non-zero"
        );
        Geometry {
            sets,
            ways,
            line_bytes,
        }
    }

    /// The paper's baseline L2: 1 MB, 16-way, 64-byte lines (Table 2).
    pub fn baseline_l2() -> Self {
        Geometry::new(1 << 20, 16, 64).expect("baseline L2 geometry is valid")
    }

    /// The paper's baseline L1 data cache: 16 KB, 4-way, 64-byte lines.
    pub fn baseline_l1d() -> Self {
        Geometry::new(16 << 10, 4, 64).expect("baseline L1D geometry is valid")
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity (ways per set).
    #[inline]
    pub fn ways(&self) -> u16 {
        self.ways
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// Total number of lines the cache can hold.
    #[inline]
    pub fn lines(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways)
    }

    /// Set index for a line address (modulo indexing, as in the paper's
    /// baseline).
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> u32 {
        (line.0 % u64::from(self.sets)) as u32
    }

    /// Tag for a line address: the line address with the set-index bits
    /// removed.
    #[inline]
    pub fn tag(&self, line: LineAddr) -> u64 {
        line.0 / u64::from(self.sets)
    }

    /// Reconstructs a line address from a `(tag, set_index)` pair; the
    /// inverse of [`Geometry::tag`] + [`Geometry::set_index`].
    #[inline]
    pub fn line_from_parts(&self, tag: u64, set_index: u32) -> LineAddr {
        // Exact inverse of `tag` (division) + `set_index` (modulo): for
        // any pair they produced, the product re-assembles a value that
        // already fit in u64, so the wrap never fires on round trips.
        LineAddr(
            tag.wrapping_mul(u64::from(self.sets))
                .wrapping_add(u64::from(set_index)),
        )
    }

    /// Converts a raw byte address into a line address using this geometry's
    /// line size.
    #[inline]
    pub fn line_of_byte_addr(&self, addr: u64) -> LineAddr {
        LineAddr::from_byte_addr(addr, self.line_bytes)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets x {} ways x {}B lines ({} KB)",
            self.sets,
            self.ways,
            self.line_bytes,
            self.capacity_bytes() / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_addresses_round_trip_without_panicking() {
        // The spelled-out bounds (D7): address expansion is modular, so
        // even a synthetic top-of-space line neither panics nor alters
        // the exact round trip for values that fit.
        let near_top = LineAddr(u64::MAX / 64);
        assert_eq!(LineAddr::from_byte_addr(near_top.byte_addr(64), 64), near_top);
        let g = Geometry::new(1 << 20, 16, 64).expect("valid baseline-like geometry");
        let line = LineAddr(u64::MAX / 64);
        assert_eq!(g.line_from_parts(g.tag(line), g.set_index(line)), line);
        // A pathological all-ones line wraps (modular) instead of aborting.
        let _ = LineAddr(u64::MAX).byte_addr(64);
    }

    #[test]
    fn line_addr_strips_offset() {
        let a = LineAddr::from_byte_addr(0x1000, 64);
        let b = LineAddr::from_byte_addr(0x103F, 64);
        let c = LineAddr::from_byte_addr(0x1040, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.byte_addr(64), 0x1000);
    }

    #[test]
    fn baseline_l2_matches_table2() {
        let g = Geometry::baseline_l2();
        assert_eq!(g.sets(), 1024);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.capacity_bytes(), 1 << 20);
        assert_eq!(g.lines(), 16384);
    }

    #[test]
    fn baseline_l1d_matches_table2() {
        let g = Geometry::baseline_l1d();
        assert_eq!(g.sets(), 64);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.capacity_bytes(), 16 << 10);
    }

    #[test]
    fn geometry_rejects_bad_parameters() {
        assert_eq!(Geometry::new(0, 4, 64), Err(GeometryError::ZeroParameter));
        assert_eq!(
            Geometry::new(1024, 0, 64),
            Err(GeometryError::ZeroParameter)
        );
        assert_eq!(Geometry::new(1024, 4, 0), Err(GeometryError::ZeroParameter));
        assert_eq!(Geometry::new(100, 4, 64), Err(GeometryError::NotDivisible));
    }

    #[test]
    fn tag_set_round_trip() {
        let g = Geometry::baseline_l2();
        for raw in [0u64, 1, 1023, 1024, 999_999_937, u64::MAX / 64] {
            let line = LineAddr(raw);
            let tag = g.tag(line);
            let set = g.set_index(line);
            assert_eq!(g.line_from_parts(tag, set), line);
        }
    }

    #[test]
    fn set_index_is_modulo() {
        let g = Geometry::from_sets(8, 2, 64);
        assert_eq!(g.set_index(LineAddr(0)), 0);
        assert_eq!(g.set_index(LineAddr(7)), 7);
        assert_eq!(g.set_index(LineAddr(8)), 0);
        assert_eq!(g.set_index(LineAddr(19)), 3);
    }

    #[test]
    fn display_is_informative() {
        let g = Geometry::baseline_l2();
        let s = format!("{g}");
        assert!(s.contains("1024 sets"));
        assert!(s.contains("16 ways"));
    }
}
