#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Set-associative cache substrate for the MLP-aware replacement study.
//!
//! This crate provides the *mechanical* cache machinery that the paper's
//! contribution (in `mlpsim-core`) plugs into:
//!
//! * [`addr`] — line-address and geometry arithmetic,
//! * [`meta`] — per-way tag-store metadata (tag, recency stamp, `cost_q`),
//! * [`tagstore`] — the tag array itself, with recency bookkeeping,
//! * [`set`] — read-only views of a set handed to replacement engines,
//! * [`policy`] — the [`policy::ReplacementEngine`]
//!   trait every victim-selection policy implements,
//! * [`lru`], [`fifo`], [`random`], [`belady`] — baseline policies,
//! * [`model`] — a [`model::CacheModel`] combining a tag store
//!   with an engine and hit/miss statistics,
//! * [`atd`] — auxiliary tag directories (tag-only shadow caches) used by
//!   the paper's hybrid-replacement mechanisms.
//!
//! The design deliberately separates *state* (the tag store, which knows
//! recency stamps and the quantized MLP cost of each block) from *policy*
//! (engines that pick victims from a [`set::SetView`]). This is
//! how the paper's hardware is organized too: the Cost-Aware Replacement
//! Engine (CARE) reads the tag-store entries, and hybrid schemes flip the
//! policy per set without touching the data array.
//!
//! # Example
//!
//! ```
//! use mlpsim_cache::addr::{Geometry, LineAddr};
//! use mlpsim_cache::lru::LruEngine;
//! use mlpsim_cache::model::CacheModel;
//!
//! // A tiny 4-set, 2-way cache with 64-byte lines.
//! let geom = Geometry::new(4 * 2 * 64, 2, 64).unwrap();
//! let mut cache = CacheModel::new(geom, Box::new(LruEngine::new()));
//! let a = LineAddr(0);
//! assert!(!cache.access(a, false, 0).hit);
//! assert!(cache.access(a, false, 1).hit);
//! ```

/// Model-checking assertion for the tag-store structural invariants
/// (recency permutation, `cost_q` range, tag uniqueness). Compiled to a
/// real `assert!` only under the `invariants` feature; a no-op (zero cost,
/// in release and debug alike) otherwise. See DESIGN.md §10.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// No-op twin of the `invariants`-enabled assertion (feature disabled).
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {};
}

pub mod addr;
pub mod atd;
pub mod belady;
pub mod fifo;
pub mod lru;
pub mod meta;
pub mod model;
pub mod policy;
pub mod random;
pub mod set;
pub mod tagstore;

pub use addr::{Geometry, LineAddr};
pub use model::{AccessResult, CacheModel, CacheStats};
pub use policy::{ReplacementEngine, VictimCtx};
