//! Read-only views of a cache set, handed to replacement engines.

use crate::addr::{Geometry, LineAddr};
use crate::meta::{CostQ, WayMeta};

/// A read-only view of one cache set at victim-selection time.
///
/// Engines use this to inspect the candidate ways: their validity, recency
/// stamps, `cost_q`, and the line addresses they hold. The view also knows
/// the cache [`Geometry`] so tags can be turned back into [`LineAddr`]s
/// (needed by Belady's OPT, which indexes its future-knowledge table by
/// line address).
///
/// The view borrows one column slice per metadata field (struct-of-arrays,
/// mirroring [`TagStore`](crate::tagstore::TagStore)'s layout) rather than
/// a slice of per-way structs: victim selection scans one field across all
/// ways at a time (all tags, then all stamps, …), so packing each field
/// contiguously keeps those scans within a cache line or two instead of
/// striding over 40-byte records. To build a view from standalone
/// [`WayMeta`] records (tests, benchmarks), go through [`OwnedSet`].
#[derive(Clone, Copy, Debug)]
pub struct SetView<'a> {
    valid: &'a [bool],
    tag: &'a [u64],
    lru_stamp: &'a [u64],
    fill_stamp: &'a [u64],
    cost_q: &'a [CostQ],
    set_index: u32,
    geometry: Geometry,
}

impl<'a> SetView<'a> {
    /// Creates a view over one set's metadata columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns' lengths disagree with each other or with the
    /// geometry's associativity.
    pub fn new(
        valid: &'a [bool],
        tag: &'a [u64],
        lru_stamp: &'a [u64],
        fill_stamp: &'a [u64],
        cost_q: &'a [CostQ],
        set_index: u32,
        geometry: Geometry,
    ) -> Self {
        let assoc = usize::from(geometry.ways());
        assert!(
            valid.len() == assoc
                && tag.len() == assoc
                && lru_stamp.len() == assoc
                && fill_stamp.len() == assoc
                && cost_q.len() == assoc,
            "set view must cover exactly one set"
        );
        SetView {
            valid,
            tag,
            lru_stamp,
            fill_stamp,
            cost_q,
            set_index,
            geometry,
        }
    }

    /// Whether `way` holds a valid block.
    #[inline]
    pub fn valid(&self, way: usize) -> bool {
        self.valid[way]
    }

    /// Tag of the block in `way` (meaningless when `!valid(way)`).
    #[inline]
    pub fn tag(&self, way: usize) -> u64 {
        self.tag[way]
    }

    /// Recency stamp of `way`; higher = more recently used.
    #[inline]
    pub fn lru_stamp(&self, way: usize) -> u64 {
        self.lru_stamp[way]
    }

    /// Fill stamp of `way` (when its block was brought in).
    #[inline]
    pub fn fill_stamp(&self, way: usize) -> u64 {
        self.fill_stamp[way]
    }

    /// Quantized MLP-based cost stored with `way`'s block.
    #[inline]
    pub fn cost_q(&self, way: usize) -> CostQ {
        self.cost_q[way]
    }

    /// Number of ways (associativity).
    #[inline]
    pub fn assoc(&self) -> usize {
        self.valid.len()
    }

    /// Index of this set within the cache.
    #[inline]
    pub fn set_index(&self) -> u32 {
        self.set_index
    }

    /// The cache geometry this set belongs to.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The line address resident in `way`, or `None` if the way is invalid.
    #[inline]
    pub fn line_of(&self, way: usize) -> Option<LineAddr> {
        self.valid[way].then(|| self.geometry.line_from_parts(self.tag[way], self.set_index))
    }

    /// Iterator over the indices of valid ways, in way order.
    pub fn valid_ways(&self) -> impl Iterator<Item = usize> + 'a {
        self.valid
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| i)
    }

    /// The first invalid way, if any.
    pub fn first_invalid(&self) -> Option<usize> {
        self.valid.iter().position(|&v| !v)
    }

    /// Number of valid ways.
    pub fn valid_count(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// LRU-stack positions of every way: `ranks[i]` is `R(i)` as defined in
    /// the paper (§5.1) — 0 for the least-recently-used valid way up to
    /// `valid_count() - 1` for the MRU way. Invalid ways get rank 0.
    ///
    /// Computed by ranking recency stamps; O(assoc²) but the associativities
    /// in play are ≤ 16, and profiling showed this is not a bottleneck.
    pub fn recency_ranks(&self) -> Vec<u8> {
        // The u8 rank caps the supported associativity at 256; the paper's
        // configurations top out at 16-way.
        assert!(self.assoc() <= 256, "recency ranks are 8-bit");
        let mut ranks = vec![0u8; self.assoc()];
        for (i, slot) in ranks.iter_mut().enumerate() {
            if !self.valid[i] {
                continue;
            }
            let mut rank = 0u8;
            for j in 0..self.assoc() {
                if self.valid[j] && self.lru_stamp[j] < self.lru_stamp[i] {
                    rank += 1;
                }
            }
            *slot = rank;
        }
        self.check_rank_permutation(&ranks);
        ranks
    }

    /// Model check (under the `invariants` feature): the ranks of the valid
    /// ways form a permutation of `0..valid_count()` — i.e. the recency
    /// stack orders every resident block exactly once, the property Eq. 1's
    /// `R(i)` and the LIN policy's rank term rely on.
    #[cfg(feature = "invariants")]
    fn check_rank_permutation(&self, ranks: &[u8]) {
        let mut seen = vec![false; self.assoc()];
        let mut valid = 0usize;
        for (&v, &r) in self.valid.iter().zip(ranks) {
            if !v {
                continue;
            }
            valid += 1;
            let r = usize::from(r);
            crate::invariant!(
                r < self.assoc() && !seen[r],
                "recency ranks of valid ways must be distinct stack positions"
            );
            seen[r] = true;
        }
        crate::invariant!(
            seen.iter().filter(|&&s| s).count() == valid && seen[..valid].iter().all(|&s| s),
            "recency ranks must cover 0..valid_count with no gaps"
        );
    }

    #[cfg(not(feature = "invariants"))]
    #[inline]
    fn check_rank_permutation(&self, _ranks: &[u8]) {}

    /// The valid way with the smallest recency stamp (the LRU way), or
    /// `None` if the set is empty.
    pub fn lru_way(&self) -> Option<usize> {
        let stamps = self.lru_stamp;
        self.valid_ways().min_by_key(move |&w| stamps[w])
    }

    /// The valid way with the smallest fill stamp (the FIFO victim), or
    /// `None` if the set is empty.
    pub fn oldest_fill_way(&self) -> Option<usize> {
        let stamps = self.fill_stamp;
        self.valid_ways().min_by_key(move |&w| stamps[w])
    }
}

/// One set's metadata in owned column form — the bridge from standalone
/// [`WayMeta`] records to a [`SetView`].
///
/// The tag store keeps its metadata as whole-cache columns and hands out
/// borrowed views directly; code that builds a set from scratch (unit
/// tests, property tests, benchmarks) assembles `WayMeta` values and goes
/// through this adapter instead.
#[derive(Clone, Debug)]
pub struct OwnedSet {
    valid: Vec<bool>,
    tag: Vec<u64>,
    lru_stamp: Vec<u64>,
    fill_stamp: Vec<u64>,
    cost_q: Vec<CostQ>,
    set_index: u32,
    geometry: Geometry,
}

impl OwnedSet {
    /// Transposes per-way records into columns.
    ///
    /// # Panics
    ///
    /// Panics (via [`SetView::new`] at view time) if `ways.len()` does not
    /// match the geometry's associativity.
    pub fn from_ways(ways: &[WayMeta], set_index: u32, geometry: Geometry) -> Self {
        OwnedSet {
            valid: ways.iter().map(|w| w.valid).collect(),
            tag: ways.iter().map(|w| w.tag).collect(),
            lru_stamp: ways.iter().map(|w| w.lru_stamp).collect(),
            fill_stamp: ways.iter().map(|w| w.fill_stamp).collect(),
            cost_q: ways.iter().map(|w| w.cost_q).collect(),
            set_index,
            geometry,
        }
    }

    /// A view borrowing this set's columns.
    pub fn view(&self) -> SetView<'_> {
        SetView::new(
            &self.valid,
            &self.tag,
            &self.lru_stamp,
            &self.fill_stamp,
            &self.cost_q,
            self.set_index,
            self.geometry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Geometry;

    fn meta(valid: bool, tag: u64, lru: u64, fill: u64) -> WayMeta {
        WayMeta {
            valid,
            tag,
            lru_stamp: lru,
            fill_stamp: fill,
            cost_q: 0,
            dirty: false,
        }
    }

    #[test]
    fn ranks_follow_stamps() {
        let g = Geometry::from_sets(4, 4, 64);
        let ways = [
            meta(true, 1, 50, 0),
            meta(true, 2, 10, 1),
            meta(true, 3, 99, 2),
            meta(true, 4, 30, 3),
        ];
        let set = OwnedSet::from_ways(&ways, 0, g);
        let v = set.view();
        assert_eq!(v.recency_ranks(), vec![2, 0, 3, 1]);
        assert_eq!(v.lru_way(), Some(1));
    }

    #[test]
    fn invalid_ways_are_skipped() {
        let g = Geometry::from_sets(4, 4, 64);
        let ways = [
            meta(true, 1, 50, 7),
            meta(false, 0, 0, 0),
            meta(true, 3, 99, 5),
            meta(false, 0, 0, 0),
        ];
        let set = OwnedSet::from_ways(&ways, 2, g);
        let v = set.view();
        assert_eq!(v.valid_count(), 2);
        assert_eq!(v.first_invalid(), Some(1));
        assert_eq!(v.recency_ranks(), vec![0, 0, 1, 0]);
        assert_eq!(v.oldest_fill_way(), Some(2));
        assert_eq!(v.valid_ways().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn line_of_reconstructs_address() {
        let g = Geometry::from_sets(8, 2, 64);
        let ways = [meta(true, 5, 0, 0), meta(false, 0, 0, 0)];
        let set = OwnedSet::from_ways(&ways, 3, g);
        let v = set.view();
        assert_eq!(v.line_of(0), Some(LineAddr(5 * 8 + 3)));
        assert_eq!(v.line_of(1), None);
    }

    #[test]
    #[should_panic(expected = "exactly one set")]
    fn wrong_width_panics() {
        let g = Geometry::from_sets(4, 4, 64);
        let ways = [meta(true, 1, 0, 0)];
        let _ = OwnedSet::from_ways(&ways, 0, g).view();
    }
}
