//! Read-only views of a cache set, handed to replacement engines.

use crate::addr::{Geometry, LineAddr};
use crate::meta::WayMeta;

/// A read-only view of one cache set at victim-selection time.
///
/// Engines use this to inspect the candidate ways: their validity, recency
/// stamps, `cost_q`, and the line addresses they hold. The view also knows
/// the cache [`Geometry`] so tags can be turned back into [`LineAddr`]s
/// (needed by Belady's OPT, which indexes its future-knowledge table by
/// line address).
#[derive(Clone, Copy, Debug)]
pub struct SetView<'a> {
    ways: &'a [WayMeta],
    set_index: u32,
    geometry: Geometry,
}

impl<'a> SetView<'a> {
    /// Creates a view over the ways of set `set_index`.
    ///
    /// # Panics
    ///
    /// Panics if `ways.len()` does not match the geometry's associativity.
    pub fn new(ways: &'a [WayMeta], set_index: u32, geometry: Geometry) -> Self {
        assert_eq!(
            ways.len(),
            usize::from(geometry.ways()),
            "set view must cover exactly one set"
        );
        SetView {
            ways,
            set_index,
            geometry,
        }
    }

    /// The ways of this set.
    #[inline]
    pub fn ways(&self) -> &'a [WayMeta] {
        self.ways
    }

    /// Number of ways (associativity).
    #[inline]
    pub fn assoc(&self) -> usize {
        self.ways.len()
    }

    /// Index of this set within the cache.
    #[inline]
    pub fn set_index(&self) -> u32 {
        self.set_index
    }

    /// The cache geometry this set belongs to.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The line address resident in `way`, or `None` if the way is invalid.
    #[inline]
    pub fn line_of(&self, way: usize) -> Option<LineAddr> {
        let w = &self.ways[way];
        w.valid
            .then(|| self.geometry.line_from_parts(w.tag, self.set_index))
    }

    /// Iterator over `(way_index, &WayMeta)` for valid ways only.
    pub fn valid_ways(&self) -> impl Iterator<Item = (usize, &'a WayMeta)> + '_ {
        self.ways.iter().enumerate().filter(|(_, w)| w.valid)
    }

    /// The first invalid way, if any.
    pub fn first_invalid(&self) -> Option<usize> {
        self.ways.iter().position(|w| !w.valid)
    }

    /// Number of valid ways.
    pub fn valid_count(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// LRU-stack positions of every way: `ranks[i]` is `R(i)` as defined in
    /// the paper (§5.1) — 0 for the least-recently-used valid way up to
    /// `valid_count() - 1` for the MRU way. Invalid ways get rank 0.
    ///
    /// Computed by ranking recency stamps; O(assoc²) but the associativities
    /// in play are ≤ 16, and profiling showed this is not a bottleneck.
    pub fn recency_ranks(&self) -> Vec<u8> {
        // The u8 rank caps the supported associativity at 256; the paper's
        // configurations top out at 16-way.
        assert!(self.ways.len() <= 256, "recency ranks are 8-bit");
        let mut ranks = vec![0u8; self.ways.len()];
        for (i, w) in self.ways.iter().enumerate() {
            if !w.valid {
                continue;
            }
            let mut rank = 0u8;
            for other in self.ways.iter() {
                if other.valid && other.lru_stamp < w.lru_stamp {
                    rank += 1;
                }
            }
            ranks[i] = rank;
        }
        self.check_rank_permutation(&ranks);
        ranks
    }

    /// Model check (under the `invariants` feature): the ranks of the valid
    /// ways form a permutation of `0..valid_count()` — i.e. the recency
    /// stack orders every resident block exactly once, the property Eq. 1's
    /// `R(i)` and the LIN policy's rank term rely on.
    #[cfg(feature = "invariants")]
    fn check_rank_permutation(&self, ranks: &[u8]) {
        let mut seen = vec![false; self.ways.len()];
        let mut valid = 0usize;
        for (w, &r) in self.ways.iter().zip(ranks) {
            if !w.valid {
                continue;
            }
            valid += 1;
            let r = usize::from(r);
            crate::invariant!(
                r < self.ways.len() && !seen[r],
                "recency ranks of valid ways must be distinct stack positions"
            );
            seen[r] = true;
        }
        crate::invariant!(
            seen.iter().filter(|&&s| s).count() == valid && seen[..valid].iter().all(|&s| s),
            "recency ranks must cover 0..valid_count with no gaps"
        );
    }

    #[cfg(not(feature = "invariants"))]
    #[inline]
    fn check_rank_permutation(&self, _ranks: &[u8]) {}

    /// The valid way with the smallest recency stamp (the LRU way), or
    /// `None` if the set is empty.
    pub fn lru_way(&self) -> Option<usize> {
        self.valid_ways()
            .min_by_key(|(_, w)| w.lru_stamp)
            .map(|(i, _)| i)
    }

    /// The valid way with the smallest fill stamp (the FIFO victim), or
    /// `None` if the set is empty.
    pub fn oldest_fill_way(&self) -> Option<usize> {
        self.valid_ways()
            .min_by_key(|(_, w)| w.fill_stamp)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Geometry;

    fn meta(valid: bool, tag: u64, lru: u64, fill: u64) -> WayMeta {
        WayMeta {
            valid,
            tag,
            lru_stamp: lru,
            fill_stamp: fill,
            cost_q: 0,
            dirty: false,
        }
    }

    #[test]
    fn ranks_follow_stamps() {
        let g = Geometry::from_sets(4, 4, 64);
        let ways = [
            meta(true, 1, 50, 0),
            meta(true, 2, 10, 1),
            meta(true, 3, 99, 2),
            meta(true, 4, 30, 3),
        ];
        let v = SetView::new(&ways, 0, g);
        assert_eq!(v.recency_ranks(), vec![2, 0, 3, 1]);
        assert_eq!(v.lru_way(), Some(1));
    }

    #[test]
    fn invalid_ways_are_skipped() {
        let g = Geometry::from_sets(4, 4, 64);
        let ways = [
            meta(true, 1, 50, 7),
            meta(false, 0, 0, 0),
            meta(true, 3, 99, 5),
            meta(false, 0, 0, 0),
        ];
        let v = SetView::new(&ways, 2, g);
        assert_eq!(v.valid_count(), 2);
        assert_eq!(v.first_invalid(), Some(1));
        assert_eq!(v.recency_ranks(), vec![0, 0, 1, 0]);
        assert_eq!(v.oldest_fill_way(), Some(2));
    }

    #[test]
    fn line_of_reconstructs_address() {
        let g = Geometry::from_sets(8, 2, 64);
        let ways = [meta(true, 5, 0, 0), meta(false, 0, 0, 0)];
        let v = SetView::new(&ways, 3, g);
        assert_eq!(v.line_of(0), Some(LineAddr(5 * 8 + 3)));
        assert_eq!(v.line_of(1), None);
    }

    #[test]
    #[should_panic(expected = "exactly one set")]
    fn wrong_width_panics() {
        let g = Geometry::from_sets(4, 4, 64);
        let ways = [meta(true, 1, 0, 0)];
        let _ = SetView::new(&ways, 0, g);
    }
}
