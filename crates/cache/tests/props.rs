#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property-based tests for the cache substrate.

use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::belady::BeladyEngine;
use mlpsim_cache::fifo::FifoEngine;
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::model::CacheModel;
use mlpsim_cache::random::RandomEngine;
use mlpsim_cache::tagstore::TagStore;
use proptest::prelude::*;

fn arb_lines(universe: u64, len: usize) -> impl Strategy<Value = Vec<LineAddr>> {
    prop::collection::vec((0..universe).prop_map(LineAddr), 1..len)
}

proptest! {
    /// Recency ranks always form a permutation of 0..valid_count.
    #[test]
    fn recency_ranks_are_a_permutation(lines in arb_lines(64, 200)) {
        let geom = Geometry::from_sets(4, 4, 64);
        let mut tags = TagStore::new(geom);
        for (i, &line) in lines.iter().enumerate() {
            match tags.probe(line) {
                Some(way) => tags.touch(line, way),
                None => {
                    let set = geom.set_index(line);
                    let way = tags.view(set).first_invalid().unwrap_or(i % 4);
                    tags.fill(line, way, false, 0);
                }
            }
        }
        for set in 0..geom.sets() {
            let view = tags.view(set);
            let mut ranks: Vec<u8> = view
                .valid_ways()
                .map(|w| view.recency_ranks()[w])
                .collect();
            ranks.sort_unstable();
            let expect: Vec<u8> = (0..ranks.len() as u8).collect();
            prop_assert_eq!(ranks, expect);
        }
    }

    /// A cache never reports more resident lines than its capacity, and
    /// hits + misses always equals accesses.
    #[test]
    fn occupancy_and_counts(lines in arb_lines(512, 400)) {
        let geom = Geometry::from_sets(8, 2, 64);
        let mut c = CacheModel::new(geom, Box::new(LruEngine::new()));
        for (i, &line) in lines.iter().enumerate() {
            c.access(line, i % 3 == 0, i as u64);
            prop_assert!(c.tags().resident_count() as u64 <= geom.lines());
        }
        prop_assert_eq!(c.stats().accesses(), lines.len() as u64);
    }

    /// Belady's OPT is miss-optimal against every other engine we ship.
    #[test]
    fn belady_dominates(lines in arb_lines(96, 300)) {
        let geom = Geometry::from_sets(4, 2, 64);
        let run = |engine: Box<dyn mlpsim_cache::policy::ReplacementEngine>| {
            let mut c = CacheModel::new(geom, engine);
            for (i, &line) in lines.iter().enumerate() {
                c.access(line, false, i as u64);
            }
            c.stats().misses
        };
        let opt = run(Box::new(BeladyEngine::from_accesses(lines.iter().copied())));
        prop_assert!(opt <= run(Box::new(LruEngine::new())));
        prop_assert!(opt <= run(Box::new(FifoEngine::new())));
        prop_assert!(opt <= run(Box::new(RandomEngine::new(1))));
    }

    /// An immediate re-access always hits (temporal locality is honored).
    #[test]
    fn re_access_hits(lines in arb_lines(1024, 200)) {
        let geom = Geometry::from_sets(16, 4, 64);
        let mut c = CacheModel::new(geom, Box::new(LruEngine::new()));
        for (i, &line) in lines.iter().enumerate() {
            c.access(line, false, 2 * i as u64);
            let r = c.access(line, false, 2 * i as u64 + 1);
            prop_assert!(r.hit);
        }
    }

    /// The LRU recency stack stays a permutation of the valid ways under
    /// arbitrary interleavings of fills, touches, and cost updates, and a
    /// touch always moves its way to MRU (the highest rank; rank 0 is the
    /// LRU block Eq. 1's `R(i)` wants to victimize first). Run with
    /// `--features invariants` this also routes every operation through
    /// the tag store's internal structural checks (unique tags, unique
    /// stamps, 3-bit cost_q).
    #[test]
    fn lru_stack_survives_arbitrary_ops(
        ops in prop::collection::vec((0u64..48, 0u8..3, 0u8..8), 1..250)
    ) {
        let geom = Geometry::from_sets(4, 4, 64);
        let mut tags = TagStore::new(geom);
        for &(raw, op, cost) in &ops {
            let line = LineAddr(raw);
            let set = geom.set_index(line);
            match (op, tags.probe(line)) {
                (0, Some(way)) => {
                    tags.touch(line, way);
                    let view = tags.view(set);
                    let mru = view.valid_ways().count() as u8 - 1;
                    prop_assert_eq!(view.recency_ranks()[way], mru,
                        "a touched way must become MRU");
                }
                (1, Some(_)) => {
                    tags.set_cost_q(line, cost);
                }
                (_, found) => {
                    let way = match found {
                        Some(w) => w,
                        None => tags.view(set).first_invalid().unwrap_or((raw % 4) as usize),
                    };
                    tags.fill(line, way, false, cost);
                    let view = tags.view(set);
                    let mru = view.valid_ways().count() as u8 - 1;
                    prop_assert_eq!(view.recency_ranks()[way], mru,
                        "a filled way must become MRU");
                }
            }
            let view = tags.view(set);
            let mut ranks: Vec<u8> = view
                .valid_ways()
                .map(|w| view.recency_ranks()[w])
                .collect();
            ranks.sort_unstable();
            let expect: Vec<u8> = (0..ranks.len() as u8).collect();
            prop_assert_eq!(ranks, expect, "ranks must be a permutation of 0..valid");
        }
    }

    /// Tag-store invariant: a filled line is resident exactly until it is
    /// evicted or invalidated, and cost updates stick.
    #[test]
    fn fill_probe_agree(ops in prop::collection::vec((0u64..64, 0u8..8), 1..300)) {
        let geom = Geometry::from_sets(4, 2, 64);
        let mut tags = TagStore::new(geom);
        for &(raw, cost) in &ops {
            let line = LineAddr(raw);
            let set = geom.set_index(line);
            if let Some(way) = tags.probe(line) {
                tags.touch(line, way);
                tags.set_cost_q(line, cost);
                prop_assert_eq!(tags.cost_q_of(line), Some(cost));
            } else {
                let way = tags.view(set).first_invalid().unwrap_or(0);
                tags.fill(line, way, false, cost);
                prop_assert!(tags.contains(line));
            }
        }
    }
}
