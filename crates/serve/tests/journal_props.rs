//! Property tests for the write-ahead journal (satellite: journal
//! coverage). Two invariants carry the crash-safety claim:
//!
//! 1. **Round-trip**: any legal op sequence, journaled then recovered,
//!    reproduces exactly the folded job states and the pending queue.
//! 2. **Truncation**: cutting the journal file at *any* byte offset —
//!    the on-disk image a `kill -9` mid-append can leave — still
//!    recovers, and every op whose line was fully written (newline
//!    included) survives the cut.

#![allow(clippy::unwrap_used)]

use mlpsim_serve::{JobStatus, Journal, JournalOp};
use mlpsim_telemetry::Json;
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mlpsim-jprops-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn spec() -> Json {
    Json::parse(r#"{"kind":"fig5","accesses":100,"seed":1,"jobs":1}"#).unwrap()
}

/// Decode a generated `(job, action)` pair stream into a legal op
/// sequence: a job's first appearance is its submit; later appearances
/// pick a transition legal for its current state (or are dropped).
fn legal_ops(choices: &[(u8, u8)]) -> Vec<JournalOp> {
    let mut status: Vec<Option<JobStatus>> = vec![None; 8];
    let mut ops = Vec::new();
    for &(job, action) in choices {
        let slot = (job % 8) as usize;
        let id = slot as u64 + 1;
        match status[slot].clone() {
            None => {
                ops.push(JournalOp::Submit { id, spec: spec() });
                status[slot] = Some(JobStatus::Queued);
            }
            Some(JobStatus::Queued) => match action % 2 {
                0 => {
                    ops.push(JournalOp::Start { id });
                    status[slot] = Some(JobStatus::Running);
                }
                _ => {
                    ops.push(JournalOp::Cancelled { id });
                    status[slot] = Some(JobStatus::Cancelled);
                }
            },
            Some(JobStatus::Running) => match action % 3 {
                0 => {
                    ops.push(JournalOp::Done { id });
                    status[slot] = Some(JobStatus::Done);
                }
                1 => {
                    ops.push(JournalOp::Cancelled { id });
                    status[slot] = Some(JobStatus::Cancelled);
                }
                _ => {
                    ops.push(JournalOp::Failed {
                        id,
                        error: format!("fault {action}"),
                    });
                    status[slot] = Some(JobStatus::Failed(format!("fault {action}")));
                }
            },
            Some(_) => {} // terminal: no further ops for this job
        }
    }
    ops
}

/// Fold an op list the way recovery should (the reference model).
fn expected_states(ops: &[JournalOp]) -> Vec<(u64, JobStatus)> {
    let mut out: Vec<(u64, JobStatus)> = Vec::new();
    for op in ops {
        match op {
            JournalOp::Submit { id, .. } => out.push((*id, JobStatus::Queued)),
            other => {
                let entry = out
                    .iter_mut()
                    .find(|(id, _)| *id == other.id())
                    .expect("legal_ops submits before transitioning");
                entry.1 = match other {
                    JournalOp::Submit { .. } => unreachable!("matched above"),
                    JournalOp::Start { .. } => JobStatus::Running,
                    JournalOp::Done { .. } => JobStatus::Done,
                    JournalOp::Cancelled { .. } => JobStatus::Cancelled,
                    JournalOp::Failed { error, .. } => JobStatus::Failed(error.clone()),
                };
            }
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Journal → recover reproduces the folded states and pending queue.
    #[test]
    fn recover_round_trips_any_legal_history(
        choices in prop::collection::vec((0u8..8, 0u8..6), 0..40)
    ) {
        let ops = legal_ops(&choices);
        let path = tmp("roundtrip");
        {
            let mut j = Journal::open(&path).unwrap();
            for op in &ops {
                j.append(op).unwrap();
            }
        }
        let recovered = Journal::recover(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        prop_assert!(!recovered.torn_tail, "clean file must not report a tear");
        let expected = expected_states(&ops);
        let got: Vec<(u64, JobStatus)> = recovered
            .jobs
            .iter()
            .map(|j| (j.id, j.status.clone()))
            .collect();
        prop_assert_eq!(&got, &expected);
        let pending: Vec<u64> = expected
            .iter()
            .filter(|(_, s)| !s.is_terminal())
            .map(|(id, _)| *id)
            .collect();
        prop_assert_eq!(recovered.pending(), pending);
        let max = expected.iter().map(|(id, _)| *id).max().unwrap_or(0);
        prop_assert_eq!(recovered.max_id, max);
    }

    /// Truncating the journal at any byte keeps every fully-written line.
    #[test]
    fn truncation_at_any_byte_keeps_complete_lines(
        choices in prop::collection::vec((0u8..8, 0u8..6), 1..24),
        cut_frac in 0.0f64..1.0
    ) {
        let ops = legal_ops(&choices);
        prop_assume!(!ops.is_empty());
        let path = tmp("truncate");
        {
            let mut j = Journal::open(&path).unwrap();
            for op in &ops {
                j.append(op).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&full[..cut]).unwrap();
        }

        // How many ops were fully written (line + newline) before the cut?
        let complete = full[..cut].iter().filter(|&&b| b == b'\n').count();
        let survivors = &ops[..complete];

        let recovered = Journal::recover(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        // The recovered fold must match the fold of the surviving prefix —
        // unless the torn tail happened to still parse (cut exactly at a
        // line end mid-JSON is impossible; a parseable unterminated tail is
        // accepted and flagged). Tolerate that by re-deriving from the
        // recovered flag.
        let expected = expected_states(survivors);
        let got: Vec<(u64, JobStatus)> = recovered
            .jobs
            .iter()
            .map(|j| (j.id, j.status.clone()))
            .collect();
        if !recovered.torn_tail || complete == ops.len() {
            prop_assert_eq!(&got, &expected, "cut at byte {} of {}", cut, full.len());
        } else {
            // A parseable torn tail may contribute exactly one extra op.
            let with_tail = expected_states(&ops[..complete + 1]);
            prop_assert!(
                got == expected || got == with_tail,
                "cut at byte {} of {}: got {:?}",
                cut,
                full.len(),
                got
            );
        }
    }
}

/// Deterministic kill-mid-write shape: a half-written terminal op must
/// not corrupt recovery, and the job reruns.
#[test]
fn half_written_done_line_reruns_the_job() {
    let path = tmp("halfdone");
    {
        let mut j = Journal::open(&path).unwrap();
        j.append(&JournalOp::Submit {
            id: 1,
            spec: spec(),
        })
        .unwrap();
        j.append(&JournalOp::Start { id: 1 }).unwrap();
    }
    let line = JournalOp::Done { id: 1 }.to_line();
    for cut in 1..line.len() {
        let mut img = std::fs::read(&path).unwrap();
        img.extend_from_slice(&line.as_bytes()[..cut]);
        let torn = tmp("halfdone-cut");
        std::fs::write(&torn, &img).unwrap();
        let recovered = Journal::recover(&torn).unwrap();
        let _ = std::fs::remove_file(&torn);
        assert_eq!(recovered.pending(), vec![1], "cut at {cut}");
    }
    let _ = std::fs::remove_file(&path);
}
