//! In-process end-to-end tests: a real listener on an ephemeral port, the
//! real client, the real journal on a temp directory. The CI smoke script
//! (`scripts/serve_smoke.sh`) covers the cross-process pieces (`kill -9`,
//! separate binaries); everything else lives here.

#![allow(clippy::unwrap_used)]

use mlpsim_serve::client;
use mlpsim_serve::{Server, ServerConfig};
use mlpsim_telemetry::{Event, Json};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mlpsim-smoke-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    url: String,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl TestServer {
    fn start(dir: &Path, queue_capacity: usize) -> TestServer {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: dir.to_path_buf(),
            queue_capacity,
            retry_after_secs: 7,
            read_timeout_ms: 2_000,
        };
        let server = Server::start(cfg).expect("server starts");
        let addr = server.local_addr().expect("bound address");
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer {
            url: format!("http://{addr}"),
            shutdown,
            thread,
        }
    }

    /// Stop accepting and wait for the drain to complete.
    fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread.join().expect("serve thread exits");
    }
}

#[test]
fn submitted_fig5_is_byte_identical_to_the_cli_run_path() {
    use mlpsim_experiments::figures::fig5_report;
    use mlpsim_experiments::runner::RunOptions;

    let dir = tmp_dir("fig5");
    let srv = TestServer::start(&dir, 8);

    let id =
        client::submit(&srv.url, r#"{"kind":"fig5","accesses":1200,"jobs":2}"#).expect("submitted");
    // Stream events live while the job runs.
    let mut streamed = Vec::new();
    let raw = client::watch(&srv.url, id, &mut |chunk| streamed.extend_from_slice(chunk))
        .expect("watched");
    assert_eq!(raw, streamed, "callback sees exactly the stream bytes");
    let lines: Vec<&str> = std::str::from_utf8(&raw)
        .expect("utf8 stream")
        .lines()
        .collect();
    assert!(!lines.is_empty(), "a running sweep emits telemetry");
    for line in &lines {
        Event::parse_line(line).unwrap_or_else(|e| panic!("bad event line {line:?}: {e}"));
    }
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"run_start\"")),
        "stream carries run brackets"
    );

    assert_eq!(client::wait(&srv.url, id).expect("terminal"), "done");
    let via_server = client::result(&srv.url, id).expect("result");
    let direct = fig5_report(&RunOptions {
        accesses: 1200,
        jobs: 2,
        ..RunOptions::default()
    });
    assert_eq!(via_server, direct, "server and CLI share one run path");

    // Health and metrics reflect the finished job.
    let health = client::request(&srv.url, "GET", "/healthz", None, None).expect("healthz");
    assert_eq!(health.status, 200);
    let metrics = client::request(&srv.url, "GET", "/metrics", None, None).expect("metrics");
    let text = metrics.text();
    assert!(text.contains("jobs_submitted_total 1"), "{text}");
    assert!(text.contains("jobs_completed_total 1"), "{text}");

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn estimate_endpoint_scores_without_simulating() {
    let dir = tmp_dir("estimate");
    let srv = TestServer::start(&dir, 8);

    let doc = client::estimate(
        &srv.url,
        r#"{"kind":"sweep","benches":["mcf","art"],"policies":["lru","lin(4)"],
            "accesses":2000,"jobs":2,"prune_margin":0.01}"#,
    )
    .expect("estimated");
    assert_eq!(
        doc.get("model").and_then(Json::as_bool),
        Some(true),
        "an estimate must label itself as a model, not a measurement"
    );
    let cells = match doc.get("cells") {
        Some(Json::Arr(cells)) => cells,
        other => panic!("expected cells array, got {other:?}"),
    };
    assert_eq!(cells.len(), 4);
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("cells").and_then(Json::as_u64), Some(4));

    // No job was admitted; the planner counters and latency histogram moved.
    let text = client::metrics(&srv.url).expect("metrics");
    assert!(!text.contains("mlpsim_jobs_submitted_total"), "{text}");
    assert!(text.contains("mlpsim_estimates_total 1"), "{text}");
    assert!(
        text.contains("mlpsim_planner_cells_scored_total 4"),
        "{text}"
    );
    assert!(text.contains("mlpsim_planner_cells_pruned_total"), "{text}");
    assert!(
        text.contains("mlpsim_estimate_duration_us_count 1"),
        "{text}"
    );

    // Garbage margins and bad specs report 400 with the field named.
    let bad = client::request(
        &srv.url,
        "POST",
        "/estimate",
        Some(br#"{"kind":"fig5","prune_margin":-1}"#),
        None,
    )
    .expect("responded");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("prune_margin"), "{}", bad.text());
    let err = client::estimate(&srv.url, r#"{"kind":"fig6"}"#).expect_err("bad kind");
    assert!(err.contains("unknown job kind"), "{err}");

    // Wrong method on the route is 405, not 404.
    let wrong = client::request(&srv.url, "GET", "/estimate", None, None).expect("responded");
    assert_eq!(wrong.status, 405);

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_cancels_a_long_job() {
    let dir = tmp_dir("deadline");
    let srv = TestServer::start(&dir, 8);

    let id = client::submit(
        &srv.url,
        r#"{"kind":"sweep","accesses":6000,"deadline_ms":1}"#,
    )
    .expect("submitted");
    assert_eq!(client::wait(&srv.url, id).expect("terminal"), "cancelled");
    assert!(
        client::result(&srv.url, id).is_err(),
        "no result for a cancelled job"
    );

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_hits_queued_and_running_jobs() {
    let dir = tmp_dir("cancel");
    let srv = TestServer::start(&dir, 8);

    // A slow job occupies the single scheduler; B sits queued behind it.
    let a = client::submit(&srv.url, r#"{"kind":"sweep","accesses":60000}"#).expect("a");
    let b = client::submit(&srv.url, r#"{"kind":"fig5","accesses":400}"#).expect("b");

    // Queued cancel is immediate.
    assert_eq!(client::cancel(&srv.url, b).expect("cancel b"), "cancelled");
    assert_eq!(client::wait(&srv.url, b).expect("terminal"), "cancelled");

    // Running cancel fires the token; the scheduler records the state.
    client::cancel(&srv.url, a).expect("cancel a");
    assert_eq!(client::wait(&srv.url, a).expect("terminal"), "cancelled");
    // Cancel is idempotent on terminal jobs.
    assert_eq!(client::cancel(&srv.url, a).expect("again"), "cancelled");

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_backpressures_with_retry_after() {
    let dir = tmp_dir("backpressure");
    let srv = TestServer::start(&dir, 0); // capacity 0: every submit bounces

    let resp = client::request(
        &srv.url,
        "POST",
        "/jobs",
        Some(br#"{"kind":"fig5","accesses":100}"#),
        None,
    )
    .expect("response");
    assert_eq!(resp.status, 429);
    assert_eq!(resp.header("retry-after"), Some("7"));
    assert!(resp.text().contains("queue full"), "{}", resp.text());

    // Bad specs are 400 with the field named, not 429.
    let resp = client::request(&srv.url, "POST", "/jobs", Some(b"{}"), None).expect("response");
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("kind"), "{}", resp.text());

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_preserves_queued_jobs_and_restart_resumes_them() {
    let dir = tmp_dir("resume");

    // --- First server lifetime -------------------------------------------
    let srv = TestServer::start(&dir, 16);
    let fast = client::submit(&srv.url, r#"{"kind":"fig5","accesses":400}"#).expect("fast");
    assert_eq!(client::wait(&srv.url, fast).expect("terminal"), "done");
    let fast_result = client::result(&srv.url, fast).expect("fast result");

    // One job that will be running at drain time, one still queued.
    let running = client::submit(&srv.url, r#"{"kind":"sweep","accesses":4000}"#).expect("b");
    let queued = client::submit(
        &srv.url,
        r#"{"kind":"sweep","benches":["mcf"],"policies":["lru"],"accesses":500}"#,
    )
    .expect("c");

    client::drain(&srv.url).expect("drain accepted");
    srv.stop(); // returns once the in-flight job is finished and journaled

    // --- Second server lifetime, same data dir ---------------------------
    let srv = TestServer::start(&dir, 16);

    // No job lost: all three still known.
    let list = client::request(&srv.url, "GET", "/jobs", None, None)
        .expect("list")
        .json()
        .expect("json");
    let Json::Arr(jobs) = list else {
        panic!("list is an array")
    };
    assert_eq!(jobs.len(), 3, "restart preserves every journaled job");

    // The completed job's result is re-served from disk, byte-identical.
    assert_eq!(
        client::result(&srv.url, fast).expect("re-served"),
        fast_result
    );
    // Its event stream is finished (live telemetry died with process one).
    let raw = client::watch(&srv.url, fast, &mut |_| {}).expect("finished stream");
    assert!(raw.is_empty(), "terminal recovered job has no live events");

    // The queued job (and the drained-or-finished one) complete.
    assert_eq!(client::wait(&srv.url, running).expect("terminal"), "done");
    assert_eq!(client::wait(&srv.url, queued).expect("terminal"), "done");
    assert!(client::result(&srv.url, queued)
        .expect("result")
        .contains("Sweep"));

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_traceparent_propagates_to_the_flight_recorder() {
    let dir = tmp_dir("traces");
    let srv = TestServer::start(&dir, 8);

    let tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
    let (id, trace_id) = client::submit_traced(
        &srv.url,
        r#"{"kind":"fig5","accesses":800,"jobs":1}"#,
        Some(tp),
    )
    .expect("submitted");
    assert_eq!(
        trace_id, "0af7651916cd43dd8448eb211c80319c",
        "the 201 echoes the inherited trace id"
    );
    assert_eq!(client::wait(&srv.url, id).expect("terminal"), "done");

    // The trace completes just after the job status flips; poll briefly.
    let doc = (0..50)
        .find_map(|_| {
            client::trace(&srv.url, &trace_id, false).ok().or_else(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                None
            })
        })
        .expect("trace retained in the flight recorder");

    assert_eq!(
        doc.get("trace_id").and_then(Json::as_str),
        Some(trace_id.as_str())
    );
    // An adopted trace closes at the job's terminal state (Done -> 200),
    // not at the 201 the submission handler wrote.
    assert_eq!(doc.get("status").and_then(Json::as_u64), Some(200));
    let Some(Json::Arr(spans)) = doc.get("spans") else {
        panic!("trace carries a spans array: {doc:?}");
    };
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for want in [
        "request",
        "parse",
        "admission",
        "journal_append",
        "queue_wait",
        "run",
    ] {
        assert!(
            names.contains(&want),
            "span {want:?} missing from {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("run(cell=")),
        "per-cell run spans present: {names:?}"
    );
    // Reconciliation: the span tree explains the root's wall time; the
    // residue the server computed is present and sane.
    let residue = doc
        .get("residue_pct")
        .and_then(|r| r.as_f64())
        .expect("residue_pct present");
    assert!(
        (0.0..=100.0).contains(&residue),
        "residue {residue}% out of range"
    );
    let root_dur = doc.get("dur_us").and_then(Json::as_u64).expect("dur_us");
    for s in spans {
        let d = s.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
        assert!(
            d <= root_dur + 1,
            "span {:?} ({d} us) outlives the request ({root_dur} us)",
            s.get("name")
        );
    }

    // The Chrome export is a valid trace-event document for the same id.
    let chrome = client::trace(&srv.url, &trace_id, true).expect("chrome export");
    let Some(Json::Arr(events)) = chrome.get("traceEvents") else {
        panic!("chrome export has traceEvents: {chrome:?}");
    };
    assert!(
        events.len() > spans.len(),
        "one X event per span plus metadata"
    );

    // The listing includes the trace; unknown ids 404.
    let all = client::traces(&srv.url).expect("listing");
    let Json::Arr(all) = all else {
        panic!("listing is an array")
    };
    assert!(all
        .iter()
        .any(|t| t.get("trace_id").and_then(Json::as_str) == Some(trace_id.as_str())));
    let missing = client::trace(&srv.url, "00000000000000000000000000000001", false);
    assert!(missing.is_err(), "unknown trace id must 404");

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
