//! End-to-end `/metrics` correctness: a real server, a real scrape, and
//! the exposition body parsed line by line the way a Prometheus scraper
//! would — every histogram's buckets cumulative and nondecreasing, the
//! `+Inf` bucket equal to `_count`, and the `_sum`/`_count` pair present
//! for every `# TYPE ... histogram` family.

#![allow(clippy::unwrap_used)]

use mlpsim_serve::client;
use mlpsim_serve::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mlpsim-metrics-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    url: String,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl TestServer {
    fn start(dir: &Path) -> TestServer {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: dir.to_path_buf(),
            queue_capacity: 8,
            retry_after_secs: 7,
            read_timeout_ms: 2_000,
        };
        let server = Server::start(cfg).expect("server starts");
        let addr = server.local_addr().expect("bound address");
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer {
            url: format!("http://{addr}"),
            shutdown,
            thread,
        }
    }

    fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread.join().expect("serve thread exits");
    }
}

/// One parsed histogram family.
#[derive(Debug, Default)]
struct Family {
    /// `(le, cumulative)` in exposition order; `le == f64::INFINITY` for
    /// the `+Inf` bucket.
    buckets: Vec<(f64, u64)>,
    sum: Option<u64>,
    count: Option<u64>,
}

/// Parse the exposition body: `# TYPE name histogram` declarations plus
/// every `name_bucket{le="..."}` / `name_sum` / `name_count` sample.
fn parse_histograms(text: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some("histogram")) = (it.next(), it.next()) else {
                continue;
            };
            families.entry(name.to_string()).or_default();
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let value: u64 = match value.parse() {
            Ok(v) => v,
            Err(_) => continue, // gauges may be floats; histograms are integral
        };
        if let Some((name, label)) = sample.split_once("_bucket{le=\"") {
            let family = name.to_string();
            let le_raw = label.strip_suffix("\"}").expect("closed le label");
            let le = if le_raw == "+Inf" {
                f64::INFINITY
            } else {
                le_raw.parse().expect("numeric le")
            };
            families
                .entry(family)
                .or_default()
                .buckets
                .push((le, value));
        } else if let Some(name) = sample.strip_suffix("_sum") {
            families.entry(name.to_string()).or_default().sum = Some(value);
        } else if let Some(name) = sample.strip_suffix("_count") {
            families.entry(name.to_string()).or_default().count = Some(value);
        }
    }
    families
}

#[test]
fn scraped_metrics_are_valid_prometheus_exposition() {
    let dir = tmp_dir("scrape");
    let srv = TestServer::start(&dir);

    // Run one real job so the wall-time and queue-wait histograms have a
    // sample, and stream its events so the backlog histogram does too.
    let id = client::submit(&srv.url, r#"{"kind":"fig5","accesses":1200}"#).expect("submitted");
    let mut streamed = Vec::new();
    client::watch(&srv.url, id, &mut |chunk| {
        streamed.extend_from_slice(chunk);
    })
    .expect("watched");
    assert_eq!(client::wait(&srv.url, id).expect("waited"), "done");

    let resp = client::request(&srv.url, "GET", "/metrics", None, None).expect("scraped");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "exposition content type"
    );
    let text = resp.text();

    // Counters and gauges carry the shared prefix.
    assert!(text.contains("mlpsim_jobs_submitted_total 1"), "{text}");
    assert!(text.contains("mlpsim_jobs_completed_total 1"), "{text}");
    assert!(text.contains("mlpsim_queue_depth 0"), "{text}");
    assert!(text.contains("mlpsim_build_info{version=\""), "{text}");

    let families = parse_histograms(&text);
    for family in [
        "mlpsim_job_wall_time_ms",
        "mlpsim_job_queue_wait_ms",
        "mlpsim_http_request_duration_us",
        "mlpsim_event_stream_backlog_lines",
    ] {
        let f = families.get(family).unwrap_or_else(|| {
            panic!("histogram family {family} missing from:\n{text}");
        });
        let count = f.count.unwrap_or_else(|| panic!("{family}_count missing"));
        assert!(f.sum.is_some(), "{family}_sum missing");
        assert!(!f.buckets.is_empty(), "{family} has no buckets");

        // Buckets arrive in increasing le order, cumulative and
        // nondecreasing, closing at +Inf == _count.
        let mut last_le = 0.0f64;
        let mut last_cum = 0u64;
        for &(le, cum) in &f.buckets {
            assert!(le > last_le, "{family}: le {le} out of order");
            assert!(
                cum >= last_cum,
                "{family}: cumulative count decreased at le={le}"
            );
            last_le = le;
            last_cum = cum;
        }
        let (inf_le, inf_cum) = *f.buckets.last().expect("nonempty");
        assert!(inf_le.is_infinite(), "{family}: last bucket must be +Inf");
        assert_eq!(inf_cum, count, "{family}: +Inf bucket != _count");
    }

    // The job actually ran, so the job histograms hold a sample each and
    // the request histogram saw every call this test made.
    assert_eq!(families["mlpsim_job_wall_time_ms"].count, Some(1));
    assert_eq!(families["mlpsim_job_queue_wait_ms"].count, Some(1));
    assert!(families["mlpsim_http_request_duration_us"].count.unwrap() >= 2);
    assert!(families["mlpsim_event_stream_backlog_lines"].count.unwrap() >= 1);

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_metrics_helper_returns_the_exposition_body() {
    let dir = tmp_dir("helper");
    let srv = TestServer::start(&dir);
    let text = client::metrics(&srv.url).expect("metrics helper");
    assert!(
        text.contains("# TYPE mlpsim_http_requests_total counter"),
        "{text}"
    );
    assert!(text.contains("mlpsim_build_info{version=\""), "{text}");
    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
