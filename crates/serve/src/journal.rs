//! The write-ahead job journal: an append-only NDJSON file that makes the
//! server's queue state crash-safe without mid-run snapshots.
//!
//! Every state transition is one line, appended and flushed *before* the
//! transition takes effect (write-ahead). A `kill -9` can therefore lose
//! at most the line being written at that instant — recovery tolerates
//! exactly one torn trailing line and rebuilds the queue from everything
//! before it:
//!
//! ```text
//! {"op":"submit","id":1,"spec":{"kind":"fig5","accesses":4000,...}}
//! {"op":"start","id":1}
//! {"op":"done","id":1}
//! {"op":"cancelled","id":2}
//! {"op":"failed","id":3,"error":"..."}
//! ```
//!
//! Folding rule: the *last* op for an id wins. `submit` without a
//! terminal op → the job is re-enqueued on restart; `start` without a
//! terminal op → the run died with the process and is re-enqueued too
//! (every job is a deterministic simulation, so a rerun reproduces the
//! lost result bit-for-bit). `done` results live in side files
//! (`job-<id>.result.txt`); a `done` whose side file vanished is demoted
//! back to queued by the server.

use mlpsim_telemetry::Json;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One journaled state transition.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalOp {
    /// A job was admitted with this spec (canonical JSON form).
    Submit { id: u64, spec: Json },
    /// The scheduler started executing the job.
    Start { id: u64 },
    /// The job finished; its result is in the side file.
    Done { id: u64 },
    /// The job was cancelled (by request or deadline).
    Cancelled { id: u64 },
    /// The job failed with this error.
    Failed { id: u64, error: String },
}

impl JournalOp {
    /// The job this op concerns.
    pub fn id(&self) -> u64 {
        match *self {
            JournalOp::Submit { id, .. }
            | JournalOp::Start { id }
            | JournalOp::Done { id }
            | JournalOp::Cancelled { id }
            | JournalOp::Failed { id, .. } => id,
        }
    }

    /// The wire name of this op (also used as a span tag).
    pub fn name(&self) -> &'static str {
        match self {
            JournalOp::Submit { .. } => "submit",
            JournalOp::Start { .. } => "start",
            JournalOp::Done { .. } => "done",
            JournalOp::Cancelled { .. } => "cancelled",
            JournalOp::Failed { .. } => "failed",
        }
    }

    /// Encode as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let pairs: Vec<(String, Json)> = match self {
            JournalOp::Submit { id, spec } => vec![
                ("op".into(), Json::Str("submit".into())),
                ("id".into(), Json::Num(*id as f64)),
                ("spec".into(), spec.clone()),
            ],
            JournalOp::Start { id } => vec![
                ("op".into(), Json::Str("start".into())),
                ("id".into(), Json::Num(*id as f64)),
            ],
            JournalOp::Done { id } => vec![
                ("op".into(), Json::Str("done".into())),
                ("id".into(), Json::Num(*id as f64)),
            ],
            JournalOp::Cancelled { id } => vec![
                ("op".into(), Json::Str("cancelled".into())),
                ("id".into(), Json::Num(*id as f64)),
            ],
            JournalOp::Failed { id, error } => vec![
                ("op".into(), Json::Str("failed".into())),
                ("id".into(), Json::Num(*id as f64)),
                ("error".into(), Json::Str(error.clone())),
            ],
        };
        Json::Obj(pairs).to_string_compact()
    }

    /// Parse one line.
    ///
    /// # Errors
    ///
    /// A message naming what is wrong with the line.
    pub fn parse_line(line: &str) -> Result<JournalOp, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("journal line lacks \"op\"")?;
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("journal line lacks numeric \"id\"")?;
        match op {
            "submit" => {
                let spec = v.get("spec").ok_or("submit line lacks \"spec\"")?;
                Ok(JournalOp::Submit {
                    id,
                    spec: spec.clone(),
                })
            }
            "start" => Ok(JournalOp::Start { id }),
            "done" => Ok(JournalOp::Done { id }),
            "cancelled" => Ok(JournalOp::Cancelled { id }),
            "failed" => Ok(JournalOp::Failed {
                id,
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            other => Err(format!("unknown journal op {other:?}")),
        }
    }
}

/// A job's status as reconstructed from (or tracked alongside) the
/// journal.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for the scheduler.
    Queued,
    /// Executing now (on recovery: died mid-run, will be re-enqueued).
    Running,
    /// Finished; result in the side file.
    Done,
    /// Cancelled by request or deadline.
    Cancelled,
    /// Failed with this message.
    Failed(String),
}

impl JobStatus {
    /// Is this a terminal state (nothing left to execute)?
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }

    /// The wire name used in status responses and the client.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One recovered job: id, canonical spec JSON, folded status.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredJob {
    pub id: u64,
    pub spec: Json,
    pub status: JobStatus,
}

/// The result of replaying a journal file.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Jobs in id (= submission) order.
    pub jobs: Vec<RecoveredJob>,
    /// Highest id seen (0 when the journal is empty).
    pub max_id: u64,
    /// Whether a torn trailing line was discarded.
    pub torn_tail: bool,
}

impl Recovered {
    /// Ids that still need to run (queued or died-mid-run), in id order —
    /// the queue a restarted server re-enqueues.
    pub fn pending(&self) -> Vec<u64> {
        self.jobs
            .iter()
            .filter(|j| !j.status.is_terminal())
            .map(|j| j.id)
            .collect()
    }
}

/// Append-only journal handle.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Open (creating if absent) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one op. The line and its newline go down in a single
    /// `write_all`, so a crash of this *process* can only tear the final
    /// line, never interleave two — and a completed `write_all` survives
    /// `kill -9` (the bytes are in the page cache; only an OS crash needs
    /// fsync, which this journal deliberately skips for throughput).
    ///
    /// # Errors
    ///
    /// Propagates write failures; the server fails the transition rather
    /// than proceeding unjournaled.
    pub fn append(&mut self, op: &JournalOp) -> std::io::Result<()> {
        let mut line = op.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())
    }

    /// [`Journal::append`] recorded as a `journal_append` span on `trace`
    /// (when one is in scope): the write-ahead append is a real, visible
    /// phase of every traced request — the disk write sits between
    /// admission and the queue, and a slow one shows up in the span tree
    /// instead of vanishing into "queue wait".
    ///
    /// # Errors
    ///
    /// See [`Journal::append`]; the span records either way (a failed
    /// append is tagged, and the failure still took the time it took).
    pub fn append_traced(
        &mut self,
        op: &JournalOp,
        trace: Option<&mlpsim_telemetry::TraceCtx>,
    ) -> std::io::Result<()> {
        let Some(ctx) = trace else {
            return self.append(op);
        };
        let t0 = mlpsim_telemetry::prof::now_ns();
        let out = self.append(op);
        let mut tags = vec![("op".to_string(), op.name().to_string())];
        if out.is_err() {
            tags.push(("failed".to_string(), "true".to_string()));
        }
        ctx.record_span(
            "journal_append",
            ctx.parent,
            t0,
            mlpsim_telemetry::prof::now_ns(),
            tags,
        );
        out
    }

    /// Replay the journal at `path`. A missing file is an empty journal.
    /// The final line may be torn (no newline, or unparseable) — it is
    /// discarded and flagged. A malformed line anywhere *else* is
    /// corruption and errors out: better to refuse to serve than to
    /// silently drop jobs.
    ///
    /// # Errors
    ///
    /// I/O failures and non-trailing corruption.
    pub fn recover(path: impl AsRef<Path>) -> Result<Recovered, String> {
        let path = path.as_ref();
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)
                    .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Recovered::default());
            }
            Err(e) => return Err(format!("cannot open journal {}: {e}", path.display())),
        }
        let text = String::from_utf8_lossy(&raw);
        let mut recovered = Recovered::default();
        let mut jobs: Vec<RecoveredJob> = Vec::new();
        let lines: Vec<&str> = text.split('\n').collect();
        let last_idx = lines.len().saturating_sub(1);
        for (idx, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            // A line is "complete" iff the file continued past it (split
            // produced a later element). The final element only exists
            // when the file did NOT end in '\n' — i.e. a torn write.
            let is_tail = idx == last_idx;
            match JournalOp::parse_line(line) {
                Ok(op) => {
                    if is_tail {
                        // Parsed but unterminated: the write was cut
                        // exactly at the line end, or the JSON happens to
                        // be a valid prefix. The op is self-consistent, so
                        // accept it — but still flag the tear.
                        recovered.torn_tail = true;
                    }
                    apply_op(&mut jobs, op, idx + 1)?;
                }
                Err(e) if is_tail => {
                    recovered.torn_tail = true;
                    let _ = e; // torn tail: expected after kill -9
                }
                Err(e) => {
                    return Err(format!(
                        "journal {} corrupt at line {}: {e}",
                        path.display(),
                        idx + 1
                    ));
                }
            }
        }
        recovered.max_id = jobs.iter().map(|j| j.id).max().unwrap_or(0);
        jobs.sort_by_key(|j| j.id);
        recovered.jobs = jobs;
        Ok(recovered)
    }
}

/// Fold one op into the job list (last op per id wins).
fn apply_op(jobs: &mut Vec<RecoveredJob>, op: JournalOp, line_no: usize) -> Result<(), String> {
    let id = op.id();
    match op {
        JournalOp::Submit { spec, .. } => {
            if jobs.iter().any(|j| j.id == id) {
                return Err(format!("line {line_no}: duplicate submit for job {id}"));
            }
            jobs.push(RecoveredJob {
                id,
                spec,
                status: JobStatus::Queued,
            });
            Ok(())
        }
        other => {
            let Some(job) = jobs.iter_mut().find(|j| j.id == id) else {
                return Err(format!("line {line_no}: op for job {id} before its submit"));
            };
            job.status = match other {
                JournalOp::Submit { .. } => unreachable!("handled above"),
                JournalOp::Start { .. } => JobStatus::Running,
                JournalOp::Done { .. } => JobStatus::Done,
                JournalOp::Cancelled { .. } => JobStatus::Cancelled,
                JournalOp::Failed { error, .. } => JobStatus::Failed(error),
            };
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlpsim-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn ops_round_trip() {
        let spec = Json::parse(r#"{"kind":"fig5","accesses":100}"#).unwrap();
        for op in [
            JournalOp::Submit { id: 3, spec },
            JournalOp::Start { id: 3 },
            JournalOp::Done { id: 3 },
            JournalOp::Cancelled { id: 4 },
            JournalOp::Failed {
                id: 5,
                error: "queue exploded".into(),
            },
        ] {
            let back = JournalOp::parse_line(&op.to_line()).unwrap();
            assert_eq!(op, back);
        }
    }

    #[test]
    fn missing_journal_is_empty() {
        let r = Journal::recover(tmp("nonexistent")).unwrap();
        assert!(r.jobs.is_empty());
        assert_eq!(r.max_id, 0);
        assert!(!r.torn_tail);
    }

    #[test]
    fn append_then_recover_folds_states() {
        let path = tmp("fold");
        let _ = std::fs::remove_file(&path);
        let spec = Json::parse(r#"{"kind":"fig5"}"#).unwrap();
        {
            let mut j = Journal::open(&path).unwrap();
            for id in 1..=4 {
                j.append(&JournalOp::Submit {
                    id,
                    spec: spec.clone(),
                })
                .unwrap();
            }
            j.append(&JournalOp::Start { id: 1 }).unwrap();
            j.append(&JournalOp::Done { id: 1 }).unwrap();
            j.append(&JournalOp::Start { id: 2 }).unwrap();
            j.append(&JournalOp::Cancelled { id: 3 }).unwrap();
        }
        let r = Journal::recover(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(r.max_id, 4);
        assert!(!r.torn_tail);
        let statuses: Vec<_> = r.jobs.iter().map(|j| j.status.clone()).collect();
        assert_eq!(
            statuses,
            vec![
                JobStatus::Done,
                JobStatus::Running, // died mid-run
                JobStatus::Cancelled,
                JobStatus::Queued,
            ]
        );
        // Pending = the died-mid-run job and the never-started one.
        assert_eq!(r.pending(), vec![2, 4]);
    }

    #[test]
    fn torn_tail_is_dropped_and_flagged() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let spec = Json::parse(r#"{"kind":"fig5"}"#).unwrap();
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&JournalOp::Submit { id: 1, spec }).unwrap();
            j.append(&JournalOp::Start { id: 1 }).unwrap();
        }
        // Simulate kill -9 mid-append: half a "done" line, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"op\":\"done\",\"i").unwrap();
        }
        let r = Journal::recover(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(r.torn_tail);
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].status, JobStatus::Running, "torn done dropped");
        assert_eq!(r.pending(), vec![1]);
    }

    #[test]
    fn mid_file_corruption_refuses_to_serve() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "garbage line\n{\"op\":\"start\",\"id\":1}\n").unwrap();
        let err = Journal::recover(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn op_before_submit_is_corruption() {
        let path = tmp("early-op");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\"op\":\"start\",\"id\":9}\n").unwrap();
        let err = Journal::recover(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.contains("before its submit"), "{err}");
    }
}
