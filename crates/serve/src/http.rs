//! Minimal HTTP/1.1 over `std::net`: request parsing, response writing,
//! and a chunked-transfer writer for the event stream.
//!
//! Hand-rolled (like the JSON layer in `mlpsim-telemetry`) because the
//! workspace builds offline with vendored deps only. Deliberately small:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies only on requests, responses either sized or chunked. Every
//! accepted socket carries a read timeout — lint rule D6 enforces that a
//! blocking read on the accept path cannot hang the server on a stalled
//! client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on request bodies (a job spec is well under 1 KiB; a
/// megabyte leaves room for very long bench/policy lists).
pub const MAX_BODY: usize = 1 << 20;

/// Upper bound on the header section.
const MAX_HEAD: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as received.
    pub method: String,
    /// Path component (query string, if any, is split off and discarded).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path split on `/`, empty segments dropped: `/jobs/3/events` →
    /// `["jobs", "3", "events"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket timed out or closed before a full request arrived.
    Io(io::Error),
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`].
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request body too large"),
        }
    }
}

/// Read one request off an accepted socket. The caller must already have
/// armed `set_read_timeout` (rule D6); a stalled client surfaces as
/// [`HttpError::Io`] rather than a hung accept loop.
///
/// # Errors
///
/// [`HttpError`] on timeout, malformed framing, or an oversized body.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(HttpError::Io)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line lacks a target".into()))?;
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).map_err(HttpError::Io)?;
        head_bytes += h.len();
        if head_bytes > MAX_HEAD {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::Malformed(format!("header without colon: {h:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete sized response (`Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures; the caller drops the connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Streaming chunked-transfer response for `GET /jobs/:id/events`.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the response head and switch the connection to chunked mode.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Send one chunk (no-op for empty payloads — an empty chunk would
    /// terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the client went away).
    pub fn chunk(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", payload.len())?;
        self.stream.write_all(payload)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream cleanly.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Arm the D6-mandated read timeout on an accepted socket.
///
/// # Errors
///
/// Propagates `setsockopt` failures.
pub fn arm_read_timeout(stream: &TcpStream, millis: u64) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(millis.max(1))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        arm_read_timeout(&stream, 2_000).unwrap();
        let req = read_request(&mut stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"kind\":\"fig5\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.segments(), vec!["jobs"]);
        assert_eq!(req.body, b"{\"kind\":\"fig5\"}");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn strips_query_string() {
        let req = roundtrip(b"GET /jobs/7/events?from=0 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["jobs", "7", "events"]);
    }

    #[test]
    fn rejects_bad_content_length() {
        assert!(matches!(
            roundtrip(b"POST /jobs HTTP/1.1\r\nContent-Length: lots\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn stalled_client_times_out_instead_of_hanging() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Half a request, then silence.
            s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Le").unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().unwrap();
        arm_read_timeout(&stream, 50).unwrap();
        let started = std::time::Instant::now();
        let err = read_request(&mut stream);
        assert!(matches!(err, Err(HttpError::Io(_))), "{err:?}");
        assert!(started.elapsed() < Duration::from_secs(2));
        client.join().unwrap();
    }
}
