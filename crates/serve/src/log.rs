//! Structured one-line JSON logging for the serve tier.
//!
//! Every line the server writes to stderr goes through this module, so
//! each one is machine-parseable and carries the trace id of the request
//! it belongs to (lint rule D11 enforces this: no bare `eprintln!` in the
//! serve request path outside this file). Two shapes:
//!
//! - [`access`]: one line per completed request *or* job — `kind:
//!   "access"`, the trace id, request name, status, duration, and
//!   whatever phase durations the caller extracted from the trace
//!   (`queue_wait_ms`, `run_ms`, ...).
//! - [`server_event`]: operational warnings (journal append failures,
//!   accept errors, recovery notes) — `kind: "server"`, an event tag,
//!   the message, and the trace id when one is in scope.
//!
//! Timestamps are [`prof::now_ns`] readings — the same timebase the spans
//! in `/debug/traces` use, so a log line correlates with its trace by
//! simple subtraction.

use mlpsim_telemetry::prof;
use mlpsim_telemetry::Json;

/// Emit one access-log line: a completed HTTP exchange or a finished job.
/// `extra` carries numeric phase durations (e.g. `("queue_wait_ms", 12.0)`).
pub fn access(trace_id: &str, name: &str, status: u16, dur_us: u64, extra: &[(&str, f64)]) {
    let mut pairs: Vec<(String, Json)> = vec![
        ("ts_ns".into(), Json::Num(prof::now_ns() as f64)),
        ("kind".into(), Json::Str("access".into())),
        ("trace_id".into(), Json::Str(trace_id.to_string())),
        ("req".into(), Json::Str(name.to_string())),
        ("status".into(), Json::Num(f64::from(status))),
        ("dur_us".into(), Json::Num(dur_us as f64)),
    ];
    for (k, v) in extra {
        pairs.push(((*k).to_string(), Json::Num(*v)));
    }
    emit(&Json::Obj(pairs));
}

/// Emit one operational line: `event` is a stable machine tag
/// (`journal_append_failed`, `accept_failed`, `journal_recovered`, ...),
/// `msg` the human detail, `trace_id` the owning trace when one exists.
pub fn server_event(trace_id: Option<&str>, event: &str, msg: &str) {
    let mut pairs: Vec<(String, Json)> = vec![
        ("ts_ns".into(), Json::Num(prof::now_ns() as f64)),
        ("kind".into(), Json::Str("server".into())),
        ("event".into(), Json::Str(event.to_string())),
        ("msg".into(), Json::Str(msg.to_string())),
    ];
    if let Some(id) = trace_id {
        pairs.push(("trace_id".into(), Json::Str(id.to_string())));
    }
    emit(&Json::Obj(pairs));
}

/// The single stderr write site for the serve tier.
fn emit(doc: &Json) {
    eprintln!("{}", doc.to_string_compact());
}

#[cfg(test)]
mod tests {
    // The helpers write to stderr, which tests cannot capture portably
    // without process spawning; the serve smoke script greps the real
    // server's log for access lines carrying an injected trace id. Here
    // we only pin that the document shapes stay parseable JSON.
    use mlpsim_telemetry::Json;

    #[test]
    fn access_document_shape_is_stable_json() {
        let doc = Json::Obj(vec![
            ("ts_ns".into(), Json::Num(1.0)),
            ("kind".into(), Json::Str("access".into())),
            ("trace_id".into(), Json::Str("00ff".into())),
            ("req".into(), Json::Str("POST /jobs".into())),
            ("status".into(), Json::Num(201.0)),
            ("dur_us".into(), Json::Num(42.0)),
            ("queue_wait_ms".into(), Json::Num(3.0)),
        ]);
        let line = doc.to_string_compact();
        let back = Json::parse(&line).expect("one parseable line");
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("access"));
        assert_eq!(back.get("trace_id").and_then(Json::as_str), Some("00ff"));
    }
}
