//! Prometheus text-exposition rendering for the server's metrics.
//!
//! The registry's counters and gauges plus four operational histograms
//! are rendered in [exposition format 0.0.4] — `# TYPE` lines, cumulative
//! `_bucket{le="..."}` series ending in `+Inf`, and the `_sum`/`_count`
//! pair — so a stock Prometheus scraper (or `curl | grep`) can consume
//! `GET /metrics` directly. Everything is name-prefixed `mlpsim_` to keep
//! the exported namespace collision-free.
//!
//! The histogram buckets reuse [`EpisodeHistogram`]'s power-of-two axis:
//! episode lengths there, milliseconds / microseconds / line counts here.
//! Those buckets are half-open `[lo, hi)` while Prometheus `le` is `≤`,
//! so a value landing exactly on a boundary is attributed one bucket up —
//! a half-ulp of pessimism that bucket-grade latency data cannot resolve
//! anyway.
//!
//! [exposition format 0.0.4]: https://prometheus.io/docs/instrumenting/exposition_formats/

use mlpsim_analysis::ephist::{EpisodeHistogram, EPISODE_BUCKETS};
use mlpsim_telemetry::Registry;

/// The Content-Type a 0.0.4 exposition body must be served under.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped inside the quotes.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// The operational histograms the server maintains. All land on the
/// shared power-of-two axis; the unit lives in the metric name. The
/// `request_phase_*` trio mirrors the span names in `/debug/traces`:
/// a trace explains one request, these aggregate the same phases fleet-wide.
#[derive(Clone, Debug, Default)]
pub struct Histograms {
    /// Wall time of each executed job, milliseconds.
    pub job_wall_time_ms: EpisodeHistogram,
    /// Time each job spent queued before the scheduler took it,
    /// milliseconds.
    pub job_queue_wait_ms: EpisodeHistogram,
    /// End-to-end handling latency of each HTTP request, microseconds.
    pub http_request_duration_us: EpisodeHistogram,
    /// Lines delivered per event-stream flush — how far behind a
    /// `/jobs/:id/events` reader had fallen when it was woken.
    pub event_stream_backlog_lines: EpisodeHistogram,
    /// Per-request `queue_wait` phase (submit → scheduler pickup),
    /// milliseconds — same interval the trace span of that name covers.
    pub request_phase_queue_wait_ms: EpisodeHistogram,
    /// Per-request `run` phase (matrix execution), milliseconds.
    pub request_phase_run_ms: EpisodeHistogram,
    /// Per-chunk `stream_write` flush latency on `/jobs/:id/events`,
    /// microseconds.
    pub request_phase_stream_write_us: EpisodeHistogram,
    /// End-to-end latency of each `/estimate` model evaluation (trace
    /// profiling + cell scoring, no simulation), microseconds.
    pub estimate_duration_us: EpisodeHistogram,
}

impl Histograms {
    /// Iterate `(name, histogram)` for rendering, name order fixed.
    fn families(&self) -> [(&'static str, &EpisodeHistogram); 8] {
        [
            ("mlpsim_estimate_duration_us", &self.estimate_duration_us),
            (
                "mlpsim_event_stream_backlog_lines",
                &self.event_stream_backlog_lines,
            ),
            (
                "mlpsim_http_request_duration_us",
                &self.http_request_duration_us,
            ),
            ("mlpsim_job_queue_wait_ms", &self.job_queue_wait_ms),
            ("mlpsim_job_wall_time_ms", &self.job_wall_time_ms),
            (
                "mlpsim_request_phase_queue_wait_ms",
                &self.request_phase_queue_wait_ms,
            ),
            ("mlpsim_request_phase_run_ms", &self.request_phase_run_ms),
            (
                "mlpsim_request_phase_stream_write_us",
                &self.request_phase_stream_write_us,
            ),
        ]
    }
}

/// Render the full exposition body: counters, gauges, a `build_info`
/// gauge carrying the crate version as a label, then the histograms.
pub fn render(registry: &Registry, hists: &Histograms) -> String {
    let mut out = String::new();
    for (name, v) in registry.counters() {
        let name = prefixed(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in registry.gauges() {
        let name = prefixed(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    out.push_str(&format!(
        "# TYPE mlpsim_build_info gauge\nmlpsim_build_info{{version=\"{}\"}} 1\n",
        escape_label_value(env!("CARGO_PKG_VERSION"))
    ));
    for (name, h) in hists.families() {
        render_histogram(&mut out, name, h);
    }
    out
}

/// Counters and gauges are registered unprefixed (`jobs_submitted_total`);
/// export them under the shared namespace.
fn prefixed(name: &str) -> String {
    if name.starts_with("mlpsim_") {
        name.to_string()
    } else {
        format!("mlpsim_{name}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &EpisodeHistogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for b in 0..EPISODE_BUCKETS {
        cum += h.bucket(b);
        match EpisodeHistogram::bucket_upper(b) {
            Some(le) => out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n")),
            None => out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n")),
        }
    }
    out.push_str(&format!("{name}_sum {}\n", h.total_cycles()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping_covers_the_three_specials() {
        assert_eq!(escape_label_value("plain-1.2.3"), "plain-1.2.3");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
    }

    #[test]
    fn render_emits_prefixed_counters_and_build_info() {
        let mut r = Registry::new();
        r.incr("jobs_submitted_total", 3);
        r.set_gauge("queue_depth", 2.0);
        let text = render(&r, &Histograms::default());
        assert!(text.contains("# TYPE mlpsim_jobs_submitted_total counter\n"));
        assert!(text.contains("mlpsim_jobs_submitted_total 3\n"));
        assert!(text.contains("# TYPE mlpsim_queue_depth gauge\n"));
        assert!(text.contains("mlpsim_queue_depth 2\n"));
        assert!(text.contains("mlpsim_build_info{version=\""));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_at_inf() {
        let mut hists = Histograms::default();
        hists.job_wall_time_ms.record(1);
        hists.job_wall_time_ms.record(444);
        hists.job_wall_time_ms.record(1 << 20);
        let text = render(&Registry::new(), &hists);
        assert!(text.contains("# TYPE mlpsim_job_wall_time_ms histogram\n"));
        assert!(text.contains("mlpsim_job_wall_time_ms_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("mlpsim_job_wall_time_ms_bucket{le=\"512\"} 2\n"));
        assert!(text.contains("mlpsim_job_wall_time_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains(&format!(
            "mlpsim_job_wall_time_ms_sum {}\n",
            1 + 444 + (1u64 << 20)
        )));
        assert!(text.contains("mlpsim_job_wall_time_ms_count 3\n"));
    }

    #[test]
    fn every_family_renders_even_when_empty() {
        let text = render(&Registry::new(), &Histograms::default());
        for family in [
            "mlpsim_estimate_duration_us",
            "mlpsim_job_wall_time_ms",
            "mlpsim_job_queue_wait_ms",
            "mlpsim_http_request_duration_us",
            "mlpsim_event_stream_backlog_lines",
            "mlpsim_request_phase_queue_wait_ms",
            "mlpsim_request_phase_run_ms",
            "mlpsim_request_phase_stream_write_us",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} histogram\n")),
                "{family}"
            );
            assert!(text.contains(&format!("{family}_count 0\n")), "{family}");
        }
    }
}
