//! The HTTP front end and the single-job scheduler.
//!
//! Threading model: one accept loop (nonblocking, polling the shutdown
//! flag), one connection thread per accepted socket (requests are tiny;
//! `Connection: close`), one scheduler thread executing jobs strictly in
//! admission order (a job may itself fan out over the worker pool via its
//! spec's `jobs` field), plus a short-lived watchdog thread per deadlined
//! job.
//!
//! API surface (all responses `Connection: close`):
//!
//! | route | effect |
//! |---|---|
//! | `POST /jobs` | admit a spec → `201 {"id":N,"state":"queued"}`, `400` bad spec, `429` + `Retry-After` full, `503` draining |
//! | `GET /jobs` | all jobs, id order |
//! | `GET /jobs/:id` | one job's status document |
//! | `GET /jobs/:id/events` | chunked NDJSON live telemetry (ends when the job is terminal) |
//! | `GET /jobs/:id/result` | the report text (`404` until done) |
//! | `POST /jobs/:id/cancel` | cancel queued/running job (idempotent) |
//! | `POST /estimate` | score a spec's grid with the analytical model (no simulation; `"model":true` in the body) |
//! | `POST /drain` | stop admitting; finish the running job; exit |
//! | `GET /healthz` | `200 ok` (`503` when draining) |
//! | `GET /metrics` | Prometheus text exposition 0.0.4: counters, gauges, latency histograms |

use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::journal::{JobStatus, Journal};
use crate::log;
use crate::state::{EventLog, LogSink, State, SubmitError};
use mlpsim_exec::CancelToken;
use mlpsim_experiments::jobspec::{prune_margin_from_json, JobSpec};
use mlpsim_experiments::CellSpanSink;
use mlpsim_telemetry::prof;
use mlpsim_telemetry::trace::{self, TraceCtx};
use mlpsim_telemetry::{Json, SinkHandle};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Everything the server needs to start.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Journal + result files live here (created if absent).
    pub data_dir: PathBuf,
    /// Bounded admission queue length; `0` rejects every submit with 429.
    pub queue_capacity: usize,
    /// Seconds advertised in `Retry-After` on 429.
    pub retry_after_secs: u64,
    /// Read timeout armed on every accepted socket (rule D6).
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: PathBuf::from("mlpsim-serve-data"),
            queue_capacity: 64,
            retry_after_secs: 1,
            read_timeout_ms: 5_000,
        }
    }
}

/// A running server: listener bound, journal recovered, scheduler live.
pub struct Server {
    state: Arc<State>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Recover the journal, re-enqueue unfinished jobs, bind the listener,
    /// and start the scheduler. `serve` must be called to accept traffic.
    ///
    /// # Errors
    ///
    /// Bind/journal failures, or a journal that no longer parses.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        std::fs::create_dir_all(&cfg.data_dir)
            .map_err(|e| format!("cannot create data dir {}: {e}", cfg.data_dir.display()))?;
        let journal_path = cfg.data_dir.join("journal.ndjson");
        let recovered = Journal::recover(&journal_path)?;
        if recovered.torn_tail {
            log::server_event(
                None,
                "journal_torn_tail",
                &format!(
                    "journal {} had a torn final line (crash mid-append); dropped it",
                    journal_path.display()
                ),
            );
        }
        let pending = recovered.pending().len();
        if pending > 0 {
            log::server_event(
                None,
                "journal_recovered",
                &format!("recovered {pending} unfinished job(s); re-enqueued in id order"),
            );
        }
        let journal = Journal::open(&journal_path)
            .map_err(|e| format!("cannot open journal {}: {e}", journal_path.display()))?;
        let state =
            State::from_recovered(recovered, journal, cfg.data_dir.clone(), cfg.queue_capacity)?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let scheduler = {
            let state = Arc::clone(&state);
            thread::spawn(move || scheduler_loop(&state))
        };
        Ok(Server {
            state,
            listener,
            shutdown,
            cfg,
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag external code (signal handlers, tests) may set to stop the
    /// accept loop and begin the graceful drain.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared state (tests submit/inspect through it directly).
    pub fn state(&self) -> Arc<State> {
        Arc::clone(&self.state)
    }

    /// Accept connections until the shutdown flag rises (via signal,
    /// `POST /drain`, or `shutdown_handle`), then drain: the running job
    /// finishes and is journaled; queued jobs stay journaled for the next
    /// boot. Returns once the scheduler has exited.
    pub fn serve(mut self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    let cfg = self.cfg.clone();
                    thread::spawn(move || handle_connection(stream, &state, &shutdown, &cfg));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    log::server_event(None, "accept_failed", &format!("accept failed: {e}"));
                    thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // Graceful drain: no new admissions, scheduler stops after the
        // in-flight job (its terminal op is journaled by `finish`).
        self.state.begin_drain();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

/// Execute jobs strictly in admission order until drain.
fn scheduler_loop(state: &Arc<State>) {
    while let Some((id, spec, log, token, trace)) = state.take_next() {
        let outcome = execute(&spec, &log, &token, trace.as_ref());
        state.finish(id, outcome);
    }
}

/// Run one job: wire its telemetry to the event log, arm the deadline
/// watchdog, execute through the shared `figures` run path. With a trace,
/// the whole execution becomes a root-parented `run` span and every
/// matrix cell a `run(cell=i,j)` child under it (timed on the worker
/// threads via the exec span hook).
fn execute(
    spec: &JobSpec,
    log: &Arc<EventLog>,
    token: &CancelToken,
    trace: Option<&TraceCtx>,
) -> Result<String, JobStatus> {
    let _watchdog = spec.deadline_ms.map(|ms| {
        let token = token.clone();
        let log = Arc::clone(log);
        thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_millis(ms);
            // Poll in short chunks so a finished job releases the thread
            // promptly (the log closes when the job reaches a terminal
            // state).
            while Instant::now() < deadline {
                if log.is_done() {
                    return;
                }
                thread::sleep(Duration::from_millis(20));
            }
            token.cancel();
        })
    });
    let telemetry = SinkHandle::of(LogSink(Arc::clone(log)));
    // The `run` span's id is allocated up front so cell spans can parent
    // under it while it is still open; the span itself is recorded once
    // the sweep returns.
    let run_span = trace.map(|ctx| (ctx.clone(), trace::next_span_id(), prof::now_ns()));
    let cell_spans = run_span.as_ref().map(|(ctx, run_id, _)| {
        let ctx = ctx.clone();
        let run_id = *run_id;
        CellSpanSink(std::sync::Arc::new(move |row, col, t0, t1| {
            ctx.record_span(
                &format!("run(cell={row},{col})"),
                run_id,
                t0,
                t1,
                Vec::new(),
            );
        }))
    });
    let result = spec.run_traced(telemetry, token, cell_spans);
    if let Some((ctx, run_id, t0)) = run_span {
        ctx.record_span_with_id(run_id, "run", ctx.parent, t0, prof::now_ns(), Vec::new());
    }
    match result {
        // A fired token always reports Cancelled, even if the sweep
        // happened to finish first — the client asked for it to stop.
        Ok(_) if token.is_cancelled() => Err(JobStatus::Cancelled),
        Ok(report) => Ok(report),
        Err(_cancelled) => Err(JobStatus::Cancelled),
    }
}

/// One request per connection. Every request gets a [`TraceCtx`] —
/// continuing the caller's trace when a W3C `traceparent` header came in,
/// fresh otherwise — whose root span covers the whole exchange. The
/// handler finishes the trace unless a submitted job adopted it (then the
/// trace runs until the job is terminal); either way one structured
/// access-log line goes to stderr here.
fn handle_connection(
    mut stream: TcpStream,
    state: &Arc<State>,
    shutdown: &Arc<AtomicBool>,
    cfg: &ServerConfig,
) {
    if http::arm_read_timeout(&stream, cfg.read_timeout_ms).is_err() {
        return;
    }
    state.count("http_requests_total");
    let t0 = Instant::now();
    let t0_ns = prof::now_ns();
    let req = match http::read_request(&mut stream) {
        Ok(req) => req,
        Err(HttpError::TooLarge) => {
            let _ = respond_json(&mut stream, 413, &err_json("request body too large"));
            finish_rejected(state, t0_ns, 413);
            return;
        }
        Err(HttpError::Malformed(m)) => {
            let _ = respond_json(&mut stream, 400, &err_json(&m));
            finish_rejected(state, t0_ns, 400);
            return;
        }
        Err(HttpError::Io(_)) => return, // stalled or vanished client
    };
    let inherited = req.header("traceparent").and_then(trace::parse_traceparent);
    let name = format!("{} {}", req.method, req.path);
    let ctx = TraceCtx::begin_at(&name, inherited, t0_ns);
    // The socket read + header/body parse happened before the context
    // could exist; record it retroactively as the first child span.
    ctx.record_span("parse", ctx.root_span(), t0_ns, prof::now_ns(), Vec::new());
    // A write error means the client went away mid-response: 499.
    let status = route(&mut stream, &req, state, &ctx, shutdown, cfg).unwrap_or(499);
    let dur_us = t0.elapsed().as_micros() as u64;
    state.observe_request(dur_us);
    if ctx.adopted() {
        // A job owns the trace now; log the HTTP exchange itself here
        // (the job's completion line comes later with the phase times).
        log::access(&ctx.trace_id_hex(), &name, status, dur_us, &[]);
    } else {
        ctx.set_status(status);
        state.complete_trace(&ctx);
    }
}

/// Complete a trace for a request rejected before it had a parseable
/// request line (oversized or malformed): pinned, named by the failure.
fn finish_rejected(state: &Arc<State>, t0_ns: u64, status: u16) {
    let ctx = TraceCtx::begin_at("(unparseable request)", None, t0_ns);
    ctx.record_span("parse", ctx.root_span(), t0_ns, prof::now_ns(), Vec::new());
    ctx.set_status(status);
    state.complete_trace(&ctx);
}

/// Dispatch one parsed request; returns the response status for the
/// access log and the trace. Socket errors mean the client went away —
/// the caller drops the connection either way.
fn route(
    stream: &mut TcpStream,
    req: &Request,
    state: &Arc<State>,
    ctx: &TraceCtx,
    shutdown: &Arc<AtomicBool>,
    cfg: &ServerConfig,
) -> io::Result<u16> {
    let segs = req.segments();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => {
            if state.draining() {
                http::write_response(stream, 503, "text/plain", &[], b"draining\n").map(|()| 503)
            } else {
                http::write_response(stream, 200, "text/plain", &[], b"ok\n").map(|()| 200)
            }
        }
        ("GET", ["metrics"]) => {
            let text = state.metrics_text();
            http::write_response(
                stream,
                200,
                crate::metrics::CONTENT_TYPE,
                &[],
                text.as_bytes(),
            )
            .map(|()| 200)
        }
        ("POST", ["jobs"]) => {
            // Admission covers spec parse + journaled submit; the
            // journal_append span nests under it.
            let admission = ctx.child("admission");
            let body = String::from_utf8_lossy(&req.body);
            let spec = match JobSpec::parse(&body) {
                Ok(spec) => spec,
                Err(e) => {
                    drop(admission);
                    return respond_json(stream, 400, &err_json(&e));
                }
            };
            let submitted = state.submit(spec, Some(&admission.ctx()));
            drop(admission);
            match submitted {
                Ok(id) => {
                    let doc = Json::Obj(vec![
                        ("id".into(), Json::Num(id as f64)),
                        ("state".into(), Json::Str("queued".into())),
                        ("trace_id".into(), Json::Str(ctx.trace_id_hex())),
                    ]);
                    respond_json(stream, 201, &doc)
                }
                Err(SubmitError::Full) => {
                    let retry = cfg.retry_after_secs.to_string();
                    http::write_response(
                        stream,
                        429,
                        "application/json",
                        &[("Retry-After", retry.as_str())],
                        err_json("queue full").to_string_compact().as_bytes(),
                    )
                    .map(|()| 429)
                }
                Err(SubmitError::Draining) => {
                    respond_json(stream, 503, &err_json("server is draining"))
                }
                Err(SubmitError::Journal(e)) => respond_json(stream, 500, &err_json(&e)),
            }
        }
        ("POST", ["estimate"]) => {
            // Analytical model only — nothing is enqueued and nothing
            // simulates; the response carries `"model": true` so a caller
            // can never mistake an estimate for a measured result. The
            // body is the same spec `/jobs` accepts, plus an optional
            // `prune_margin` field.
            let est = ctx.child("estimate");
            let body = String::from_utf8_lossy(&req.body);
            let parsed = Json::parse(&body).map_err(|e| e.to_string()).and_then(|v| {
                let margin = prune_margin_from_json(&v)?;
                JobSpec::from_json(&v).map(|spec| (spec, margin))
            });
            let (spec, margin) = match parsed {
                Ok(x) => x,
                Err(e) => {
                    drop(est);
                    return respond_json(stream, 400, &err_json(&e));
                }
            };
            let t0 = Instant::now();
            // The scoring runs on its own thread so a model bug panics
            // that thread, not this handler: the `Err` from `join()`
            // becomes a 500 instead of a dead connection (lint rule D8
            // treats the spawned closure as a panic-isolation boundary
            // for the same reason).
            let doc = match thread::spawn(move || spec.estimate_doc(margin)).join() {
                Ok(doc) => doc,
                Err(_) => {
                    drop(est);
                    return respond_json(
                        stream,
                        500,
                        &err_json("estimate failed: the model panicked scoring this spec"),
                    );
                }
            };
            state.observe_estimate(t0.elapsed().as_micros() as u64);
            state.count("estimates_total");
            let summary = doc.get("summary");
            if let Some(cells) = summary.and_then(|s| s.get("cells")).and_then(Json::as_u64) {
                state.count_n("planner_cells_scored_total", cells);
            }
            if let Some(pruned) = summary.and_then(|s| s.get("pruned")).and_then(Json::as_u64) {
                state.count_n("planner_cells_pruned_total", pruned);
            }
            drop(est);
            respond_json(stream, 200, &doc)
        }
        ("GET", ["jobs"]) => respond_json(stream, 200, &state.list_json()),
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match state.status_json(id) {
                Some(doc) => respond_json(stream, 200, &doc),
                None => respond_json(stream, 404, &err_json("no such job")),
            },
            None => respond_json(stream, 400, &err_json("job id wants an integer")),
        },
        ("GET", ["jobs", id, "events"]) => {
            let Some(id) = parse_id(id) else {
                return respond_json(stream, 400, &err_json("job id wants an integer"));
            };
            let Some(log) = state.event_log(id) else {
                return respond_json(stream, 404, &err_json("no such job"));
            };
            stream_events(stream, &log, state, ctx)
        }
        ("GET", ["jobs", id, "result"]) => {
            let Some(id) = parse_id(id) else {
                return respond_json(stream, 400, &err_json("job id wants an integer"));
            };
            if state.status_json(id).is_none() {
                return respond_json(stream, 404, &err_json("no such job"));
            }
            match std::fs::read(state.result_path(id)) {
                Ok(bytes) => {
                    http::write_response(stream, 200, "text/plain", &[], &bytes).map(|()| 200)
                }
                Err(_) => respond_json(stream, 404, &err_json("result not available yet")),
            }
        }
        ("POST", ["jobs", id, "cancel"]) => match parse_id(id) {
            Some(id) => match state.cancel(id) {
                Some(status) => {
                    let doc = Json::Obj(vec![
                        ("id".into(), Json::Num(id as f64)),
                        ("state".into(), Json::Str(status.name().into())),
                    ]);
                    respond_json(stream, 200, &doc)
                }
                None => respond_json(stream, 404, &err_json("no such job")),
            },
            None => respond_json(stream, 400, &err_json("job id wants an integer")),
        },
        ("GET", ["debug", "traces"]) => respond_json(stream, 200, &state.traces_json()),
        ("GET", ["debug", "traces", id]) => match parse_trace_id(id) {
            Some(tid) => match state.trace_json(tid, false) {
                Some(doc) => respond_json(stream, 200, &doc),
                None => respond_json(stream, 404, &err_json("no such trace (evicted or unknown)")),
            },
            None => respond_json(
                stream,
                400,
                &err_json("trace id wants 32 lowercase hex digits"),
            ),
        },
        ("GET", ["debug", "traces", id, "chrome"]) => match parse_trace_id(id) {
            Some(tid) => match state.trace_json(tid, true) {
                Some(doc) => respond_json(stream, 200, &doc),
                None => respond_json(stream, 404, &err_json("no such trace (evicted or unknown)")),
            },
            None => respond_json(
                stream,
                400,
                &err_json("trace id wants 32 lowercase hex digits"),
            ),
        },
        ("POST", ["drain"]) => {
            let _drain = ctx.child("drain");
            state.begin_drain();
            shutdown.store(true, Ordering::SeqCst);
            http::write_response(stream, 202, "text/plain", &[], b"draining\n").map(|()| 202)
        }
        (_, ["jobs", ..])
        | (_, ["estimate"])
        | (_, ["drain"])
        | (_, ["healthz"])
        | (_, ["metrics"])
        | (_, ["debug", ..]) => respond_json(stream, 405, &err_json("method not allowed")),
        _ => respond_json(stream, 404, &err_json("no such route")),
    }
}

/// Stream a job's NDJSON event lines as chunks until the job is terminal.
/// Each flush's line count lands in the backlog histogram — how far
/// behind this reader had fallen when it was woken.
fn stream_events(
    stream: &mut TcpStream,
    log: &EventLog,
    state: &Arc<State>,
    ctx: &TraceCtx,
) -> io::Result<u16> {
    let mut span = ctx.child("stream_write");
    let mut total_lines = 0u64;
    let mut w = ChunkedWriter::begin(stream, 200, "application/x-ndjson")?;
    let mut cursor = 0usize;
    loop {
        let (lines, done) = log.wait_from(cursor);
        cursor += lines.len();
        if !lines.is_empty() {
            state.observe_backlog(lines.len() as u64);
            total_lines += lines.len() as u64;
            let mut payload = String::new();
            for line in &lines {
                payload.push_str(line);
                payload.push('\n');
            }
            let t0 = prof::now_ns();
            let wrote = w.chunk(payload.as_bytes());
            state.observe_stream_write((prof::now_ns() - t0) / 1000);
            wrote?;
        }
        if done && lines.is_empty() {
            span.tag("lines", total_lines.to_string());
            w.finish()?;
            return Ok(200);
        }
        if done {
            // Loop once more to pick up any lines racing the close.
            continue;
        }
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

/// Trace ids travel as exactly 32 lowercase hex digits, the same shape
/// the traceparent header and `/debug/traces` listing use.
fn parse_trace_id(raw: &str) -> Option<u128> {
    if raw.len() != 32
        || !raw
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return None;
    }
    u128::from_str_radix(raw, 16).ok()
}

fn err_json(message: &str) -> Json {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
}

fn respond_json(stream: &mut TcpStream, status: u16, doc: &Json) -> io::Result<u16> {
    let mut body = doc.to_string_compact();
    body.push('\n');
    http::write_response(stream, status, "application/json", &[], body.as_bytes())?;
    Ok(status)
}
