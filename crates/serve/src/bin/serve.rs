//! `mlpsim-serve` — run the simulation service.
//!
//! ```text
//! mlpsim-serve [--addr HOST:PORT] [--data-dir DIR] [--queue N]
//!              [--retry-after SECS] [--read-timeout-ms MS]
//! ```
//!
//! Prints `listening on http://ADDR` once bound (with the resolved port —
//! `--addr 127.0.0.1:0` picks an ephemeral one, which scripts grep for).
//! SIGTERM/SIGINT trigger a graceful drain: stop admitting, finish the
//! in-flight job, leave queued jobs journaled for the next boot.

use mlpsim_experiments::cli::{io_error, usage_error, EXIT_USAGE};
use mlpsim_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set from the signal handler, polled by a watcher thread (a handler may
/// only touch async-signal-safe state, so it just flips this flag).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    // libc is not a dependency; declare the two symbols we need. SIG_ERR
    // returns are ignored — the server still drains via POST /drain.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} wants {what}"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("HOST:PORT")?,
            "--data-dir" => cfg.data_dir = PathBuf::from(value("a directory")?),
            "--queue" => {
                cfg.queue_capacity = value("a queue length")?
                    .parse()
                    .map_err(|_| "--queue wants a non-negative integer".to_string())?;
            }
            "--retry-after" => {
                cfg.retry_after_secs = value("seconds")?
                    .parse()
                    .map_err(|_| "--retry-after wants a non-negative integer".to_string())?;
            }
            "--read-timeout-ms" => {
                cfg.read_timeout_ms = value("milliseconds")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms wants a positive integer".to_string())?;
            }
            "--help" | "-h" => {
                return Err(String::new()); // caller prints usage
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cfg)
}

fn usage() {
    eprintln!(
        "usage: mlpsim-serve [--addr HOST:PORT] [--data-dir DIR] [--queue N] \
         [--retry-after SECS] [--read-timeout-ms MS]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_config(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
        Err(msg) => {
            usage();
            return usage_error(&msg);
        }
    };
    install_signal_handlers();
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => return io_error(&e),
    };
    match server.local_addr() {
        Ok(addr) => println!("listening on http://{addr}"),
        Err(e) => return io_error(&format!("cannot resolve bound address: {e}")),
    }
    // Bridge the signal flag to the server's shutdown flag.
    let shutdown = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    server.serve();
    eprintln!("drained; queued jobs remain journaled");
    ExitCode::SUCCESS
}
