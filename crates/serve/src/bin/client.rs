//! `mlpsim-client` — talk to a running `mlpsim-serve`.
//!
//! ```text
//! mlpsim-client --server http://HOST:PORT <command>
//!
//!   submit [--traceparent TP] <spec-json | @file | ->
//!                                    admit a job, print "id trace_id"
//!   estimate <spec-json | @file | -> score the spec's grid with the
//!                                    analytical model (no simulation;
//!                                    the document says "model":true)
//!   status <id>                      print the job's status document
//!   list                             print every job's status document
//!   watch <id>                       stream live NDJSON events to stdout
//!   result <id>                      print the finished report
//!   wait <id>                        block until terminal, print the state
//!   cancel <id>                      cancel a queued or running job
//!   traces [ID] [--chrome]           dump the flight recorder, or one
//!                                    trace (as span tree / Chrome trace)
//!   metrics                          print the Prometheus /metrics body
//!   drain                            ask the server to drain and exit
//! ```
//!
//! `submit` accepts the spec inline, `@path` to read a file, or `-` for
//! stdin; `--traceparent` injects a W3C trace context so the server's
//! spans join an upstream trace. Exit codes: 0 success, 2 usage, 3
//! transport/server failure.

use mlpsim_experiments::cli::{io_error, usage_error};
use mlpsim_serve::client;
use std::io::{Read, Write};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: mlpsim-client --server http://HOST:PORT \
         <submit [--traceparent TP] SPEC | estimate SPEC | status ID | list | watch ID | \
         result ID | wait ID | cancel ID | traces [ID] [--chrome] | metrics | drain>"
    );
}

fn parse_id(raw: Option<&String>) -> Result<u64, String> {
    raw.ok_or("missing job id".to_string())?
        .parse()
        .map_err(|_| "job id wants an integer".to_string())
}

fn load_spec(raw: &str) -> Result<String, String> {
    if raw == "-" {
        let mut body = String::new();
        std::io::stdin()
            .read_to_string(&mut body)
            .map_err(|e| format!("cannot read spec from stdin: {e}"))?;
        Ok(body)
    } else if let Some(path) = raw.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else {
        Ok(raw.to_string())
    }
}

fn run(server: &str, command: &str, rest: &[String]) -> Result<String, String> {
    match command {
        "submit" => {
            let mut traceparent = None;
            let mut spec_arg = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--traceparent" {
                    traceparent = Some(
                        it.next()
                            .ok_or("--traceparent wants a 00-…-…-… header value")?
                            .as_str(),
                    );
                } else {
                    spec_arg = Some(arg.as_str());
                }
            }
            let raw = spec_arg.ok_or("submit wants a spec (json, @file, or -)")?;
            let spec = load_spec(raw)?;
            let (id, trace_id) = client::submit_traced(server, &spec, traceparent)?;
            // Print the trace id only when the caller injected a context;
            // plain `submit` output stays a bare id for scripts.
            if traceparent.is_some() && !trace_id.is_empty() {
                Ok(format!("{id} {trace_id}"))
            } else {
                Ok(format!("{id}"))
            }
        }
        "estimate" => {
            let raw = rest
                .first()
                .ok_or("estimate wants a spec (json, @file, or -)")?;
            let spec = load_spec(raw)?;
            Ok(client::estimate(server, &spec)?.to_string_compact())
        }
        "status" => Ok(client::status(server, parse_id(rest.first())?)?.to_string_compact()),
        "list" => {
            let resp = client::request(server, "GET", "/jobs", None, None)?;
            if resp.status != 200 {
                return Err(format!("list failed ({})", resp.status));
            }
            Ok(resp.text().trim_end().to_string())
        }
        "watch" => {
            let id = parse_id(rest.first())?;
            let mut stdout = std::io::stdout();
            let mut sink = |chunk: &[u8]| {
                let _ = stdout.write_all(chunk);
                let _ = stdout.flush();
            };
            client::watch(server, id, &mut sink)?;
            let state = client::wait(server, id)?;
            Ok(format!("job {id}: {state}"))
        }
        "result" => Ok(client::result(server, parse_id(rest.first())?)?),
        "wait" => {
            let id = parse_id(rest.first())?;
            let state = client::wait(server, id)?;
            Ok(format!("job {id}: {state}"))
        }
        "cancel" => {
            let id = parse_id(rest.first())?;
            let state = client::cancel(server, id)?;
            Ok(format!("job {id}: {state}"))
        }
        "traces" => {
            let chrome = rest.iter().any(|a| a == "--chrome");
            let id = rest.iter().find(|a| !a.starts_with("--"));
            match id {
                Some(id) => Ok(client::trace(server, id, chrome)?.to_string_compact()),
                None if chrome => Err("traces --chrome wants a trace id".to_string()),
                None => Ok(client::traces(server)?.to_string_compact()),
            }
        }
        "metrics" => Ok(client::metrics(server)?.trim_end().to_string()),
        "drain" => {
            client::drain(server)?;
            Ok("draining".to_string())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--server" => match it.next() {
                Some(url) => server = Some(url),
                None => {
                    usage();
                    return usage_error("--server wants a URL");
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::from(mlpsim_experiments::cli::EXIT_USAGE);
            }
            _ => rest.push(arg),
        }
    }
    let Some(server) = server else {
        usage();
        return usage_error("missing --server http://HOST:PORT");
    };
    let Some((command, rest)) = rest.split_first() else {
        usage();
        return usage_error("missing command");
    };
    match run(&server, command, rest) {
        Ok(output) => {
            // Reports carry their own trailing newline; `result` output
            // must stay byte-identical to the CLI binary's.
            if output.ends_with('\n') {
                print!("{output}");
            } else {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(e) if e.starts_with("unknown command") || e.contains("wants") => {
            usage();
            usage_error(&e)
        }
        Err(e) => io_error(&e),
    }
}
