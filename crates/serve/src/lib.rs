#![cfg_attr(test, allow(clippy::unwrap_used))]

//! `mlpsim-serve`: the simulator as a long-running service, with zero
//! dependencies beyond the workspace.
//!
//! The CLI binaries answer one question per invocation; this crate turns
//! the same run paths into a job API so sweeps can be submitted, watched
//! live, cancelled, and — crucially — survive the server being killed:
//!
//! - [`http`] — hand-rolled HTTP/1.1 over `std::net` (requests,
//!   responses, chunked streaming; read timeouts per lint rule D6).
//! - [`journal`] — the append-only NDJSON write-ahead journal. Every
//!   queue transition hits disk before it takes effect, so `kill -9` at
//!   any instant loses at most one torn trailing line; recovery
//!   re-enqueues unfinished jobs in id order and re-serves completed
//!   results from their side files.
//! - [`state`] — the job table, bounded admission queue (backpressure:
//!   429 + `Retry-After` when full), per-job [`state::EventLog`] fanning
//!   live telemetry out to any number of stream readers, and the metrics
//!   registry behind `GET /metrics`.
//! - [`metrics`] — Prometheus text-exposition (0.0.4) rendering of those
//!   metrics: `mlpsim_`-prefixed counters/gauges plus power-of-two
//!   histograms of job wall time, queue wait, request latency, and
//!   event-stream backlog.
//! - [`server`] — the accept loop, route table, single-job scheduler,
//!   deadline watchdogs, and graceful drain (stop admitting, finish the
//!   in-flight job, leave queued jobs journaled for the next boot).
//! - [`client`] — the matching std-only client used by `mlpsim-client`
//!   and the end-to-end tests.
//!
//! Determinism contract: a job executes through the exact library
//! functions the CLI binaries call ([`mlpsim_experiments::figures`]), so
//! `mlpsim-client submit` + `result` is byte-identical to running the
//! corresponding binary directly, at any `jobs` width.

pub mod client;
pub mod http;
pub mod journal;
pub mod log;
pub mod metrics;
pub mod server;
pub mod state;

pub use journal::{JobStatus, Journal, JournalOp, Recovered};
pub use server::{Server, ServerConfig};
pub use state::{State, SubmitError};
