//! A matching std-only HTTP client for the job API — what `mlpsim-client`
//! and the smoke tests use. One request per connection, mirroring the
//! server's `Connection: close` model.

use mlpsim_telemetry::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One decoded response.
#[derive(Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body (chunked transfer already decoded).
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Body parsed as JSON.
    ///
    /// # Errors
    ///
    /// The parser's message when the body is not JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.text()).map_err(|e| e.to_string())
    }
}

/// Strip an `http://` scheme and any trailing `/` from a server URL,
/// leaving `host:port` for `TcpStream::connect`.
pub fn host_of(server: &str) -> &str {
    server
        .strip_prefix("http://")
        .unwrap_or(server)
        .trim_end_matches('/')
}

/// Callback observing each decoded chunk of a streamed response.
pub type ChunkObserver<'a> = &'a mut dyn FnMut(&[u8]);

/// Issue one request. `on_chunk` (when given) observes each decoded chunk
/// of a chunked response as it arrives — the live event stream — and the
/// full body is still accumulated in the returned [`Response`].
///
/// # Errors
///
/// Connection, framing, or socket errors, as strings for the CLI.
pub fn request(
    server: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    on_chunk: Option<ChunkObserver<'_>>,
) -> Result<Response, String> {
    request_with_headers(server, method, path, body, &[], on_chunk)
}

/// [`request`] plus caller-supplied header pairs — how a `traceparent`
/// travels with a submission.
///
/// # Errors
///
/// Connection, framing, or socket errors, as strings for the CLI.
pub fn request_with_headers(
    server: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    extra_headers: &[(&str, &str)],
    mut on_chunk: Option<ChunkObserver<'_>>,
) -> Result<Response, String> {
    let host = host_of(server);
    let stream = TcpStream::connect(host).map_err(|e| format!("cannot connect to {host}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let mut stream = stream;
    let body = body.unwrap_or(&[]);
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("cannot send request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read status line: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| format!("cannot read headers: {e}"))?;
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader
                .read_line(&mut size_line)
                .map_err(|e| format!("cannot read chunk size: {e}"))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("malformed chunk size {size_line:?}"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| format!("cannot read chunk: {e}"))?;
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|e| format!("cannot read chunk terminator: {e}"))?;
            if let Some(cb) = on_chunk.as_deref_mut() {
                cb(&chunk);
            }
            body.extend_from_slice(&chunk);
        }
    } else {
        let declared = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        match declared {
            Some(n) => {
                body.resize(n, 0);
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("cannot read body: {e}"))?;
            }
            None => {
                reader
                    .read_to_end(&mut body)
                    .map_err(|e| format!("cannot read body: {e}"))?;
            }
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// `POST /jobs` with a raw spec document; returns the assigned id.
///
/// # Errors
///
/// Transport errors and non-201 responses (the server's message).
pub fn submit(server: &str, spec_json: &str) -> Result<u64, String> {
    submit_traced(server, spec_json, None).map(|(id, _)| id)
}

/// [`submit`] carrying an optional W3C `traceparent` header; returns
/// `(id, trace_id)` — the trace id the server filed the request under
/// (echoed in the 201 body, inherited from the header when one was sent).
///
/// # Errors
///
/// Transport errors and non-201 responses (the server's message).
pub fn submit_traced(
    server: &str,
    spec_json: &str,
    traceparent: Option<&str>,
) -> Result<(u64, String), String> {
    let headers: Vec<(&str, &str)> = traceparent
        .into_iter()
        .map(|tp| ("traceparent", tp))
        .collect();
    let resp = request_with_headers(
        server,
        "POST",
        "/jobs",
        Some(spec_json.as_bytes()),
        &headers,
        None,
    )?;
    if resp.status != 201 {
        return Err(format!(
            "submit rejected ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    let doc = resp.json()?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| "submit response lacks an id".to_string())?;
    let trace_id = doc
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    Ok((id, trace_id))
}

/// `POST /estimate` with a raw spec document → the model's scoring of the
/// spec's grid (a `"model": true` document; nothing is simulated).
///
/// # Errors
///
/// Transport errors and non-200 responses (the server's message).
pub fn estimate(server: &str, spec_json: &str) -> Result<Json, String> {
    let resp = request(
        server,
        "POST",
        "/estimate",
        Some(spec_json.as_bytes()),
        None,
    )?;
    if resp.status != 200 {
        return Err(format!(
            "estimate rejected ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    resp.json()
}

/// `GET /debug/traces` → the flight-recorder dump (array of traces,
/// newest first).
///
/// # Errors
///
/// Transport errors and non-200 responses.
pub fn traces(server: &str) -> Result<Json, String> {
    let resp = request(server, "GET", "/debug/traces", None, None)?;
    if resp.status != 200 {
        return Err(format!(
            "traces failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    resp.json()
}

/// `GET /debug/traces/:id` (or `/chrome` when `chrome`) → one retained
/// trace as its span tree, or the Chrome trace-event document.
///
/// # Errors
///
/// Transport errors and non-200 responses (404 once the ring evicts it).
pub fn trace(server: &str, trace_id: &str, chrome: bool) -> Result<Json, String> {
    let suffix = if chrome { "/chrome" } else { "" };
    let resp = request(
        server,
        "GET",
        &format!("/debug/traces/{trace_id}{suffix}"),
        None,
        None,
    )?;
    if resp.status != 200 {
        return Err(format!(
            "trace fetch failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    resp.json()
}

/// `GET /jobs/:id` → the status document.
///
/// # Errors
///
/// Transport errors and non-200 responses.
pub fn status(server: &str, id: u64) -> Result<Json, String> {
    let resp = request(server, "GET", &format!("/jobs/{id}"), None, None)?;
    if resp.status != 200 {
        return Err(format!(
            "status failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    resp.json()
}

/// `GET /jobs/:id/events`, feeding each decoded chunk to `on_chunk` live;
/// returns the full stream when the job reaches a terminal state.
///
/// # Errors
///
/// Transport errors and non-200 responses.
pub fn watch(server: &str, id: u64, on_chunk: &mut dyn FnMut(&[u8])) -> Result<Vec<u8>, String> {
    let resp = request(
        server,
        "GET",
        &format!("/jobs/{id}/events"),
        None,
        Some(on_chunk),
    )?;
    if resp.status != 200 {
        return Err(format!(
            "watch failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    Ok(resp.body)
}

/// `GET /jobs/:id/result` → the report text.
///
/// # Errors
///
/// Transport errors and non-200 responses (including "not done yet").
pub fn result(server: &str, id: u64) -> Result<String, String> {
    let resp = request(server, "GET", &format!("/jobs/{id}/result"), None, None)?;
    if resp.status != 200 {
        return Err(format!(
            "result failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    Ok(resp.text())
}

/// `POST /jobs/:id/cancel` → the job's state after the request.
///
/// # Errors
///
/// Transport errors and non-200 responses.
pub fn cancel(server: &str, id: u64) -> Result<String, String> {
    let resp = request(server, "POST", &format!("/jobs/{id}/cancel"), None, None)?;
    if resp.status != 200 {
        return Err(format!(
            "cancel failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    Ok(resp
        .json()?
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string())
}

/// `GET /metrics` → the Prometheus exposition body.
///
/// # Errors
///
/// Transport errors and non-200 responses.
pub fn metrics(server: &str) -> Result<String, String> {
    let resp = request(server, "GET", "/metrics", None, None)?;
    if resp.status != 200 {
        return Err(format!(
            "metrics failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    Ok(resp.text())
}

/// `POST /drain` — ask the server to stop admitting and shut down.
///
/// # Errors
///
/// Transport errors and non-202 responses.
pub fn drain(server: &str) -> Result<(), String> {
    let resp = request(server, "POST", "/drain", None, None)?;
    if resp.status != 202 {
        return Err(format!(
            "drain failed ({}): {}",
            resp.status,
            resp.text().trim()
        ));
    }
    Ok(())
}

/// Poll `GET /jobs/:id` until the job is terminal; returns the final state
/// name.
///
/// # Errors
///
/// Transport errors from any poll.
pub fn wait(server: &str, id: u64) -> Result<String, String> {
    loop {
        let doc = status(server, id)?;
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return Ok(state);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
