//! Shared server state: the job table, the bounded admission queue, the
//! per-job live event logs, and the metrics registry.
//!
//! Everything here is plain `Mutex`/`Condvar` coordination — no async
//! runtime. Locks use `unwrap_or_else(PoisonError::into_inner)` so a
//! panicked connection thread cannot wedge the whole server.

use crate::journal::{JobStatus, Journal, JournalOp, Recovered};
use crate::log;
use crate::metrics::{self, Histograms};
use mlpsim_exec::CancelToken;
use mlpsim_experiments::jobspec::JobSpec;
use mlpsim_telemetry::prof;
use mlpsim_telemetry::trace::{CompletedTrace, FlightRecorder, TraceCtx};
use mlpsim_telemetry::{Event, EventSink, Json, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock helper: a poisoned mutex yields its guard anyway (the protected
/// data is simple enough that every mutation is atomic with respect to a
/// panic).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A job's live telemetry stream: NDJSON lines appended by the executor,
/// consumed by any number of `/jobs/:id/events` readers at their own
/// cursors.
#[derive(Debug, Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct LogInner {
    lines: Vec<String>,
    done: bool,
}

impl EventLog {
    /// A fresh, open log.
    pub fn new() -> Arc<EventLog> {
        Arc::new(EventLog::default())
    }

    /// A log that is already finished (recovered terminal jobs: the live
    /// stream died with the previous process; results persist on disk).
    pub fn finished() -> Arc<EventLog> {
        let log = EventLog::default();
        lock(&log.inner).done = true;
        Arc::new(log)
    }

    /// Append one NDJSON line and wake waiting readers.
    pub fn push(&self, line: String) {
        lock(&self.inner).lines.push(line);
        self.cond.notify_all();
    }

    /// Mark the stream complete and wake waiting readers.
    pub fn close(&self) {
        lock(&self.inner).done = true;
        self.cond.notify_all();
    }

    /// Lines past `cursor`, blocking until there is something new or the
    /// stream finishes. Returns `(new_lines, done)`; when `done` is true
    /// and the lines are empty the reader has drained everything.
    pub fn wait_from(&self, cursor: usize) -> (Vec<String>, bool) {
        let mut inner = lock(&self.inner);
        loop {
            if inner.lines.len() > cursor || inner.done {
                let fresh = inner.lines.get(cursor..).unwrap_or(&[]).to_vec();
                return (fresh, inner.done);
            }
            let (next, _timeout) = self
                .cond
                .wait_timeout(inner, Duration::from_millis(200))
                .unwrap_or_else(PoisonError::into_inner);
            inner = next;
        }
    }

    /// Whether the stream has finished (non-blocking; watchdogs poll it).
    pub fn is_done(&self) -> bool {
        lock(&self.inner).done
    }

    /// Total lines appended so far.
    pub fn len(&self) -> usize {
        lock(&self.inner).lines.len()
    }

    /// Whether no lines have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`EventSink`] adapter: telemetry events from a running job become
/// NDJSON lines on its [`EventLog`].
pub struct LogSink(pub Arc<EventLog>);

impl EventSink for LogSink {
    fn record(&mut self, ev: Event) {
        self.0.push(ev.to_ndjson_line());
    }

    fn flush(&mut self) {}
}

/// One job as the server tracks it.
pub struct Job {
    /// The parsed spec (canonical JSON via `spec.to_json()`).
    pub spec: JobSpec,
    /// Current status.
    pub status: JobStatus,
    /// Live telemetry stream.
    pub log: Arc<EventLog>,
    /// Cooperative cancellation token the executor checks per cell.
    pub cancel: CancelToken,
    /// When the job entered the queue (recovery counts as re-admission).
    pub submitted_at: Instant,
    /// [`prof::now_ns`] reading at admission — the `queue_wait` span's
    /// start on the job's trace.
    pub submitted_ns: u64,
    /// When the scheduler took it, once running.
    pub started_at: Option<Instant>,
    /// The request trace that admitted this job, root-parented; the job's
    /// lifecycle phases (queue wait, run, terminal journal append) land
    /// on it and it completes when the job does. `None` for recovered
    /// jobs (their admitting request died with the previous process).
    pub trace: Option<TraceCtx>,
}

/// Why a submission was not admitted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is draining; no new work.
    Draining,
    /// The bounded queue is at capacity; retry later.
    Full,
    /// The write-ahead journal could not record the submit.
    Journal(String),
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
    draining: bool,
}

/// The server's shared state. One instance per process, behind `Arc`.
pub struct State {
    inner: Mutex<Inner>,
    /// Wakes the scheduler on submit / drain.
    sched_cond: Condvar,
    journal: Mutex<Journal>,
    metrics: Mutex<Registry>,
    hists: Mutex<Histograms>,
    recorder: FlightRecorder,
    data_dir: PathBuf,
    queue_capacity: usize,
}

impl State {
    /// Build state from a recovered journal: terminal jobs are re-served
    /// from disk, queued/running jobs are re-enqueued in id order, and a
    /// `done` job whose result file vanished is demoted back to queued.
    ///
    /// # Errors
    ///
    /// A recovered spec that no longer parses (the journal predates a
    /// format change) is reported rather than silently dropped.
    pub fn from_recovered(
        recovered: Recovered,
        journal: Journal,
        data_dir: PathBuf,
        queue_capacity: usize,
    ) -> Result<Arc<State>, String> {
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut next_id = 1;
        for r in &recovered.jobs {
            let spec = JobSpec::from_json(&r.spec)
                .map_err(|e| format!("journaled spec for job {} no longer parses: {e}", r.id))?;
            let mut status = r.status.clone();
            if status == JobStatus::Done && !result_path(&data_dir, r.id).exists() {
                status = JobStatus::Queued; // result lost: rerun (deterministic)
            }
            if status == JobStatus::Running {
                status = JobStatus::Queued; // died mid-run: rerun
            }
            let terminal = status.is_terminal();
            if !terminal {
                queue.push_back(r.id);
            }
            jobs.insert(
                r.id,
                Job {
                    spec,
                    status,
                    log: if terminal {
                        EventLog::finished()
                    } else {
                        EventLog::new()
                    },
                    cancel: CancelToken::new(),
                    submitted_at: Instant::now(),
                    submitted_ns: prof::now_ns(),
                    started_at: None,
                    trace: None,
                },
            );
            next_id = next_id.max(r.id + 1);
        }
        let state = State {
            inner: Mutex::new(Inner {
                jobs,
                queue,
                next_id,
                draining: false,
            }),
            sched_cond: Condvar::new(),
            journal: Mutex::new(journal),
            metrics: Mutex::new(Registry::new()),
            hists: Mutex::new(Histograms::default()),
            recorder: FlightRecorder::default(),
            data_dir,
            queue_capacity,
        };
        state.refresh_queue_gauge();
        Ok(Arc::new(state))
    }

    /// Where job `id`'s result text lives.
    pub fn result_path(&self, id: u64) -> PathBuf {
        result_path(&self.data_dir, id)
    }

    /// Admit a job: journal the submit write-ahead, then enqueue. With a
    /// `trace` (the admitting request's context, parented wherever the
    /// caller wants the `journal_append` span), the job *adopts* the
    /// trace: the request handler must not finish it — the trace runs
    /// until the job reaches a terminal state, so its root span covers
    /// accept → terminal and the `queue_wait`/`run` phases land inside.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when draining, at capacity, or unjournalable.
    pub fn submit(&self, spec: JobSpec, trace: Option<&TraceCtx>) -> Result<u64, SubmitError> {
        let mut inner = lock(&self.inner);
        if inner.draining {
            self.count("jobs_rejected_total");
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.queue_capacity {
            self.count("jobs_rejected_total");
            return Err(SubmitError::Full);
        }
        let id = inner.next_id;
        lock(&self.journal)
            .append_traced(
                &JournalOp::Submit {
                    id,
                    spec: spec.to_json(),
                },
                trace,
            )
            .map_err(|e| SubmitError::Journal(e.to_string()))?;
        inner.next_id += 1;
        inner.queue.push_back(id);
        let adopted = trace.map(|ctx| {
            // Adopt before the job is visible to the scheduler, so the
            // handler and the scheduler cannot both finish the trace.
            ctx.adopt();
            ctx.at_root()
        });
        inner.jobs.insert(
            id,
            Job {
                spec,
                status: JobStatus::Queued,
                log: EventLog::new(),
                cancel: CancelToken::new(),
                submitted_at: Instant::now(),
                submitted_ns: prof::now_ns(),
                started_at: None,
                trace: adopted,
            },
        );
        drop(inner);
        self.count("jobs_submitted_total");
        self.refresh_queue_gauge();
        self.sched_cond.notify_all();
        Ok(id)
    }

    /// Scheduler side: block for the next queued job, journal its start,
    /// mark it running, and hand back what the executor needs — including
    /// the job's adopted trace, on which the measured `queue_wait` span is
    /// recorded here (submit-time to now, root-parented). Returns `None`
    /// once the server is draining (queued jobs stay journaled for the
    /// next boot).
    #[allow(clippy::type_complexity)]
    pub fn take_next(
        &self,
    ) -> Option<(u64, JobSpec, Arc<EventLog>, CancelToken, Option<TraceCtx>)> {
        let mut inner = lock(&self.inner);
        loop {
            if inner.draining {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let Some(job) = inner.jobs.get_mut(&id) else {
                    continue; // cancelled-while-queued already removed it
                };
                let trace = job.trace.clone();
                let start =
                    lock(&self.journal).append_traced(&JournalOp::Start { id }, trace.as_ref());
                if let Err(e) = start {
                    job.status = JobStatus::Failed(format!("journal start failed: {e}"));
                    job.log.close();
                    if let Some(ctx) = job.trace.take() {
                        ctx.set_status(500);
                        self.complete_trace(&ctx);
                    }
                    continue;
                }
                job.status = JobStatus::Running;
                job.started_at = Some(Instant::now());
                let waited_ms = job.submitted_at.elapsed().as_millis() as u64;
                if let Some(ctx) = &trace {
                    ctx.record_span(
                        "queue_wait",
                        ctx.parent,
                        job.submitted_ns,
                        prof::now_ns(),
                        Vec::new(),
                    );
                }
                let out = (
                    id,
                    job.spec.clone(),
                    Arc::clone(&job.log),
                    job.cancel.clone(),
                    trace,
                );
                drop(inner);
                let mut hists = lock(&self.hists);
                hists.job_queue_wait_ms.record(waited_ms);
                hists.request_phase_queue_wait_ms.record(waited_ms);
                drop(hists);
                self.refresh_queue_gauge();
                return Some(out);
            }
            let (next, _timeout) = self
                .sched_cond
                .wait_timeout(inner, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            inner = next;
        }
    }

    /// Executor side: record a job's terminal state — journal it, persist
    /// the result text (for `Done`), close the event log, and complete
    /// the job's trace (status-mapped: done → 200, cancelled/deadline →
    /// 499, failed → 500 — the non-2xx ones land pinned in the flight
    /// recorder).
    pub fn finish(&self, id: u64, outcome: Result<String, JobStatus>) {
        let (op, status, metric) = match outcome {
            Ok(report) => {
                if let Err(e) = std::fs::write(self.result_path(id), &report) {
                    (
                        JournalOp::Failed {
                            id,
                            error: format!("cannot persist result: {e}"),
                        },
                        JobStatus::Failed(format!("cannot persist result: {e}")),
                        "jobs_failed_total",
                    )
                } else {
                    (
                        JournalOp::Done { id },
                        JobStatus::Done,
                        "jobs_completed_total",
                    )
                }
            }
            Err(JobStatus::Cancelled) => (
                JournalOp::Cancelled { id },
                JobStatus::Cancelled,
                "jobs_cancelled_total",
            ),
            Err(JobStatus::Failed(e)) => (
                JournalOp::Failed {
                    id,
                    error: e.clone(),
                },
                JobStatus::Failed(e),
                "jobs_failed_total",
            ),
            Err(other) => (
                JournalOp::Failed {
                    id,
                    error: format!("executor reported non-terminal state {}", other.name()),
                },
                JobStatus::Failed("internal: non-terminal finish".into()),
                "jobs_failed_total",
            ),
        };
        let http_status: u16 = match &status {
            JobStatus::Done => 200,
            JobStatus::Cancelled => 499,
            _ => 500,
        };
        let trace = lock(&self.inner)
            .jobs
            .get(&id)
            .and_then(|j| j.trace.clone());
        if let Err(e) = lock(&self.journal).append_traced(&op, trace.as_ref()) {
            // The in-memory state still advances; the next boot reruns it.
            log::server_event(
                trace.as_ref().map(TraceCtx::trace_id_hex).as_deref(),
                "journal_append_failed",
                &format!("journal append for job {id} failed: {e}"),
            );
        }
        let mut inner = lock(&self.inner);
        let mut finished_trace = None;
        let ran_ms = inner.jobs.get_mut(&id).and_then(|job| {
            job.status = status;
            job.log.close();
            finished_trace = job.trace.take();
            job.started_at.map(|t| t.elapsed().as_millis() as u64)
        });
        drop(inner);
        if let Some(ms) = ran_ms {
            let mut hists = lock(&self.hists);
            hists.job_wall_time_ms.record(ms);
            hists.request_phase_run_ms.record(ms);
        }
        self.count(metric);
        if let Some(ctx) = finished_trace {
            ctx.set_status(http_status);
            self.complete_trace(&ctx);
        }
    }

    /// Cancel a job. Queued jobs transition immediately; running jobs get
    /// their token fired and the scheduler records the terminal state.
    /// Idempotent: terminal jobs report their status unchanged. Returns
    /// `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut inner = lock(&self.inner);
        let job = inner.jobs.get(&id)?;
        match job.status {
            JobStatus::Queued => {
                let trace = job.trace.clone();
                if let Err(e) =
                    lock(&self.journal).append_traced(&JournalOp::Cancelled { id }, trace.as_ref())
                {
                    log::server_event(
                        trace.as_ref().map(TraceCtx::trace_id_hex).as_deref(),
                        "journal_append_failed",
                        &format!("journal append for job {id} failed: {e}"),
                    );
                }
                inner.queue.retain(|&q| q != id);
                // Present: looked up above under the same lock. Treat the
                // impossible miss as an unknown id rather than panicking a
                // handler thread.
                let job = inner.jobs.get_mut(&id)?;
                job.status = JobStatus::Cancelled;
                job.log.close();
                let cancelled_trace = job.trace.take();
                drop(inner);
                self.count("jobs_cancelled_total");
                self.refresh_queue_gauge();
                if let Some(ctx) = cancelled_trace {
                    // A cancelled-while-queued job never runs; its trace
                    // ends here, pinned like every other cancellation.
                    ctx.set_status(499);
                    self.complete_trace(&ctx);
                }
                Some(JobStatus::Cancelled)
            }
            JobStatus::Running => {
                job.cancel.cancel();
                Some(JobStatus::Running)
            }
            ref terminal => Some(terminal.clone()),
        }
    }

    /// Begin draining: refuse new submissions, stop the scheduler after
    /// the in-flight job (queued jobs remain journaled for the next boot).
    pub fn begin_drain(&self) {
        lock(&self.inner).draining = true;
        self.sched_cond.notify_all();
    }

    /// Whether draining has begun.
    pub fn draining(&self) -> bool {
        lock(&self.inner).draining
    }

    /// The job's live event log, if the id exists.
    pub fn event_log(&self, id: u64) -> Option<Arc<EventLog>> {
        lock(&self.inner).jobs.get(&id).map(|j| Arc::clone(&j.log))
    }

    /// Status document for one job.
    pub fn status_json(&self, id: u64) -> Option<Json> {
        let inner = lock(&self.inner);
        inner.jobs.get(&id).map(|job| job_json(id, job))
    }

    /// Status documents for every job, id order.
    pub fn list_json(&self) -> Json {
        let inner = lock(&self.inner);
        Json::Arr(inner.jobs.iter().map(|(id, j)| job_json(*id, j)).collect())
    }

    /// Bump a counter.
    pub fn count(&self, name: &str) {
        lock(&self.metrics).incr(name, 1);
    }

    /// Bump a counter by `n` (planner cell totals arrive in batches).
    pub fn count_n(&self, name: &str, n: u64) {
        lock(&self.metrics).incr(name, n);
    }

    /// Record one `/estimate` model evaluation's latency.
    pub fn observe_estimate(&self, micros: u64) {
        lock(&self.hists).estimate_duration_us.record(micros);
    }

    /// Record one handled HTTP request's end-to-end latency.
    pub fn observe_request(&self, micros: u64) {
        lock(&self.hists).http_request_duration_us.record(micros);
    }

    /// Record how many event lines one stream flush delivered — the
    /// reader's backlog at wake-up.
    pub fn observe_backlog(&self, lines: u64) {
        lock(&self.hists).event_stream_backlog_lines.record(lines);
    }

    /// Record how long one event-stream chunk write took.
    pub fn observe_stream_write(&self, micros: u64) {
        lock(&self.hists)
            .request_phase_stream_write_us
            .record(micros);
    }

    /// Close a trace: publish it to the flight recorder, check the
    /// wall-time reconciliation invariant (the span tree must not
    /// double-book the measured total — the serving-path sibling of the
    /// stall ledger's exact reconciliation), and emit the structured
    /// access-log line carrying the trace id and the phase durations.
    pub fn complete_trace(&self, ctx: &TraceCtx) -> Arc<CompletedTrace> {
        let done = ctx.finish(&self.recorder);
        #[allow(unused_variables)]
        let recon = done.reconcile();
        mlpsim_exec::invariant!(
            !recon.overrun,
            "trace {} span tree double-books wall time: {recon:?}",
            done.trace_id_hex()
        );
        let mut extra: Vec<(&str, f64)> = Vec::new();
        if let Some(ns) = done.span_dur_ns("queue_wait") {
            extra.push(("queue_wait_ms", ns as f64 / 1e6));
        }
        if let Some(ns) = done.span_dur_ns("run") {
            extra.push(("run_ms", ns as f64 / 1e6));
        }
        log::access(
            &done.trace_id_hex(),
            &done.name,
            done.status,
            done.dur_ns / 1000,
            &extra,
        );
        done
    }

    /// The flight recorder (`/debug/traces` reads it).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Every retained trace as a JSON array, newest first — the
    /// `GET /debug/traces` body (full span trees; `telemetry-report
    /// --traces` consumes this dump directly).
    pub fn traces_json(&self) -> Json {
        Json::Arr(
            self.recorder
                .snapshot()
                .iter()
                .map(|t| t.to_json())
                .collect(),
        )
    }

    /// One retained trace by 32-hex id, as JSON or as a Chrome trace
    /// document.
    pub fn trace_json(&self, trace_id: u128, chrome: bool) -> Option<Json> {
        let t = self.recorder.find(trace_id)?;
        Some(if chrome {
            t.to_chrome_trace()
        } else {
            t.to_json()
        })
    }

    fn refresh_queue_gauge(&self) {
        let depth = lock(&self.inner).queue.len() as f64;
        lock(&self.metrics).set_gauge("queue_depth", depth);
    }

    /// The `GET /metrics` body: Prometheus text exposition 0.0.4 —
    /// `mlpsim_`-prefixed counters and gauges, a `build_info` gauge, and
    /// the four operational histograms (see [`crate::metrics`]).
    pub fn metrics_text(&self) -> String {
        self.refresh_queue_gauge();
        let m = lock(&self.metrics);
        let h = lock(&self.hists);
        metrics::render(&m, &h)
    }
}

/// `data_dir/job-<id>.result.txt`.
fn result_path(data_dir: &Path, id: u64) -> PathBuf {
    data_dir.join(format!("job-{id}.result.txt"))
}

fn job_json(id: u64, job: &Job) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("id".into(), Json::Num(id as f64)),
        ("state".into(), Json::Str(job.status.name().into())),
        ("spec".into(), job.spec.to_json()),
        ("events".into(), Json::Num(job.log.len() as f64)),
    ];
    if let JobStatus::Failed(e) = &job.status {
        pairs.push(("error".into(), Json::Str(e.clone())));
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(capacity: usize) -> Arc<State> {
        let dir =
            std::env::temp_dir().join(format!("mlpsim-state-{}-{capacity}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("journal.ndjson");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).expect("temp journal");
        State::from_recovered(Recovered::default(), journal, dir, capacity).expect("fresh state")
    }

    fn spec() -> JobSpec {
        JobSpec::parse(r#"{"kind":"fig5","accesses":100}"#).expect("literal spec")
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let s = state(2);
        assert_eq!(s.submit(spec(), None), Ok(1));
        assert_eq!(s.submit(spec(), None), Ok(2));
        assert_eq!(s.submit(spec(), None), Err(SubmitError::Full));
        // Scheduler takes one; a slot frees up.
        let (id, ..) = s.take_next().expect("job queued");
        assert_eq!(id, 1);
        assert_eq!(s.submit(spec(), None), Ok(3));
    }

    #[test]
    fn draining_refuses_submissions_and_stops_scheduler() {
        let s = state(8);
        s.submit(spec(), None).expect("admitted");
        s.begin_drain();
        assert_eq!(s.submit(spec(), None), Err(SubmitError::Draining));
        assert!(s.take_next().is_none(), "queued job stays journaled");
    }

    #[test]
    fn queued_cancel_removes_from_queue() {
        let s = state(8);
        let a = s.submit(spec(), None).expect("admitted");
        let b = s.submit(spec(), None).expect("admitted");
        assert_eq!(s.cancel(a), Some(JobStatus::Cancelled));
        assert_eq!(s.cancel(a), Some(JobStatus::Cancelled), "idempotent");
        let (next, ..) = s.take_next().expect("remaining job");
        assert_eq!(next, b, "cancelled job skipped");
    }

    #[test]
    fn running_cancel_fires_the_token() {
        let s = state(8);
        let id = s.submit(spec(), None).expect("admitted");
        let (_, _, _, token, _) = s.take_next().expect("job");
        assert!(!token.is_cancelled());
        assert_eq!(s.cancel(id), Some(JobStatus::Running));
        assert!(token.is_cancelled());
    }

    #[test]
    fn event_log_cursor_sees_all_lines_then_done() {
        let log = EventLog::new();
        log.push("a".into());
        log.push("b".into());
        let (lines, done) = log.wait_from(0);
        assert_eq!(lines, vec!["a".to_string(), "b".to_string()]);
        assert!(!done);
        log.close();
        let (rest, done) = log.wait_from(2);
        assert!(rest.is_empty());
        assert!(done);
    }

    #[test]
    fn metrics_text_lists_counters_and_gauges() {
        let s = state(4);
        s.submit(spec(), None).expect("admitted");
        let text = s.metrics_text();
        assert!(text.contains("mlpsim_jobs_submitted_total 1"), "{text}");
        assert!(text.contains("mlpsim_queue_depth 1"), "{text}");
        assert!(
            text.contains("# TYPE mlpsim_jobs_submitted_total counter"),
            "{text}"
        );
    }

    #[test]
    fn lifecycle_populates_latency_histograms() {
        let s = state(4);
        let id = s.submit(spec(), None).expect("admitted");
        let (taken, ..) = s.take_next().expect("job queued");
        assert_eq!(taken, id);
        s.finish(id, Ok("report\n".into()));
        s.observe_request(1234);
        s.observe_backlog(7);
        let text = s.metrics_text();
        assert!(text.contains("mlpsim_job_queue_wait_ms_count 1"), "{text}");
        assert!(text.contains("mlpsim_job_wall_time_ms_count 1"), "{text}");
        assert!(
            text.contains("mlpsim_http_request_duration_us_count 1"),
            "{text}"
        );
        assert!(
            text.contains("mlpsim_event_stream_backlog_lines_count 1"),
            "{text}"
        );
        assert!(
            text.contains("mlpsim_event_stream_backlog_lines_sum 7"),
            "{text}"
        );
    }
}
