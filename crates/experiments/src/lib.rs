#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Experiment harness: one binary per paper table/figure.
//!
//! Binaries (run with `cargo run -p mlpsim-experiments --release --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1` | Figure 1: OPT vs LRU vs MLP-aware on the motivating loop |
//! | `fig2` | Figure 2: mlp-cost distribution per benchmark |
//! | `table1` | Table 1: delta (cost-predictability) distribution |
//! | `table2` | Table 2: baseline machine configuration |
//! | `table3` | Table 3: benchmark summary (misses, compulsory %) |
//! | `fig3b` | Figure 3(b): cost quantization map |
//! | `fig4` | Figure 4: IPC improvement of LIN(λ), λ = 1..4 |
//! | `fig5` | Figure 5: cost distribution under LRU vs LIN + ΔMISS/ΔIPC |
//! | `fig6` | Figure 6: the CBS PSEL update rule (mechanism demo) |
//! | `fig7` | Figure 7: hybrid-replacement organizations (structure + budgets) |
//! | `fig8` | Figure 8: analytical sampling model |
//! | `fig9` | Figure 9: LIN vs SBAR IPC improvement |
//! | `fig10` | Figure 10: leader-set selection policy / count sweep |
//! | `fig11` | Figure 11: ammp time-series case study |
//! | `cbs_compare` | §6.6: SBAR vs CBS-global vs CBS-local |
//! | `overhead` | §6.4: hardware-overhead budget (1854 B claim) |
//! | `ablate_adders` | footnote 3: 4 shared adders vs per-entry adders |
//! | `ablate_stall_accounting` | footnote 4: stall-cycles-only cost accrual |
//! | `ablate_lambda` | extension: LIN(λ) past the paper's λ = 4 |
//! | `care_alternatives` | extension: BCL as an alternative cost-sensitive CARE |
//! | `measure_p` | extension: §6.3's per-set preference fraction, measured |
//! | `sweep_cache` | extension: LIN/SBAR across L2 capacities |
//! | `sweep_latency` | extension: LIN/SBAR across memory latencies |
//! | `sweep_mlp_limits` | extension: window and MSHR size sweeps |
//! | `multi_seed` | extension: headline deltas across seeds (mean ± CI) |
//! | `icache_effects` | extension: instruction-fetch modeling |
//! | `wrong_path_effects` | extension: wrong-path traffic and demotion |
//! | `prefetch_effects` | extension: next-line prefetching interaction |
//! | `calibrate` | (internal) generator-tuning dashboard |
//! | `debug_regions` | (internal) per-region miss diagnosis |
//! | `debug_phases` | (internal) per-interval policy comparison |
//! | `all` | runs every experiment (concurrently, output in order) |
//! | `bench_sweep` | times a reference sweep serial vs parallel → `BENCH_sweep.json` |
//!
//! Every sweep-shaped binary accepts `--jobs N` (env `MLPSIM_JOBS`;
//! default: all hardware threads) and fans its benchmark × policy matrix
//! out over the [`mlpsim_exec`] worker pool. Results, tables, and
//! `--telemetry` streams are byte-identical at every job count — see
//! [`runner::run_matrix`] for the mechanism.
//!
//! The library part hosts the shared [`runner`] plus the paper's reference
//! numbers ([`paper`]) used to print paper-vs-measured tables.

pub mod cli;
pub mod figures;
pub mod jobspec;
pub mod paper;
pub mod runner;

pub use runner::{run_bench, run_bench_with, run_many, run_matrix, CellSpanSink, RunOptions};
