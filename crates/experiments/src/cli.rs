//! Shared command-line plumbing for the experiment binaries.
//!
//! The binaries take free-form arguments from users (benchmark names,
//! interval sizes, output paths). Bad input must produce a one-line
//! diagnostic and a nonzero exit, not a panic with a backtrace — lint
//! rule D4 bans `unwrap`/`panic!` on these paths (see DESIGN.md §10).

use mlpsim_trace::spec::SpecBench;
use std::process::ExitCode;

/// Exit code for invalid command-line input, following the BSD `EX_USAGE`
/// convention well enough for scripts to distinguish it from crashes.
pub const EXIT_USAGE: u8 = 2;

/// Exit code for runtime I/O failures (cannot create/write an output file).
pub const EXIT_IO: u8 = 3;

/// Prints `error: <msg>` to stderr and returns the usage exit code.
/// Binaries `return` the result from `main() -> ExitCode`.
#[must_use]
pub fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(EXIT_USAGE)
}

/// Prints `error: <msg>` to stderr and returns the I/O exit code.
#[must_use]
pub fn io_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(EXIT_IO)
}

/// Resolves a benchmark name from the command line, defaulting to
/// `default` when absent.
///
/// # Errors
///
/// An unknown name yields a message listing every valid benchmark, so a
/// typo is a one-line fix rather than a trip to the source.
pub fn bench_from_arg(arg: Option<String>, default: &str) -> Result<SpecBench, String> {
    let name = arg.unwrap_or_else(|| default.to_string());
    SpecBench::from_name(&name).ok_or_else(|| {
        let known: Vec<&str> = SpecBench::ALL.iter().map(|b| b.name()).collect();
        format!("unknown benchmark {name:?}; known: {}", known.join(", "))
    })
}

/// Parses an optional positional integer argument, defaulting when absent.
///
/// # Errors
///
/// A present-but-unparsable value is an error (silently falling back to
/// the default would hide the typo).
pub fn u64_from_arg(arg: Option<String>, what: &str, default: u64) -> Result<u64, String> {
    match arg {
        None => Ok(default),
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| format!("invalid {what} {raw:?}: want a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bench_resolves() {
        assert_eq!(bench_from_arg(None, "twolf").map(|b| b.name()), Ok("twolf"));
    }

    #[test]
    fn explicit_bench_resolves() {
        assert_eq!(
            bench_from_arg(Some("ammp".into()), "twolf").map(|b| b.name()),
            Ok("ammp")
        );
    }

    #[test]
    fn unknown_bench_lists_alternatives() {
        let err = bench_from_arg(Some("gcc".into()), "twolf").unwrap_err();
        assert!(err.contains("unknown benchmark"));
        assert!(err.contains("twolf"), "message lists valid names: {err}");
    }

    #[test]
    fn u64_arg_defaults_and_parses() {
        assert_eq!(u64_from_arg(None, "interval", 7), Ok(7));
        assert_eq!(u64_from_arg(Some(" 42 ".into()), "interval", 7), Ok(42));
        assert!(u64_from_arg(Some("x".into()), "interval", 7).is_err());
    }
}
